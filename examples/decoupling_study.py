"""How far does the address unit slip ahead? (the paper's §3, measured)

For each of the seven PERFECT-club models this prints the static
decoupling profile (AU share, self-loads, loss-of-decoupling events)
and the dynamic one: the effective single window and the decoupled
memory's occupancy at md=0 versus md=60.

Run:  python examples/decoupling_study.py
"""

from __future__ import annotations

from repro import DecoupledMachine, DMConfig, analyze_decoupling, build_kernel
from repro.kernels import PAPER_ORDER

WINDOW = 32
SCALE = 8_000


def main() -> None:
    machine = DecoupledMachine(DMConfig.symmetric(WINDOW))
    print(f"{'kernel':8} {'AU%':>5} {'selfld':>7} {'LOD/k':>6}  "
          f"{'ESW md0':>8} {'ESW md60':>9} {'buffer md60':>12}")
    for name in PAPER_ORDER:
        program = build_kernel(name, SCALE)
        static = analyze_decoupling(program)
        compiled = machine.compile(program)
        dynamic = {}
        for md in (0, 60):
            result = machine.run(
                compiled, memory_differential=md,
                probe_esw=True, probe_buffers=True,
            )
            dynamic[md] = result
        occupancy = dynamic[60].buffer_occupancy
        print(f"{name:8} {static.au_fraction:>5.0%} "
              f"{static.self_loads:>7} {static.lod_rate:>6.1f}  "
              f"{dynamic[0].esw_mean:>8.0f} {dynamic[60].esw_mean:>9.0f} "
              f"{occupancy.peak if occupancy else 0:>12}")

    print(
        "\nESW is the span from the oldest unissued DU instruction to the "
        "youngest\ndispatched AU instruction: when it exceeds "
        f"{2 * WINDOW} (the two physical windows),\nthe DM is acting like "
        "a machine with a much larger single window."
    )


if __name__ == "__main__":
    main()
