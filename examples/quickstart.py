"""Quickstart: compare the two machines on one workload.

Builds the FLO52Q workload model, compiles it for the access decoupled
machine (DM) and the single-window superscalar (SWSM), and prints
speedups over the serial reference at memory differentials of 0 and 60
— a miniature of the paper's Figure 4.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DecoupledMachine,
    DMConfig,
    SerialMachine,
    SuperscalarMachine,
    SWSMConfig,
    build_kernel,
)

WINDOW = 32


def main() -> None:
    program = build_kernel("flo52q", scale=10_000)
    print(f"workload: {program.name}, {len(program)} instructions "
          f"({program.stats.memory_fraction:.0%} memory operations)")

    dm = DecoupledMachine(DMConfig.symmetric(WINDOW))
    swsm = SuperscalarMachine(SWSMConfig(window=WINDOW))
    serial = SerialMachine()

    dm_compiled = dm.compile(program)
    swsm_compiled = swsm.compile(program)

    print(f"\n{'md':>4} {'serial':>9} {'DM':>9} {'SWSM':>9} "
          f"{'DM speedup':>11} {'SWSM speedup':>13}")
    for md in (0, 60):
        reference = serial.run(program, md).cycles
        dm_cycles = dm.run(dm_compiled, memory_differential=md).cycles
        swsm_cycles = swsm.run(swsm_compiled, memory_differential=md).cycles
        print(f"{md:>4} {reference:>9} {dm_cycles:>9} {swsm_cycles:>9} "
              f"{reference / dm_cycles:>11.1f} "
              f"{reference / swsm_cycles:>13.1f}")

    print(
        "\nAt md=60 the decoupled machine hides far more of the memory "
        "latency than the\nsingle-window machine with the same window "
        "size — the paper's headline result."
    )


if __name__ == "__main__":
    main()
