"""Generated workloads: the grammar, a corpus, and the study in ~50 lines.

Samples kernels from the loop-nest grammar, inspects their static
profiles, pins a small corpus to a manifest, and runs the
generalization study over it — asking whether the paper's DM-vs-SWSM
structure survives on programs it never saw.

Run:  python examples/generated_workloads.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    FAMILIES,
    Session,
    build_generated,
    characterize,
    generate_corpus,
    load_manifest,
    run_generalization_study,
    verify_corpus,
    write_manifest,
)

SCALE = 3_000


def show_one_kernel_per_family() -> None:
    print("one generated kernel per family (seed 0):")
    for family in FAMILIES:
        program = build_generated(family, seed=0, scale=SCALE)
        profile = characterize(program)
        print(
            f"  {program.name:20s} {len(program):5d} instrs  "
            f"mem={profile.memory_fraction:.2f}  "
            f"lod/ki={profile.lod_rate:5.2f}  "
            f"predicted band: {profile.predicted_band}"
        )


def pin_and_reload_a_corpus(path: Path):
    corpus = generate_corpus(12, seed=7, scale=SCALE, name="example-12")
    write_manifest(corpus, path)
    reloaded = load_manifest(path)
    assert reloaded == corpus
    assert verify_corpus(reloaded) == []  # regenerates bit-identically
    print(f"\npinned {len(corpus)} kernels to {path.name}; "
          f"digests verified")
    return reloaded


def study(corpus) -> None:
    session = Session(scale=SCALE)
    result = run_generalization_study(session, corpus)
    print(f"\ngeneralization over {result.kernels} generated kernels "
          f"(window={result.window}, md={result.memory_differential}):")
    for family in result.families:
        print(
            f"  {family.family:10s} n={family.kernels}  "
            f"DM LHE={family.mean_dm_lhe:.3f}  "
            f"SWSM LHE={family.mean_swsm_lhe:.3f}  "
            f"holds {family.holds}/{family.kernels}"
        )
    print(f"paper crossover structure holds for {result.holds}/"
          f"{result.kernels} kernels")


def main() -> None:
    show_one_kernel_per_family()
    with tempfile.TemporaryDirectory() as tmp:
        corpus = pin_and_reload_a_corpus(Path(tmp) / "example-12.toml")
    study(corpus)


if __name__ == "__main__":
    main()
