"""Beyond the fixed differential: the memory-hierarchy scenario space.

The paper models memory as a fixed 60-cycle differential ("a weak
memory system capable of capturing no locality") and sketches a bypass
buffer as future work. This example runs the DM under the whole model
ladder — fixed cost, an L1+L2 hierarchy, the bypass buffer, banked
memory with conflict queuing, and a stride prefetcher — to show how
much of the DM/SWSM story survives once locality is captured (the
`repro ablation --study hierarchy` driver runs the same comparison
through cached sweeps).

Run:  python examples/memory_hierarchy.py
"""

from __future__ import annotations

from repro import (
    BankedMemory,
    BypassBuffer,
    CacheMemory,
    DecoupledMachine,
    DMConfig,
    FixedLatencyMemory,
    StreamPrefetcher,
    SuperscalarMachine,
    SWSMConfig,
    build_kernel,
)

WINDOW = 32


def memory_systems():
    yield "fixed md=60", lambda: FixedLatencyMemory(60)
    yield "L1+L2 cache", lambda: CacheMemory(miss_extra=60)
    yield "bypass(64) over fixed", lambda: BypassBuffer(
        FixedLatencyMemory(60), entries=64, line_bytes=1
    )
    yield "banked(8, busy=4)", lambda: BankedMemory(extra=60, banks=8)
    yield "stride prefetcher", lambda: StreamPrefetcher(
        FixedLatencyMemory(60)
    )


def main() -> None:
    dm = DecoupledMachine(DMConfig.symmetric(WINDOW))
    swsm = SuperscalarMachine(SWSMConfig(window=WINDOW))
    for name in ("mdg", "flo52q"):
        program = build_kernel(name, 8_000)
        dm_compiled = dm.compile(program)
        swsm_compiled = swsm.compile(program)
        print(f"\n{name} ({len(program)} instructions):")
        print(f"  {'memory system':24} {'DM cycles':>10} {'SWSM cycles':>12} "
              f"{'DM advantage':>13}")
        for label, make_memory in memory_systems():
            dm_cycles = dm.run(dm_compiled, memory=make_memory()).cycles
            swsm_cycles = swsm.run(swsm_compiled, memory=make_memory()).cycles
            print(f"  {label:24} {dm_cycles:>10} {swsm_cycles:>12} "
                  f"{swsm_cycles / dm_cycles:>12.2f}x")
    print(
        "\nLocality-capturing memory shrinks the differential the DM must "
        "hide, and with\nit the DM's advantage — exactly the trade the "
        "paper's footnote anticipates."
    )


if __name__ == "__main__":
    main()
