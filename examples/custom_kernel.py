"""Writing your own workload with the kernel DSL.

Builds a blocked matrix-vector kernel with an indirect row map (so the
address unit has self-loads to chase), inspects how it partitions, and
sweeps window sizes on both machines.

Run:  python examples/custom_kernel.py
"""

from __future__ import annotations

from repro import (
    DecoupledMachine,
    DMConfig,
    KernelBuilder,
    SerialMachine,
    SuperscalarMachine,
    SWSMConfig,
    analyze_decoupling,
)


def build_sparse_matvec(rows: int = 64, row_length: int = 8):
    """y[r] = sum_k A[rowmap[r]+k] * x[col(r,k)] over a banded matrix."""
    builder = KernelBuilder("sparse-matvec")
    a = builder.array("A", rows * row_length)
    x = builder.array("x", rows + row_length)
    y = builder.array("y", rows)
    rowmap = builder.array("rowmap", rows)

    iv = None
    for r in range(rows):
        iv = builder.induction(iv, tag="row")
        # The row offset lives in memory: an AU self-load.
        offset = builder.load(rowmap, r, iv, tag="rowmap")
        acc = None
        for k in range(row_length):
            element = builder.load(a, r * row_length + k, iv, offset,
                                   tag="A")
            vector = builder.load(x, r + k, iv, tag="x")
            term = builder.fmul(element, vector, tag="mac")
            acc = term if acc is None else builder.fadd(acc, term, tag="mac")
        assert acc is not None
        builder.store(y, r, acc, iv, tag="y")
    return builder.build()


def main() -> None:
    program = build_sparse_matvec()
    report = analyze_decoupling(program)
    print(f"{program.name}: {len(program)} instructions")
    print(f"  AU share {report.au_fraction:.0%}, "
          f"{report.self_loads} self-loads, "
          f"{report.lod_events} loss-of-decoupling events")

    serial = SerialMachine().run(program, 60).cycles
    print(f"\n{'window':>7} {'DM speedup':>11} {'SWSM speedup':>13}   (md=60)")
    for window in (8, 16, 32, 64):
        dm = DecoupledMachine(DMConfig.symmetric(window)).run_program(
            program, memory_differential=60
        )
        swsm = SuperscalarMachine(SWSMConfig(window=window)).run_program(
            program, memory_differential=60
        )
        print(f"{window:>7} {serial / dm.cycles:>11.1f} "
              f"{serial / swsm.cycles:>13.1f}")


if __name__ == "__main__":
    main()
