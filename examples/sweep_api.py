"""Declarative sweeps: one grid instead of a bespoke run_* function.

Crosses DM and SWSM with three memory-system variants on two kernels —
a study the per-figure entry points could never express — evaluated
through a disk-cached session. Run it twice and watch the second
invocation hit the cache instead of simulating.

Run:  python examples/sweep_api.py
"""

from __future__ import annotations

from repro import MemorySpec, Session, Sweep

CACHE_DIR = ".repro-cache"


def main() -> None:
    session = Session(scale=6_000, cache_dir=CACHE_DIR)
    sweep = Sweep.grid(
        name="memory-systems",
        program=("flo52q", "mdg"),
        machine=("dm", "swsm"),
        window=32,
        memory_differential=60,
        memory=(
            MemorySpec(kind="fixed"),               # the paper's model
            MemorySpec(kind="bypass", entries=64),  # future-work bypass
            MemorySpec(kind="cache"),               # two-level LRU
        ),
    )
    print(f"{sweep.name}: {len(sweep)} points\n")
    for point, result in session.run(sweep):
        speedup = session.speedup(point)
        print(f"  {point.program:7s} {point.machine:4s} "
              f"{point.memory.kind:6s} {result.cycles:7d} cycles  "
              f"speedup {speedup:5.2f}")
    stats = session.stats
    print(f"\ncache ({CACHE_DIR}): {stats['evaluated']} simulated, "
          f"{stats['disk_hits']} disk hits")


if __name__ == "__main__":
    main()
