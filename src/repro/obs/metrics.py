"""Prometheus text-format metrics for the simulation service.

:class:`MetricsRegistry` accumulates per-endpoint request counts and
latency histograms under a lock; :meth:`MetricsRegistry.render`
composes them with caller-supplied gauges (job states, queue depth)
and counters (engine rollups) into Prometheus exposition text
(version 0.0.4). :func:`parse_prometheus` is the matching minimal
parser used by tests and the CI smoke tool to prove the output is
well-formed.
"""

from __future__ import annotations

import re
import threading

#: Request-latency histogram bucket bounds, in seconds (plus +Inf).
LATENCY_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _labels(pairs: dict[str, str]) -> str:
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in pairs.items()
    )
    return "{" + inner + "}" if inner else ""


def _number(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


class MetricsRegistry:
    """Thread-safe request metrics + one-shot exposition renderer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: dict[tuple[str, str], int] = {}
        # endpoint -> (per-bucket counts incl. +Inf, sum seconds, count)
        self._latency: dict[str, list] = {}

    def observe_request(
        self, endpoint: str, status: int, seconds: float
    ) -> None:
        with self._lock:
            key = (endpoint, str(status))
            self._requests[key] = self._requests.get(key, 0) + 1
            entry = self._latency.setdefault(
                endpoint, [[0] * (len(LATENCY_BUCKETS) + 1), 0.0, 0]
            )
            buckets, _, _ = entry
            for i, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    buckets[i] += 1
            buckets[-1] += 1
            entry[1] += seconds
            entry[2] += 1

    def render(
        self,
        gauges: dict[str, float] | None = None,
        job_states: dict[str, int] | None = None,
        engine_counters: dict[str, int] | None = None,
    ) -> str:
        """Exposition text: request metrics plus caller-supplied views."""
        lines: list[str] = []
        with self._lock:
            requests = dict(self._requests)
            latency = {
                endpoint: (list(entry[0]), entry[1], entry[2])
                for endpoint, entry in self._latency.items()
            }
        lines.append(
            "# HELP repro_http_requests_total "
            "HTTP requests served, by endpoint and status."
        )
        lines.append("# TYPE repro_http_requests_total counter")
        for (endpoint, status), count in sorted(requests.items()):
            labels = _labels({"endpoint": endpoint, "status": status})
            lines.append(f"repro_http_requests_total{labels} {count}")
        lines.append(
            "# HELP repro_http_request_seconds "
            "HTTP request latency, by endpoint."
        )
        lines.append("# TYPE repro_http_request_seconds histogram")
        for endpoint in sorted(latency):
            buckets, total, count = latency[endpoint]
            bounds = [repr(b) for b in LATENCY_BUCKETS] + ["+Inf"]
            for bound, bucket_count in zip(bounds, buckets):
                labels = _labels({"endpoint": endpoint, "le": bound})
                lines.append(
                    f"repro_http_request_seconds_bucket{labels} "
                    f"{bucket_count}"
                )
            labels = _labels({"endpoint": endpoint})
            lines.append(
                f"repro_http_request_seconds_sum{labels} {repr(total)}"
            )
            lines.append(
                f"repro_http_request_seconds_count{labels} {count}"
            )
        if job_states is not None:
            lines.append(
                "# HELP repro_jobs Jobs known to the scheduler, by state."
            )
            lines.append("# TYPE repro_jobs gauge")
            for state, count in sorted(job_states.items()):
                labels = _labels({"state": state})
                lines.append(f"repro_jobs{labels} {_number(count)}")
        for name, value in sorted((gauges or {}).items()):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_number(value)}")
        if engine_counters is not None:
            lines.append(
                "# HELP repro_engine_counter_total "
                "Engine accelerator counters, process-wide."
            )
            lines.append("# TYPE repro_engine_counter_total counter")
            for counter, value in sorted(engine_counters.items()):
                labels = _labels({"counter": counter})
                lines.append(
                    f"repro_engine_counter_total{labels} {_number(value)}"
                )
        return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text into ``{name{labels}: value}``.

    Raises ``ValueError`` on the first malformed line — the point is
    validation (smoke tests), not a faithful client implementation.
    """
    samples: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels = match.group("labels") or ""
        if labels:
            inner = labels[1:-1]
            for part in filter(None, inner.split(",")):
                if not _LABEL.match(part):
                    raise ValueError(
                        f"line {lineno}: malformed label {part!r}"
                    )
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: malformed value {raw!r}"
            ) from exc
        samples[match.group("name") + labels] = value
    if not samples:
        raise ValueError("no samples found")
    return samples
