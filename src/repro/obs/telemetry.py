"""Per-run telemetry: what one simulation did, as a record.

Historically the only visibility into the engine stack was the
module-global ``PERF_COUNTERS`` dict and ``LAST_STRATEGY`` string in
:mod:`repro.machines.engine` — racy under threads and silently zeroed
in process-pool workers. The engines now thread an explicit
:class:`TelemetryCollector` through each run and attach the resulting
:class:`RunTelemetry` to the :class:`~repro.machines.engine
.SimulationResult`; the globals survive purely as lock-guarded
aggregated views fed from these per-run records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Counter keys every collector tracks — one-to-one with the legacy
#: ``repro.machines.engine.PERF_COUNTERS`` aggregate, so summing the
#: per-run records reproduces the global view exactly.
COUNTER_KEYS = (
    "steady_skips",
    "skipped_instructions",
    "event_runs",
    "batch_runs",
    "batch_lanes",
    "batch_fallback_lanes",
    "batch_steps",
)


def zero_counters() -> dict[str, int]:
    """A fresh all-zero counter dict covering :data:`COUNTER_KEYS`."""
    return dict.fromkeys(COUNTER_KEYS, 0)


def add_counters(into: dict[str, int], delta: dict[str, int]) -> dict[str, int]:
    """Accumulate ``delta`` into ``into`` (in place; returns ``into``)."""
    for key, value in delta.items():
        if value:
            into[key] = into.get(key, 0) + value
    return into


@dataclass(frozen=True)
class RunTelemetry:
    """Outcome metadata of one simulation run.

    ``counters`` holds exactly this run's contribution to the global
    aggregate (all :data:`COUNTER_KEYS`, zeros included), so counters
    summed over a sweep's results equal the ``PERF_COUNTERS`` delta
    the sweep produced — regardless of which process ran each point.
    ``cache_tier`` records where *this* copy of the result came from:
    ``fresh`` (simulated now), ``memory``, ``disk`` or ``store``.
    Excluded from result equality and cache keys: two results are the
    same schedule even when one was a cache hit.
    """

    strategy: str
    counters: dict[str, int] = field(default_factory=zero_counters)
    memory_stats: dict[str, object] = field(default_factory=dict)
    wall_seconds: float = 0.0
    sim_cycles: int = 0
    cache_tier: str = "fresh"

    def row_view(self) -> dict[str, object]:
        """Deterministic subset for service rows: strategy + nonzero
        counters. Excludes wall-clock and cache tier so identical
        simulations serialize identically wherever they ran."""
        return {
            "strategy": self.strategy,
            "counters": {k: v for k, v in self.counters.items() if v},
        }

    def store_view(self) -> dict[str, object]:
        """Deterministic subset persisted in the result store."""
        return {**self.row_view(), "cache_tier": self.cache_tier}


class TelemetryCollector:
    """Mutable per-run counter sink threaded through the engine loops.

    The hot loops bump ``collector.counters[key]`` directly — the same
    dict-increment cost as the old module global, without the races.
    """

    __slots__ = ("strategy", "counters")

    def __init__(self) -> None:
        self.strategy = "none"
        self.counters = zero_counters()

    def choose(self, strategy: str) -> None:
        self.strategy = strategy

    def snapshot(self) -> dict[str, int]:
        return dict(self.counters)
