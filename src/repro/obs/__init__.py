"""Observability: per-run telemetry, span tracing, service metrics.

The package is deliberately dependency-free within ``repro`` — the
engines, the session layer and the service all import *from* here,
never the other way around.

* :mod:`repro.obs.telemetry` — the :class:`RunTelemetry` record
  attached to every :class:`~repro.machines.engine.SimulationResult`
  and the per-run :class:`TelemetryCollector` the engines thread
  through their loops instead of bumping module globals.
* :mod:`repro.obs.trace` — the JSONL span tracer behind
  ``Session(trace=...)`` / ``--trace`` / ``REPRO_TRACE`` and its
  schema validator.
* :mod:`repro.obs.metrics` — the Prometheus text-format registry
  behind the service's ``GET /v1/metrics``.
"""

from .telemetry import (
    COUNTER_KEYS,
    RunTelemetry,
    TelemetryCollector,
    add_counters,
    zero_counters,
)
from .trace import SpanTracer, tracer_from_env, validate_trace

__all__ = [
    "COUNTER_KEYS",
    "RunTelemetry",
    "TelemetryCollector",
    "add_counters",
    "zero_counters",
    "SpanTracer",
    "tracer_from_env",
    "validate_trace",
]
