"""Structured span tracer: append-only JSONL with happened-at stamps.

Each record is one JSON object per line:

``{"ts": <monotonic seconds>, "pid": <int>, "tid": <int>,
   "ph": "B"|"E"|"I", "name": <str>, ...}``

``ph`` follows the familiar begin/end/instant phase convention; B/E
pairs share a per-process ``span`` id, and span records may carry an
``attrs`` object with arbitrary JSON attributes. ``ts`` is a
``time.monotonic()`` *happened-at* timestamp captured under the
writer lock, so within one process the file order is timestamp order
— the property :func:`validate_trace` checks, alongside B/E pairing.

Tracing is enabled by ``Session(trace=path)``, the ``--trace PATH``
CLI flag, or the ``REPRO_TRACE`` environment variable (see
:func:`tracer_from_env`).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

#: Schema tag written by the ``trace.open`` instant record.
TRACE_SCHEMA = "repro-trace-1"

_PHASES = frozenset({"B", "E", "I"})


class SpanTracer:
    """Thread-safe JSONL span writer.

    Opens the file in append mode so several tracers (or several runs)
    may share one file; every record is written and flushed as a
    single line under the instance lock.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pid = os.getpid()
        self.event("trace.open", schema=TRACE_SCHEMA)

    def _write(self, record: dict) -> None:
        with self._lock:
            if self._fh.closed:
                return
            full = {
                "ts": time.monotonic(),
                "pid": self._pid,
                "tid": threading.get_ident(),
                **record,
            }
            self._fh.write(json.dumps(full, sort_keys=True) + "\n")
            self._fh.flush()

    def event(self, name: str, **attrs: object) -> None:
        """Emit one instant ("I") record."""
        record: dict[str, object] = {"ph": "I", "name": name}
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Emit a B record now and the matching E record on exit."""
        span_id = next(self._ids)
        record: dict[str, object] = {"ph": "B", "name": name, "span": span_id}
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        try:
            yield
        finally:
            self._write({"ph": "E", "name": name, "span": span_id})

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


def tracer_from_env() -> SpanTracer | None:
    """A :class:`SpanTracer` on ``$REPRO_TRACE``, or None if unset."""
    path = os.environ.get("REPRO_TRACE", "").strip()
    return SpanTracer(path) if path else None


def validate_trace(path: str | Path) -> list[str]:
    """Check a trace file against the schema; return problems found.

    An empty list means the file is a valid trace: every line parses,
    required fields are present and typed, timestamps are monotone
    (non-decreasing) within each process, and every "B" record has
    exactly one matching "E" record (same pid, span id and name).
    """
    problems: list[str] = []
    last_ts: dict[int, float] = {}
    open_spans: dict[tuple[int, int], str] = {}
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        return ["trace file is empty"]
    for lineno, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: record is not an object")
            continue
        ts = record.get("ts")
        pid = record.get("pid")
        ph = record.get("ph")
        name = record.get("name")
        if not isinstance(ts, (int, float)):
            problems.append(f"line {lineno}: missing numeric 'ts'")
            continue
        if not isinstance(pid, int):
            problems.append(f"line {lineno}: missing integer 'pid'")
            continue
        if ph not in _PHASES:
            problems.append(f"line {lineno}: 'ph' must be one of B/E/I")
            continue
        if not isinstance(name, str) or not name:
            problems.append(f"line {lineno}: missing string 'name'")
            continue
        if pid in last_ts and ts < last_ts[pid]:
            problems.append(
                f"line {lineno}: ts {ts} went backwards for pid {pid}"
            )
        last_ts[pid] = ts
        if ph == "I":
            continue
        span = record.get("span")
        if not isinstance(span, int):
            problems.append(f"line {lineno}: span record missing 'span' id")
            continue
        key = (pid, span)
        if ph == "B":
            if key in open_spans:
                problems.append(f"line {lineno}: span {span} begun twice")
            open_spans[key] = name
        else:
            begun = open_spans.pop(key, None)
            if begun is None:
                problems.append(f"line {lineno}: end without begin ({name})")
            elif begun != name:
                problems.append(
                    f"line {lineno}: span {span} began as {begun!r} "
                    f"but ended as {name!r}"
                )
    for (pid, span), name in open_spans.items():
        problems.append(f"span {span} ({name!r}, pid {pid}) never ended")
    return problems
