"""Declarative experiment specs: operating points and sweep grids.

A :class:`Point` names one simulation exactly — program, machine,
window, memory differential, issue widths, partition strategy, code
expansion and memory-system variant. A :class:`Sweep` is a declarative
grid over any subset of those fields; iterating it yields the points of
the cartesian product (plus optional *zipped* axes for co-varying
fields, e.g. the AU/DU issue-width split whose two widths must sum to
the combined width).

Both are frozen and hashable: a point is a cache key, and
:func:`point_digest` turns (point, scale, latencies) into the stable
content address used by the :class:`~repro.api.session.Session` disk
cache. Sweeps round-trip through plain dicts (:meth:`Sweep.to_dict` /
:meth:`Sweep.from_dict`) and can be loaded from TOML or JSON files, so
a whole experiment fits in a config file::

    name = "dm-vs-swsm-memory"

    [base]
    program = "mdg"
    window = 32
    memory_differential = 60

    [axes]
    machine = ["dm", "swsm"]
    memory = [{kind = "fixed"}, {kind = "bypass", entries = 64},
              {kind = "cache"}]
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path

from ..config import LatencyModel
from ..errors import ConfigError
from ..memory import (
    BankedMemory,
    BypassBuffer,
    CacheMemory,
    FixedLatencyMemory,
    MemorySystem,
    StreamPrefetcher,
    hierarchy_levels,
)

__all__ = [
    "MemorySpec",
    "Point",
    "Sweep",
    "UNLIMITED",
    "load_sweep",
    "point_digest",
    "point_from_dict",
    "point_to_dict",
]

#: Sentinel window meaning "as large as the program" (paper: unlimited).
UNLIMITED: int | None = None

#: Bump when the cached result format or timing semantics change; part
#: of every disk-cache key, so stale caches invalidate themselves.
CACHE_FORMAT = 2

_MEMORY_KINDS = (
    "fixed", "bypass", "cache", "hierarchy", "banked", "prefetch",
)


@dataclass(frozen=True)
class MemorySpec:
    """Declarative description of the memory system behind a run.

    The kinds, and the fields each one reads:

    * ``fixed`` — the paper's model: every access costs the memory
      differential; no other field applies.
    * ``bypass`` — an LRU bypass buffer (the paper's future-work
      proposal) in front of the fixed model; ``entries``,
      ``line_bytes``.
    * ``cache`` — the stock two-level LRU hierarchy
      (:data:`repro.memory.DEFAULT_HIERARCHY`) over a fixed miss cost.
    * ``hierarchy`` — a cache hierarchy with *configurable* geometry:
      ``levels`` is a tuple of ``(size_bytes, line_bytes,
      associativity, hit_extra)`` rows, outermost last (``None`` means
      the stock hierarchy).
    * ``banked`` — interleaved banks with conflict queuing;
      ``banks``, ``bank_busy``, and ``line_bytes`` as the interleave
      granularity.
    * ``prefetch`` — a stride/stream prefetcher over the fixed model;
      ``entries``, ``line_bytes``, ``streams``, ``degree``.

    The memory differential itself stays a :class:`Point` field — the
    spec describes the *structure*, the point supplies the cost.
    """

    kind: str = "fixed"
    entries: int = 64
    line_bytes: int = 32
    levels: tuple[tuple[int, int, int, int], ...] | None = None
    banks: int = 8
    bank_busy: int = 4
    streams: int = 4
    degree: int = 2

    def __post_init__(self) -> None:
        if self.kind not in _MEMORY_KINDS:
            raise ConfigError(
                f"unknown memory kind {self.kind!r}; "
                f"known: {', '.join(_MEMORY_KINDS)}"
            )
        if self.levels is not None:
            rows = []
            for row in self.levels:
                if len(row) != 4:
                    raise ConfigError(
                        "each cache level needs (size_bytes, line_bytes, "
                        f"associativity, hit_extra), got {row!r}"
                    )
                rows.append(tuple(int(value) for value in row))
            # Normalise lists from TOML/JSON into hashable tuples.
            object.__setattr__(self, "levels", tuple(rows))

    def build(self, memory_differential: int) -> MemorySystem:
        """Instantiate the model for one memory differential."""
        if self.kind == "bypass":
            return BypassBuffer(
                FixedLatencyMemory(memory_differential),
                entries=self.entries,
                line_bytes=self.line_bytes,
            )
        if self.kind == "cache":
            return CacheMemory(miss_extra=memory_differential)
        if self.kind == "hierarchy":
            if self.levels is None:
                return CacheMemory(miss_extra=memory_differential)
            return CacheMemory(
                levels=hierarchy_levels(self.levels),
                miss_extra=memory_differential,
            )
        if self.kind == "banked":
            return BankedMemory(
                extra=memory_differential,
                banks=self.banks,
                interleave_bytes=self.line_bytes,
                busy=self.bank_busy,
            )
        if self.kind == "prefetch":
            return StreamPrefetcher(
                FixedLatencyMemory(memory_differential),
                entries=self.entries,
                line_bytes=self.line_bytes,
                streams=self.streams,
                degree=self.degree,
            )
        return FixedLatencyMemory(memory_differential)


@dataclass(frozen=True)
class Point:
    """One fully-specified simulation: the unit of caching and sweeping.

    ``window=None`` is the paper's unlimited window (resolved to the
    program length at evaluation time). Fields a machine does not read
    are folded away by the machine's ``canonical`` hook before caching,
    so e.g. every serial point at one differential shares one run.
    """

    program: str
    machine: str = "dm"
    window: int | None = 32
    memory_differential: int = 0
    au_width: int = 4
    du_width: int = 5
    swsm_width: int = 9
    partition: str = "slice"
    expansion: float = 0.0
    memory: MemorySpec = field(default_factory=MemorySpec)
    probe_esw: bool = False

    def __post_init__(self) -> None:
        if not self.program:
            raise ConfigError("point needs a program name")
        if self.window is not None and self.window < 1:
            raise ConfigError(f"window must be >= 1 or None, got {self.window}")
        if self.memory_differential < 0:
            raise ConfigError(
                f"memory differential must be >= 0, "
                f"got {self.memory_differential}"
            )
        for name in ("au_width", "du_width", "swsm_width"):
            if getattr(self, name) < 1:
                raise ConfigError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if not 0.0 <= self.expansion or not math.isfinite(self.expansion):
            raise ConfigError(
                f"expansion must be a finite fraction >= 0, "
                f"got {self.expansion}"
            )


_POINT_FIELDS = tuple(f.name for f in fields(Point))


def point_digest(
    point: Point, scale: int, latencies: LatencyModel
) -> str:
    """Stable content address of (point, scale, latencies).

    Used as the disk-cache key: any change to the spec, the kernel
    scale, the latency model or the cache format yields a new digest.
    For generated programs (``gen:<family>:<seed>``) the grammar
    version joins the key, because a grammar bump changes what those
    names *build* — cached results from an older grammar must not be
    served for them.
    """
    doc = {
        "format": CACHE_FORMAT,
        "point": asdict(point),
        "scale": scale,
        "latencies": asdict(latencies),
    }
    # Case-insensitive to match get_kernel's name normalisation.
    if point.program.lower().startswith("gen:"):
        from ..workloads.grammar import GRAMMAR_VERSION

        doc["grammar"] = GRAMMAR_VERSION
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def point_batch_key(point: Point) -> tuple | None:
    """Grouping key for the batched sweep engine, or None.

    Points with the same key share one compiled machine program, so a
    whole sweep axis (windows, differentials, widths, memory variants)
    can stack into one batched simulation — see
    :mod:`repro.machines.batch` and the ``Session.run`` batch planner.
    Probe points are excluded (the probing engine has no batched
    form), as is any machine without a ``batch_configs`` hook (the
    planner checks the hook separately; serial is analytic and needs
    no batching). Widths deliberately stay *out* of the key: the
    vector loop supports per-lane widths, and compilation is
    width-independent.
    """
    if point.probe_esw:
        return None
    return (point.program, point.machine, point.partition, point.expansion)


def point_to_dict(point: Point) -> dict:
    """Plain-dict form of a point (JSON/TOML compatible, window None ->
    ``"unl"``) — the same field spelling :meth:`Sweep.to_dict` uses for
    its base point, and the wire format of the service API."""
    return {
        name: _value_to_plain(getattr(point, name))
        for name in _POINT_FIELDS
    }


def point_from_dict(data: dict) -> Point:
    """Inverse of :func:`point_to_dict`; tolerant of sparse dicts."""
    if not isinstance(data, dict):
        raise ConfigError(f"point spec must be a table/object, got {data!r}")
    unknown = sorted(set(data) - set(_POINT_FIELDS))
    if unknown:
        raise ConfigError(
            f"unknown point field {unknown[0]!r}; "
            f"point fields: {', '.join(_POINT_FIELDS)}"
        )
    return Point(**{
        key: _value_from_plain(key, value) for key, value in data.items()
    })


AxisKey = str | tuple[str, ...]


def _program_from_axes(
    axes: list[tuple[AxisKey, tuple[object, ...]]],
) -> object | None:
    """First program named by a program axis (for the placeholder base)."""
    for key, values in axes:
        names = key if isinstance(key, tuple) else (key,)
        if "program" in names:
            first = values[0]
            if isinstance(key, tuple):
                return first[names.index("program")]  # type: ignore[index]
            return first
    return None


@dataclass(frozen=True)
class Sweep:
    """A declarative grid of points.

    ``axes`` is an ordered tuple of ``(field-or-fields, values)``
    pairs. A plain string key varies one :class:`Point` field; a tuple
    key *zips* several fields together (each value is a tuple of the
    same arity), for axes that must co-vary.
    """

    base: Point
    axes: tuple[tuple[AxisKey, tuple[object, ...]], ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        for key, values in self.axes:
            names = key if isinstance(key, tuple) else (key,)
            for axis_field in names:
                if axis_field not in _POINT_FIELDS:
                    raise ConfigError(
                        f"unknown sweep axis {axis_field!r}; "
                        f"point fields: {', '.join(_POINT_FIELDS)}"
                    )
            if not values:
                raise ConfigError(f"sweep axis {key!r} has no values")
            if isinstance(key, tuple):
                for value in values:
                    if not isinstance(value, tuple) or len(value) != len(key):
                        raise ConfigError(
                            f"zipped axis {key!r} needs {len(key)}-tuples, "
                            f"got {value!r}"
                        )

    @classmethod
    def grid(
        cls,
        name: str = "",
        zipped: dict[tuple[str, ...], object] | None = None,
        **coords: object,
    ) -> "Sweep":
        """Build a sweep from keyword coordinates.

        A tuple/list value becomes an axis; a scalar (including strings
        and ``None``) fixes that field on the base point. ``zipped``
        maps tuples of field names to sequences of value tuples.
        """
        axes: list[tuple[AxisKey, tuple[object, ...]]] = []
        scalars: dict[str, object] = {}
        for key, value in coords.items():
            if key not in _POINT_FIELDS:
                raise ConfigError(
                    f"unknown point field {key!r}; "
                    f"point fields: {', '.join(_POINT_FIELDS)}"
                )
            if isinstance(value, (tuple, list)):
                axes.append((key, tuple(value)))
            else:
                scalars[key] = value
        for key_fields, values in (zipped or {}).items():
            axes.append(
                (tuple(key_fields), tuple(tuple(v) for v in values))  # type: ignore[arg-type]
            )
        if "program" not in scalars:
            inferred = _program_from_axes(axes)
            if inferred is None:
                raise ConfigError("sweep needs a program (scalar or axis)")
            scalars["program"] = inferred
        return cls(base=Point(**scalars), axes=tuple(axes), name=name)  # type: ignore[arg-type]

    def points(self):
        """Iterate the grid in axis order (last axis fastest)."""
        keys = [key for key, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        for combo in itertools.product(*value_lists):
            overrides: dict[str, object] = {}
            for key, value in zip(keys, combo):
                if isinstance(key, tuple):
                    overrides.update(zip(key, value))  # type: ignore[arg-type]
                else:
                    overrides[key] = value
            yield replace(self.base, **overrides)  # type: ignore[arg-type]

    def __len__(self) -> int:
        return math.prod(len(values) for _, values in self.axes)

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON/TOML compatible, window None -> "unl")."""
        axes: dict[str, list] = {}
        for key, values in self.axes:
            key_name = ",".join(key) if isinstance(key, tuple) else key
            axes[key_name] = [_value_to_plain(v) for v in values]
        return {
            "name": self.name,
            "base": {
                f: _value_to_plain(getattr(self.base, f))
                for f in _POINT_FIELDS
            },
            "axes": axes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Sweep":
        """Inverse of :meth:`to_dict`; tolerant of sparse base dicts."""
        axes: list[tuple[AxisKey, tuple[object, ...]]] = []
        for key_name, values in dict(data.get("axes", {})).items():
            names = tuple(part.strip() for part in key_name.split(","))
            key: AxisKey = names if len(names) > 1 else names[0]
            if isinstance(key, tuple):
                for value in values:
                    if not isinstance(value, (tuple, list)) or len(
                        value
                    ) != len(key):
                        raise ConfigError(
                            f"zipped axis {key_name!r} needs "
                            f"{len(key)}-element rows, got {value!r}"
                        )
                parsed = tuple(
                    tuple(
                        _value_from_plain(axis_field, item)
                        for axis_field, item in zip(key, value)
                    )
                    for value in values
                )
            else:
                parsed = tuple(_value_from_plain(key, v) for v in values)
            axes.append((key, parsed))
        base_args = {
            key: _value_from_plain(key, value)
            for key, value in dict(data.get("base", {})).items()
        }
        if "program" not in base_args:
            inferred = _program_from_axes(axes)
            if inferred is None:
                raise ConfigError(
                    "sweep spec needs base.program or a program axis"
                )
            base_args["program"] = inferred
        return cls(
            base=Point(**base_args),  # type: ignore[arg-type]
            axes=tuple(axes),
            name=str(data.get("name", "")),
        )


def _value_to_plain(value: object) -> object:
    if value is None:
        return "unl"
    if isinstance(value, MemorySpec):
        return asdict(value)
    return value


def _value_from_plain(axis_field: str, value: object) -> object:
    if axis_field == "window" and (
        value is None or value in ("unl", "unlimited")
    ):
        return None
    if axis_field == "memory":
        if isinstance(value, MemorySpec):
            return value
        if isinstance(value, dict):
            return MemorySpec(**value)
        if isinstance(value, str):
            return MemorySpec(kind=value)
        raise ConfigError(f"cannot parse memory spec from {value!r}")
    if axis_field == "expansion" and isinstance(value, (int, float)):
        return float(value)
    return value


def load_sweep(path: str | Path) -> Sweep:
    """Load a sweep spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        if path.suffix.lower() == ".toml":
            import tomllib

            with path.open("rb") as handle:
                data = tomllib.load(handle)
        else:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
    except OSError as error:
        raise ConfigError(f"cannot read sweep spec {path}: {error}") from None
    except ValueError as error:  # TOMLDecodeError / JSONDecodeError
        raise ConfigError(f"cannot parse sweep spec {path}: {error}") from None
    if not isinstance(data, dict):
        raise ConfigError(f"sweep spec {path} must be a table/object")
    return Sweep.from_dict(data)
