"""The experiment session: evaluate points and sweeps, cached and parallel.

``Session`` subsumes the old ``Lab``. It keeps the same three levels of
in-memory memoisation — architectural traces, compiled machine
programs, simulation results — and adds two things:

* a **content-addressed disk cache** (``cache_dir``): every result is
  stored under the SHA-256 of (point, scale, latency model, cache
  format), so a second process, a later session or a re-run of a CLI
  command reuses earlier simulations byte-for-byte; any change to the
  spec, the scale or the latencies changes the key and forces a fresh
  run;
* a **pluggable executor** (``jobs``): sweeps fan out over a
  ``concurrent.futures`` process pool, and because every simulation is
  deterministic and cycle-exact the results are identical to a serial
  run — only the wall clock changes.

Machines are resolved through :mod:`repro.machines.registry`, so a
machine registered with :func:`repro.machines.register_machine`
participates in sweeps, caching and parallelism with no changes here.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable

from ..config import LatencyModel
from ..errors import ConfigError
from ..ir import Program
from ..ir.transforms import expand_code
from ..kernels import build_kernel
from ..machines import SimulationResult
from ..machines.registry import get_machine
from .spec import Point, Sweep, point_digest

__all__ = ["Session", "SweepResult"]

#: Distinguishes "no argument" from an explicit None in Session.store().
_UNSET = object()


@dataclass(frozen=True)
class SweepResult:
    """The evaluated points of one sweep, in sweep order."""

    points: tuple[Point, ...]
    results: tuple[SimulationResult, ...]
    name: str = ""

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(zip(self.points, self.results))

    def cycles(self) -> tuple[int, ...]:
        return tuple(result.cycles for result in self.results)


@dataclass
class Session:
    """Builds, compiles, simulates and caches — in memory and on disk.

    Attributes:
        scale: approximate architectural instruction count per kernel.
        au_width / du_width / swsm_width: default issue widths used by
            the convenience accessors (paper: 4+5=9); explicit
            :class:`~repro.api.spec.Point` fields always win.
        latencies: operation latency model (a fresh instance per
            session — sessions never alias each other's state).
        cache_dir: directory of the content-addressed result cache;
            ``None`` disables disk caching.
        jobs: default process-pool width for :meth:`run` (1 = serial).
        engine: scheduling-engine strategy override, forwarded to the
            simulation engine (and to pool workers) through the
            ``REPRO_EVENT_ENGINE`` toggle: ``"events"`` forces the
            event-heap scheduler, ``"soa"`` the cycle loops, ``"auto"``
            the capability-driven choice; ``None`` (default) leaves
            the process environment in charge. Every strategy is
            bit-exact, so cache keys do not cover this knob.
    """

    scale: int = 20_000
    au_width: int = 4
    du_width: int = 5
    swsm_width: int = 9
    latencies: LatencyModel = field(default_factory=LatencyModel)
    cache_dir: str | Path | None = None
    jobs: int = 1
    engine: str | None = None

    def __post_init__(self) -> None:
        if self.engine not in (None, "auto", "events", "soa"):
            raise ConfigError(
                "engine must be one of None, 'auto', 'events', 'soa'; "
                f"got {self.engine!r}"
            )
        self._programs: dict[tuple[str, float], Program] = {}
        self._custom: dict[str, Program] = {}
        self._compiled: dict[tuple[str, float, str, str], object] = {}
        self._profiles: dict[str, object] = {}
        self._results: dict[Point, SimulationResult] = {}
        self._result_store = None
        self._store_keys: dict[Point, str] = {}
        self.stats = {
            "evaluated": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "disk_misses": 0,
            "store_hits": 0,
        }

    # -- persistent result store -------------------------------------------------

    def store(self, target=_UNSET):
        """The session's persistent :class:`~repro.report.ResultStore`.

        Without an argument, returns the attached store (or ``None``).
        With one, attaches it and returns it: pass a
        :class:`~repro.report.ResultStore`, a path (opened on demand),
        or ``None`` to detach. While attached, every evaluated point —
        fresh, memory-cached or disk-cached — is upserted under its
        content-addressed cache key, so the store accumulates exactly
        the set of distinct operating points this session has seen.
        Custom (non-registry) programs stay out, for the same reason
        they stay out of the disk cache: the key does not cover their
        content.
        """
        if target is _UNSET:
            return self._result_store
        # The recorded-key memo is per store: a fresh store must see
        # every point again even if this session already hashed it.
        self._store_keys = {}
        if target is None:
            self._result_store = None
            return None
        from ..report.store import ResultStore

        if not isinstance(target, ResultStore):
            target = ResultStore(target)
        self._result_store = target
        return target

    # -- programs ----------------------------------------------------------------

    def program(self, name: str) -> Program:
        """The architectural trace of a kernel at this session's scale."""
        return self._program_for(name, 0.0)

    def register_program(self, program: Program) -> None:
        """Make a custom (non-registry) program available under its name.

        Custom programs exist only in this process: points naming them
        are evaluated locally (never shipped to workers) and stay out
        of the disk cache, whose keys cover only registry kernels —
        a cached entry for a same-named trace with different content
        would otherwise be silently wrong.
        """
        self._custom[program.name] = program
        self._programs.pop((program.name, 0.0), None)
        self._profiles.pop(program.name, None)

    def _program_for(self, name: str, expansion: float) -> Program:
        key = (name, expansion)
        if key not in self._programs:
            if expansion:
                base = self._program_for(name, 0.0)
                self._programs[key] = expand_code(base, expansion)
            elif name in self._custom:
                self._programs[key] = self._custom[name]
            else:
                self._programs[key] = build_kernel(name, self.scale)
        return self._programs[key]

    def profile(self, name: str):
        """The static workload profile of a kernel at this session's
        scale (cached) — see :func:`repro.workloads.characterize`."""
        if name not in self._profiles:
            from ..workloads import characterize

            self._profiles[name] = characterize(self.program(name))
        return self._profiles[name]

    # -- compilation -------------------------------------------------------------

    def compiled(
        self,
        program: str,
        machine: str = "dm",
        partition: str = "slice",
        expansion: float = 0.0,
    ):
        """The lowered machine program (cached; window-independent)."""
        key = (program, expansion, machine, partition)
        if key not in self._compiled:
            model = get_machine(machine)
            source = self._program_for(program, expansion)
            point = Point(
                program=program,
                machine=machine,
                partition=partition,
                expansion=expansion,
            )
            self._compiled[key] = model.compile(source, point, self.latencies)
        return self._compiled[key]

    # -- windows -----------------------------------------------------------------

    def resolve_window(self, name: str, window: int | None) -> int:
        """Translate the unlimited-window sentinel into a concrete size."""
        if window is not None:
            return window
        return max(len(self.program(name)), 1)

    # -- point evaluation --------------------------------------------------------

    def _canonical(self, point: Point) -> Point:
        return get_machine(point.machine).canonical(point)

    def evaluate(self, point: Point) -> SimulationResult:
        """Cycle-exact result of one point (memory cache, disk, simulate)."""
        canonical = self._canonical(point)
        cached = self._lookup(canonical)
        if cached is not None:
            self._record(canonical, cached)
            return cached
        result = self._simulate(canonical)
        self._store(canonical, result)
        self.stats["evaluated"] += 1
        self._record(canonical, result)
        return result

    def _record(self, canonical: Point, result: SimulationResult) -> None:
        store = self._result_store
        if store is None or canonical.program in self._custom:
            return
        key = self._store_keys.get(canonical)
        if key is not None:
            # Already warehoused by this session: keep the key visible
            # to manifest tracking without re-hashing the point.
            store.touch(key)
        else:
            self._store_keys[canonical] = store.record(
                canonical, self.scale, self.latencies, result
            )

    def cycles(self, point: Point) -> int:
        return self.evaluate(point).cycles

    def speedup(self, point: Point) -> float:
        """Speedup over the serial reference at the same differential."""
        serial = self.cycles(
            replace(point, machine="serial", probe_esw=False)
        )
        return serial / self.cycles(point)

    def _lookup(self, canonical: Point) -> SimulationResult | None:
        if canonical in self._results:
            self.stats["memory_hits"] += 1
            return self._results[canonical]
        if canonical.program in self._custom:
            return None  # disk keys don't cover custom program content
        loaded = self._disk_load(canonical)
        if loaded is not None:
            self._results[canonical] = loaded
            return loaded
        loaded = self._store_load(canonical)
        if loaded is not None:
            self._results[canonical] = loaded
            return loaded
        return None

    def _store_load(self, canonical: Point) -> SimulationResult | None:
        """Rehydrate a point from the attached result store, if resident.

        This is what makes sweeps resumable: a killed-and-rerun sweep
        against the same store only simulates the missing points — the
        rest are served from the store's pickled payloads, exactly as a
        disk-cache hit would be (the keys are the same content
        addresses).
        """
        store = self._result_store
        if store is None:
            return None
        key = point_digest(canonical, self.scale, self.latencies)
        result = store.load(key)
        if result is None:
            return None
        self.stats["store_hits"] += 1
        # The row is already warehoused under this key; remember it so
        # _record touches the key instead of re-pickling the result.
        self._store_keys[canonical] = key
        return result

    def _store(self, canonical: Point, result: SimulationResult) -> None:
        self._results[canonical] = result
        if canonical.program not in self._custom:
            self._disk_store(canonical, result)

    def _simulate(self, canonical: Point) -> SimulationResult:
        model = get_machine(canonical.machine)
        program = self._program_for(canonical.program, canonical.expansion)
        compiled = self.compiled(
            canonical.program,
            canonical.machine,
            canonical.partition,
            canonical.expansion,
        )
        window = (
            canonical.window
            if canonical.window is not None
            else max(len(program), 1)
        )
        memory = canonical.memory.build(canonical.memory_differential)
        if self.engine is None:
            result = model.simulate(
                compiled, canonical, window, memory, self.latencies
            )
        else:
            previous = os.environ.get("REPRO_EVENT_ENGINE")
            os.environ["REPRO_EVENT_ENGINE"] = self.engine
            try:
                result = model.simulate(
                    compiled, canonical, window, memory, self.latencies
                )
            finally:
                if previous is None:
                    del os.environ["REPRO_EVENT_ENGINE"]
                else:
                    os.environ["REPRO_EVENT_ENGINE"] = previous
        extras = memory.stats()
        if extras:
            # Stateful models report their hit/conflict counters
            # (bypass_hit_rate, cache_hit_rate, bank_conflict_rate,
            # prefetch_hit_rate, ...) into the result metadata.
            result = replace(result, meta={**result.meta, **extras})
        return result

    # -- sweeps ------------------------------------------------------------------

    def run(
        self, sweep: Sweep | Iterable[Point], jobs: int | None = None
    ) -> SweepResult:
        """Evaluate every point of a sweep; optionally in parallel.

        ``jobs`` overrides the session default. With ``jobs > 1``,
        points that are not already cached are evaluated on a process
        pool; results are bit-identical to a serial run (simulations
        are deterministic) and are folded back into this session's
        memory and disk caches.
        """
        if isinstance(sweep, Sweep):
            points = tuple(sweep.points())
            name = sweep.name
        else:
            points = tuple(sweep)
            name = ""
        effective_jobs = self.jobs if jobs is None else jobs
        if effective_jobs > 1:
            self._prefetch_parallel(points, effective_jobs)
        results = tuple(self.evaluate(point) for point in points)
        return SweepResult(points=points, results=results, name=name)

    def _prefetch_parallel(self, points: tuple[Point, ...], jobs: int) -> None:
        context = _fork_context()
        pending: list[Point] = []
        seen: set[Point] = set()
        for point in points:
            canonical = self._canonical(point)
            if canonical in seen:
                continue
            seen.add(canonical)
            if canonical.program in self._custom:
                continue  # custom programs only exist in this process
            if context is None and canonical.machine not in _BUILTIN_MACHINES:
                # Without fork, a worker can't see machines registered
                # at runtime; evaluate those points locally instead.
                continue
            if self._lookup(canonical) is None:
                pending.append(canonical)
        if not pending:
            return
        config = {
            "scale": self.scale,
            "au_width": self.au_width,
            "du_width": self.du_width,
            "swsm_width": self.swsm_width,
            "latencies": self.latencies,
            "engine": self.engine,
        }
        workers = min(jobs, len(pending))
        chunksize = max(1, len(pending) // (workers * 4))
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(config,),
        )
        try:
            for canonical, result in pool.map(
                _worker_evaluate, pending, chunksize=chunksize
            ):
                self._store(canonical, result)
                self.stats["evaluated"] += 1
        except BaseException:
            # Ctrl-C (or any abort) must not hang waiting for queued
            # work: cancel what hasn't started and return immediately —
            # points already folded in stay cached, so a rerun resumes.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown()

    # -- disk cache --------------------------------------------------------------

    def _disk_path(self, canonical: Point) -> Path | None:
        if self.cache_dir is None:
            return None
        digest = point_digest(canonical, self.scale, self.latencies)
        return Path(self.cache_dir) / f"{digest}.pkl"

    def _disk_load(self, canonical: Point) -> SimulationResult | None:
        path = self._disk_path(canonical)
        if path is None:
            return None
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.stats["disk_misses"] += 1
            return None
        except Exception:
            self.stats["disk_misses"] += 1
            return None  # corrupt entry: treat as a miss, re-simulate
        self.stats["disk_hits"] += 1
        return result

    def _disk_store(self, canonical: Point, result: SimulationResult) -> None:
        path = self._disk_path(canonical)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    # -- convenience accessors (the old Lab vocabulary) --------------------------

    def dm_point(
        self, name: str, window: int | None, memory_differential: int, **over
    ) -> Point:
        return Point(
            program=name,
            machine="dm",
            window=window,
            memory_differential=memory_differential,
            au_width=self.au_width,
            du_width=self.du_width,
            **over,
        )

    def swsm_point(
        self, name: str, window: int | None, memory_differential: int, **over
    ) -> Point:
        return Point(
            program=name,
            machine="swsm",
            window=window,
            memory_differential=memory_differential,
            swsm_width=self.swsm_width,
            **over,
        )

    def serial_point(self, name: str, memory_differential: int) -> Point:
        return Point(
            program=name,
            machine="serial",
            window=None,
            memory_differential=memory_differential,
        )

    def dm_compiled(self, name: str):
        return self.compiled(name, "dm")

    def swsm_compiled(self, name: str):
        return self.compiled(name, "swsm")

    def dm_result(
        self, name: str, window: int | None, memory_differential: int
    ) -> SimulationResult:
        """Cached DM run (both unit windows set to ``window``)."""
        return self.evaluate(self.dm_point(name, window, memory_differential))

    def swsm_result(
        self, name: str, window: int | None, memory_differential: int
    ) -> SimulationResult:
        """Cached SWSM run."""
        return self.evaluate(self.swsm_point(name, window, memory_differential))

    def dm_cycles(self, name: str, window: int | None, md: int) -> int:
        return self.dm_result(name, window, md).cycles

    def swsm_cycles(self, name: str, window: int | None, md: int) -> int:
        return self.swsm_result(name, window, md).cycles

    def serial_cycles(self, name: str, md: int) -> int:
        return self.evaluate(self.serial_point(name, md)).cycles

    def dm_speedup(self, name: str, window: int | None, md: int) -> float:
        return self.serial_cycles(name, md) / self.dm_cycles(name, window, md)

    def swsm_speedup(self, name: str, window: int | None, md: int) -> float:
        return self.serial_cycles(name, md) / self.swsm_cycles(name, window, md)

    def dm_lhe(self, name: str, window: int | None, md: int) -> float:
        """Latency-hiding effectiveness of the DM at one operating point."""
        perfect = self.dm_cycles(name, window, 0)
        actual = self.dm_cycles(name, window, md)
        return perfect / actual


# -- process-pool workers ----------------------------------------------------------

#: Machines registered at import time, visible in any worker process.
_BUILTIN_MACHINES = frozenset({"dm", "swsm", "serial"})


def _fork_context():
    """The fork start-method context, or None where fork is unavailable.

    Forked workers inherit runtime machine registrations; spawned ones
    would not, so the caller keeps non-builtin machines local then.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


_WORKER_SESSION: Session | None = None


def _worker_init(config: dict) -> None:
    global _WORKER_SESSION
    _WORKER_SESSION = Session(**config)


def _worker_evaluate(point: Point) -> tuple[Point, SimulationResult]:
    assert _WORKER_SESSION is not None
    return point, _WORKER_SESSION.evaluate(point)
