"""The experiment session: evaluate points and sweeps, cached and parallel.

``Session`` subsumes the old ``Lab``. It keeps the same three levels of
in-memory memoisation — architectural traces, compiled machine
programs, simulation results — and adds two things:

* a **content-addressed disk cache** (``cache_dir``): every result is
  stored under the SHA-256 of (point, scale, latency model, cache
  format), so a second process, a later session or a re-run of a CLI
  command reuses earlier simulations byte-for-byte; any change to the
  spec, the scale or the latencies changes the key and forces a fresh
  run;
* a **pluggable executor** (``jobs``): sweeps fan out over a
  ``concurrent.futures`` process pool, and because every simulation is
  deterministic and cycle-exact the results are identical to a serial
  run — only the wall clock changes.

Machines are resolved through :mod:`repro.machines.registry`, so a
machine registered with :func:`repro.machines.register_machine`
participates in sweeps, caching and parallelism with no changes here.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import as_completed
from contextlib import contextmanager, nullcontext
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Iterable

from ..config import LatencyModel
from ..errors import ConfigError
from ..ir import Program
from ..ir.transforms import expand_code
from ..kernels import build_kernel
from ..machines import SimulationResult
from ..machines.engine import record_counters
from ..machines.registry import get_machine
from ..obs.telemetry import RunTelemetry, add_counters, zero_counters
from ..obs.trace import SpanTracer
from ..partition import MachineProgram
from .spec import Point, Sweep, point_batch_key, point_digest

__all__ = ["Session", "SweepResult"]

#: Distinguishes "no argument" from an explicit None in Session.store().
_UNSET = object()

#: Version of the on-disk lowering-cache entries (bump on any change to
#: what compilation derives from a program).
_LOWERING_FORMAT = 1


@dataclass(frozen=True)
class SweepResult:
    """The evaluated points of one sweep, in sweep order."""

    points: tuple[Point, ...]
    results: tuple[SimulationResult, ...]
    name: str = ""
    #: Per-sweep telemetry rollup (cache-tier hits, engine counters,
    #: strategy histogram, wall seconds) — see :meth:`Session.run`.
    #: Excluded from equality: two runs of one sweep are the same
    #: result regardless of where each point came from.
    telemetry: dict | None = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(zip(self.points, self.results))

    def cycles(self) -> tuple[int, ...]:
        return tuple(result.cycles for result in self.results)


@dataclass
class Session:
    """Builds, compiles, simulates and caches — in memory and on disk.

    Attributes:
        scale: approximate architectural instruction count per kernel.
        au_width / du_width / swsm_width: default issue widths used by
            the convenience accessors (paper: 4+5=9); explicit
            :class:`~repro.api.spec.Point` fields always win.
        latencies: operation latency model (a fresh instance per
            session — sessions never alias each other's state).
        cache_dir: directory of the content-addressed result cache;
            ``None`` disables disk caching.
        jobs: default process-pool width for :meth:`run` (1 = serial).
        engine: scheduling-engine strategy override, forwarded to the
            simulation engine (and to pool workers) through the
            ``REPRO_EVENT_ENGINE`` toggle: ``"events"`` forces the
            event-heap scheduler, ``"soa"`` the cycle loops, ``"auto"``
            the capability-driven choice; ``None`` (default) leaves
            the process environment in charge. Every strategy is
            bit-exact, so cache keys do not cover this knob.
        batch: batched-sweep planner toggle for :meth:`run`. ``True``
            groups sweep points that share a compiled program and
            simulates each group through the batched engine
            (:mod:`repro.machines.batch`); ``False`` keeps every point
            on the per-point path; ``None`` (default) defers to the
            ``REPRO_BATCH_ENGINE`` environment toggle (default: on).
            Batched runs are bit-exact with per-point runs and write
            the same per-point disk-cache entries, so this knob — like
            ``engine`` — never enters cache keys.
        trace: structured span tracing (:mod:`repro.obs.trace`). A
            path enables JSONL tracing to that file; ``None`` (the
            default) defers to the ``REPRO_TRACE`` environment
            variable; ``False`` disables tracing unconditionally
            (pool workers run with ``False`` so forked children never
            interleave writes into the parent's trace file).
    """

    scale: int = 20_000
    au_width: int = 4
    du_width: int = 5
    swsm_width: int = 9
    latencies: LatencyModel = field(default_factory=LatencyModel)
    cache_dir: str | Path | None = None
    jobs: int = 1
    engine: str | None = None
    batch: bool | None = None
    trace: str | Path | bool | None = None

    def __post_init__(self) -> None:
        if self.engine not in (None, "auto", "events", "soa"):
            raise ConfigError(
                "engine must be one of None, 'auto', 'events', 'soa'; "
                f"got {self.engine!r}"
            )
        self._programs: dict[tuple[str, float], Program] = {}
        self._custom: dict[str, Program] = {}
        self._compiled: dict[tuple[str, float, str, str], object] = {}
        self._profiles: dict[str, object] = {}
        self._results: dict[Point, SimulationResult] = {}
        self._result_store = None
        self._store_keys: dict[Point, str] = {}
        self._disk_prefetched: dict[Point, SimulationResult | None] = {}
        self.stats = {
            "evaluated": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "disk_misses": 0,
            "store_hits": 0,
            "batch_groups": 0,
            "batch_points": 0,
            "disk_read_seconds": 0.0,
            "compile_seconds": 0.0,
            "simulate_seconds": 0.0,
            "sweep_seconds": 0.0,
        }
        # Session-level rollup of every *fresh* simulation's telemetry
        # (cache hits keep their original record and are not re-counted).
        self._telemetry = {
            "runs": 0,
            "counters": zero_counters(),
            "strategies": {},
        }
        self._tracer: SpanTracer | None = None
        if self.trace is None:
            env_path = os.environ.get("REPRO_TRACE", "").strip()
            if env_path:
                self._tracer = SpanTracer(env_path)
        elif self.trace:
            self._tracer = SpanTracer(self.trace)

    def _span(self, name: str, **attrs):
        """A tracer span when tracing is on, else a no-op context."""
        if self._tracer is None:
            return nullcontext()
        return self._tracer.span(name, **attrs)

    # -- persistent result store -------------------------------------------------

    def store(self, target=_UNSET):
        """The session's persistent :class:`~repro.report.ResultStore`.

        Without an argument, returns the attached store (or ``None``).
        With one, attaches it and returns it: pass a
        :class:`~repro.report.ResultStore`, a path (opened on demand),
        or ``None`` to detach. While attached, every evaluated point —
        fresh, memory-cached or disk-cached — is upserted under its
        content-addressed cache key, so the store accumulates exactly
        the set of distinct operating points this session has seen.
        Custom (non-registry) programs stay out, for the same reason
        they stay out of the disk cache: the key does not cover their
        content.
        """
        if target is _UNSET:
            return self._result_store
        # The recorded-key memo is per store: a fresh store must see
        # every point again even if this session already hashed it.
        self._store_keys = {}
        if target is None:
            self._result_store = None
            return None
        from ..report.store import ResultStore

        if not isinstance(target, ResultStore):
            target = ResultStore(target)
        self._result_store = target
        return target

    # -- programs ----------------------------------------------------------------

    def program(self, name: str) -> Program:
        """The architectural trace of a kernel at this session's scale."""
        return self._program_for(name, 0.0)

    def register_program(self, program: Program) -> None:
        """Make a custom (non-registry) program available under its name.

        Custom programs exist only in this process: points naming them
        are evaluated locally (never shipped to workers) and stay out
        of the disk cache, whose keys cover only registry kernels —
        a cached entry for a same-named trace with different content
        would otherwise be silently wrong.
        """
        self._custom[program.name] = program
        self._programs.pop((program.name, 0.0), None)
        self._profiles.pop(program.name, None)

    def _program_for(self, name: str, expansion: float) -> Program:
        key = (name, expansion)
        if key not in self._programs:
            if expansion:
                base = self._program_for(name, 0.0)
                self._programs[key] = expand_code(base, expansion)
            elif name in self._custom:
                self._programs[key] = self._custom[name]
            else:
                self._programs[key] = build_kernel(name, self.scale)
        return self._programs[key]

    def profile(self, name: str):
        """The static workload profile of a kernel at this session's
        scale (cached) — see :func:`repro.workloads.characterize`."""
        if name not in self._profiles:
            from ..workloads import characterize

            self._profiles[name] = characterize(self.program(name))
        return self._profiles[name]

    # -- compilation -------------------------------------------------------------

    def compiled(
        self,
        program: str,
        machine: str = "dm",
        partition: str = "slice",
        expansion: float = 0.0,
    ):
        """The lowered machine program (cached; window-independent).

        With a ``cache_dir``, compiled programs are also shared across
        processes through a digest-keyed on-disk lowering cache: the
        key covers the *content* of the architectural program
        (:meth:`~repro.ir.Program.digest`), the machine family, the
        partition strategy and the latency model, and the entry stores
        the machine program together with its SoA form and a
        materialised steady-state analysis — so pool workers stop
        re-deriving ``MachineProgram.lowered()`` for every sweep group.
        """
        key = (program, expansion, machine, partition)
        if key not in self._compiled:
            model = get_machine(machine)
            source = self._program_for(program, expansion)
            started = time.perf_counter()
            with self._span("lower", program=program, machine=machine):
                loaded = self._lowering_load(source, machine, partition)
            if loaded is not None:
                self._compiled[key] = loaded
            else:
                point = Point(
                    program=program,
                    machine=machine,
                    partition=partition,
                    expansion=expansion,
                )
                with self._span("compile", program=program, machine=machine):
                    compiled = model.compile(source, point, self.latencies)
                self._lowering_store(source, machine, partition, compiled)
                self._compiled[key] = compiled
            self.stats["compile_seconds"] += time.perf_counter() - started
        return self._compiled[key]

    def _lowering_path(
        self, source: Program, machine: str, partition: str
    ) -> Path | None:
        """Content address of one compiled program in the lowering cache.

        Keyed by program *content*, so (unlike the result cache) even
        custom registered programs are safely cacheable. ``serial``
        skips the cache — its "compilation" is the identity.
        """
        if self.cache_dir is None or machine == "serial":
            return None
        doc = {
            "format": _LOWERING_FORMAT,
            "program": source.digest(),
            "machine": machine,
            "partition": partition,
            "latencies": asdict(self.latencies),
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        return Path(self.cache_dir) / "lowered" / f"{digest}.pkl"

    def _lowering_load(self, source: Program, machine: str, partition: str):
        path = self._lowering_path(source, machine, partition)
        if path is None:
            return None
        try:
            with path.open("rb") as handle:
                compiled, low = pickle.load(handle)
        except Exception:
            return None  # absent or corrupt: recompile
        # MachineProgram pickles without its lowered form (it would
        # double the payload of every result-store row); the cache
        # entry carries the pair explicitly, so reattach.
        compiled._lowered = low
        return compiled

    def _lowering_store(
        self, source: Program, machine: str, partition: str, compiled
    ) -> None:
        path = self._lowering_path(source, machine, partition)
        if path is None or not isinstance(compiled, MachineProgram):
            return
        low = compiled.lowered()
        low.steady()  # materialise so loaders skip the period search
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("wb") as handle:
                pickle.dump(
                    (compiled, low), handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, path)
        except OSError:
            pass  # cache is best-effort; simulation proceeds regardless

    # -- windows -----------------------------------------------------------------

    def resolve_window(self, name: str, window: int | None) -> int:
        """Translate the unlimited-window sentinel into a concrete size."""
        if window is not None:
            return window
        return max(len(self.program(name)), 1)

    # -- point evaluation --------------------------------------------------------

    def _canonical(self, point: Point) -> Point:
        return get_machine(point.machine).canonical(point)

    def evaluate(self, point: Point) -> SimulationResult:
        """Cycle-exact result of one point (memory cache, disk, simulate)."""
        canonical = self._canonical(point)
        cached = self._lookup(canonical)
        if cached is not None:
            self._record(canonical, cached)
            return cached
        result = self._simulate(canonical)
        self._store(canonical, result)
        self.stats["evaluated"] += 1
        self._record(canonical, result)
        return result

    def _record(self, canonical: Point, result: SimulationResult) -> None:
        store = self._result_store
        if store is None or canonical.program in self._custom:
            return
        key = self._store_keys.get(canonical)
        if key is not None:
            # Already warehoused by this session: keep the key visible
            # to manifest tracking without re-hashing the point.
            store.touch(key)
        else:
            with self._span(
                "store.write",
                program=canonical.program,
                machine=canonical.machine,
            ):
                self._store_keys[canonical] = store.record(
                    canonical, self.scale, self.latencies, result
                )

    def cycles(self, point: Point) -> int:
        return self.evaluate(point).cycles

    def speedup(self, point: Point) -> float:
        """Speedup over the serial reference at the same differential."""
        serial = self.cycles(
            replace(point, machine="serial", probe_esw=False)
        )
        return serial / self.cycles(point)

    def _lookup(self, canonical: Point) -> SimulationResult | None:
        if canonical in self._results:
            self.stats["memory_hits"] += 1
            return self._results[canonical]
        if canonical.program in self._custom:
            return None  # disk keys don't cover custom program content
        with self._span(
            "cache.probe",
            program=canonical.program,
            machine=canonical.machine,
        ):
            loaded = self._disk_load(canonical)
            if loaded is None:
                loaded = self._store_load(canonical)
        if loaded is not None:
            self._results[canonical] = loaded
            return loaded
        return None

    def _store_load(self, canonical: Point) -> SimulationResult | None:
        """Rehydrate a point from the attached result store, if resident.

        This is what makes sweeps resumable: a killed-and-rerun sweep
        against the same store only simulates the missing points — the
        rest are served from the store's pickled payloads, exactly as a
        disk-cache hit would be (the keys are the same content
        addresses).
        """
        store = self._result_store
        if store is None:
            return None
        key = point_digest(canonical, self.scale, self.latencies)
        result = store.load(key)
        if result is None:
            return None
        self.stats["store_hits"] += 1
        # The row is already warehoused under this key; remember it so
        # _record touches the key instead of re-pickling the result.
        self._store_keys[canonical] = key
        return _stamp_tier(result, "store")

    def _store(self, canonical: Point, result: SimulationResult) -> None:
        self._results[canonical] = result
        self._absorb_telemetry(result)
        self._disk_prefetched.pop(canonical, None)  # staged copy is stale
        if canonical.program not in self._custom:
            self._disk_store(canonical, result)

    def _absorb_telemetry(self, result: SimulationResult) -> None:
        """Fold one fresh result's telemetry into the session rollup.

        ``_store`` is the single sink every freshly simulated result
        passes through — serial evaluations, local batch groups and
        pool-worker results alike — so aggregating here covers all
        three execution paths with one code path.
        """
        telemetry = result.telemetry
        if telemetry is None:
            return
        agg = self._telemetry
        agg["runs"] += 1
        add_counters(agg["counters"], telemetry.counters)
        strategies = agg["strategies"]
        strategies[telemetry.strategy] = (
            strategies.get(telemetry.strategy, 0) + 1
        )

    def telemetry(self) -> dict:
        """Aggregated telemetry of every fresh simulation this session.

        Returns counter sums (matching this session's contribution to
        ``repro.machines.engine.PERF_COUNTERS`` exactly, whichever
        engines and however many worker processes ran), a strategy
        histogram, and a copy of the cache/timing ``stats``.
        """
        return {
            "runs": self._telemetry["runs"],
            "counters": dict(self._telemetry["counters"]),
            "strategies": dict(self._telemetry["strategies"]),
            "stats": dict(self.stats),
        }

    @contextmanager
    def _engine_env(self):
        """Window the ``REPRO_EVENT_ENGINE`` toggle to the session knob."""
        if self.engine is None:
            yield
            return
        previous = os.environ.get("REPRO_EVENT_ENGINE")
        os.environ["REPRO_EVENT_ENGINE"] = self.engine
        try:
            yield
        finally:
            if previous is None:
                del os.environ["REPRO_EVENT_ENGINE"]
            else:
                os.environ["REPRO_EVENT_ENGINE"] = previous

    def _simulate(self, canonical: Point) -> SimulationResult:
        model = get_machine(canonical.machine)
        program = self._program_for(canonical.program, canonical.expansion)
        compiled = self.compiled(
            canonical.program,
            canonical.machine,
            canonical.partition,
            canonical.expansion,
        )
        window = (
            canonical.window
            if canonical.window is not None
            else max(len(program), 1)
        )
        memory = canonical.memory.build(canonical.memory_differential)
        started = time.perf_counter()
        with self._engine_env(), self._span(
            "simulate",
            program=canonical.program,
            machine=canonical.machine,
            window=canonical.window,
            memory_differential=canonical.memory_differential,
        ):
            result = model.simulate(
                compiled, canonical, window, memory, self.latencies
            )
        self.stats["simulate_seconds"] += time.perf_counter() - started
        extras = memory.stats()
        if extras:
            # Stateful models report their hit/conflict counters
            # (bypass_hit_rate, cache_hit_rate, bank_conflict_rate,
            # prefetch_hit_rate, ...) into the result metadata.
            result = replace(result, meta={**result.meta, **extras})
        return result

    def evaluate_batch(
        self, group: list[Point]
    ) -> list[tuple[Point, SimulationResult]]:
        """Simulate a batch-key group of canonical points in one call.

        All points must share :func:`~repro.api.spec.point_batch_key`
        (one program, one machine family, one compiled form) and their
        machine must expose ``batch_configs``. The compiled program is
        derived once; each point becomes one lane of a batched
        simulation (:mod:`repro.machines.batch`). Results — including
        memory-model stats in ``meta`` — are bit-exact with per-point
        :meth:`evaluate` calls, positionally aligned with ``group``.
        Pure compute: the caller folds results into the caches.
        """
        from ..machines.batch import BatchLane, simulate_batch

        first = group[0]
        model = get_machine(first.machine)
        hook = model.batch_configs  # planner guarantees the hook exists
        compiled = self.compiled(
            first.program, first.machine, first.partition, first.expansion
        )
        program = self._program_for(first.program, first.expansion)
        lanes = []
        for point in group:
            window = (
                point.window
                if point.window is not None
                else max(len(program), 1)
            )
            lanes.append(BatchLane(
                unit_configs=hook(point, window, self.latencies),
                memory=point.memory.build(point.memory_differential),
            ))
        started = time.perf_counter()
        with self._engine_env(), self._span(
            "simulate",
            program=first.program,
            machine=first.machine,
            lanes=len(lanes),
        ):
            results = simulate_batch(compiled, lanes, self.latencies)
        self.stats["simulate_seconds"] += time.perf_counter() - started
        out = []
        for point, lane, result in zip(group, lanes, results):
            extras = lane.memory.stats()
            if extras:
                result = replace(result, meta={**result.meta, **extras})
            out.append((point, result))
        return out

    # -- sweeps ------------------------------------------------------------------

    def run(
        self, sweep: Sweep | Iterable[Point], jobs: int | None = None
    ) -> SweepResult:
        """Evaluate every point of a sweep; optionally in parallel.

        ``jobs`` overrides the session default. With ``jobs > 1``,
        points that are not already cached are evaluated on a process
        pool; results are bit-identical to a serial run (simulations
        are deterministic) and are folded back into this session's
        memory and disk caches.
        """
        if isinstance(sweep, Sweep):
            points = tuple(sweep.points())
            name = sweep.name
        else:
            points = tuple(sweep)
            name = ""
        effective_jobs = self.jobs if jobs is None else jobs
        started = time.perf_counter()
        before = self.telemetry()
        with self._span("sweep", sweep=name, points=len(points)):
            self._disk_prefetch(points)
            mode = self._batch_mode()
            if mode != "off":
                self._prefetch_batch(points, effective_jobs, mode)
            elif effective_jobs > 1:
                self._prefetch_parallel(points, effective_jobs)
            results = tuple(self.evaluate(point) for point in points)
        elapsed = time.perf_counter() - started
        self.stats["sweep_seconds"] += elapsed
        return SweepResult(
            points=points,
            results=results,
            name=name,
            telemetry=self._sweep_telemetry(before, len(points), elapsed),
        )

    def _sweep_telemetry(
        self, before: dict, points: int, elapsed: float
    ) -> dict:
        """Rollup of what one sweep did, as deltas against ``before``."""
        after = self.telemetry()
        hits = {
            key: after["stats"][key] - before["stats"][key]
            for key in (
                "evaluated", "memory_hits", "disk_hits", "store_hits",
                "batch_groups", "batch_points",
            )
        }
        counters = {
            key: value - before["counters"].get(key, 0)
            for key, value in after["counters"].items()
        }
        strategies = {
            key: count
            for key, count in (
                (key, value - before["strategies"].get(key, 0))
                for key, value in after["strategies"].items()
            )
            if count
        }
        return {
            "points": points,
            "wall_seconds": elapsed,
            **hits,
            "counters": counters,
            "strategies": strategies,
        }

    def _batch_mode(self) -> str:
        """Resolve the batched-sweep toggle: session knob, then env."""
        if self.batch is True:
            return "auto"
        if self.batch is False:
            return "off"
        from ..machines.engine import _batch_engine_mode

        return _batch_engine_mode()

    def _pending_points(
        self, points: tuple[Point, ...]
    ) -> list[Point]:
        """Canonical uncached points, deduplicated, in sweep order.

        Consults the caches through :meth:`_lookup`, so hits are
        counted (and memoised) here exactly as a serial evaluation
        loop would count them.
        """
        pending: list[Point] = []
        seen: set[Point] = set()
        for point in points:
            canonical = self._canonical(point)
            if canonical in seen:
                continue
            seen.add(canonical)
            if self._lookup(canonical) is None:
                pending.append(canonical)
        return pending

    def _prefetch_batch(
        self, points: tuple[Point, ...], jobs: int, mode: str
    ) -> None:
        """The batch planner: group, batch, and fan out a sweep.

        Pending points are grouped by
        :func:`~repro.api.spec.point_batch_key`; groups whose lanes
        would actually vectorize become single batch jobs (the unit of
        pool parallelism), everything else stays on the per-point
        path — pooled when ``jobs > 1``, or left to the serial
        evaluation loop. Disk-cache writes remain per-point (the
        results fold through :meth:`_store`), so cache keys and
        contents are identical to a per-point run.
        """
        from ..machines.batch import vector_eligible

        pending = self._pending_points(points)
        if not pending:
            return
        floor = 1 if mode == "force" else 2
        groups: dict[tuple, list[Point]] = {}
        scalar: list[Point] = []
        for canonical in pending:
            key = point_batch_key(canonical)
            model = get_machine(canonical.machine)
            if (
                key is None
                or getattr(model, "batch_configs", None) is None
                or not vector_eligible(
                    canonical.memory.build(canonical.memory_differential),
                    canonical.window,
                )
            ):
                scalar.append(canonical)
            else:
                groups.setdefault(key, []).append(canonical)
        batched: list[list[Point]] = []
        for group in groups.values():
            if len(group) >= floor:
                batched.append(group)
            else:
                scalar.extend(group)
        for group in batched:
            self.stats["batch_groups"] += 1
            self.stats["batch_points"] += len(group)
        if jobs > 1:
            self._fan_out(batched, scalar, jobs)
        else:
            for group in batched:
                for canonical, result in self.evaluate_batch(group):
                    self._store(canonical, result)
                    self.stats["evaluated"] += 1
            for canonical in scalar:
                # Already known uncached: simulate directly, so the
                # miss counted during the pending scan stays the only
                # one (the evaluate loop then hits memory).
                self._store(canonical, self._simulate(canonical))
                self.stats["evaluated"] += 1

    def _prefetch_parallel(self, points: tuple[Point, ...], jobs: int) -> None:
        self._fan_out([], self._pending_points(points), jobs)

    def _poolable(self, canonical: Point, has_fork: bool) -> bool:
        if canonical.program in self._custom:
            return False  # custom programs only exist in this process
        if not has_fork and canonical.machine not in _BUILTIN_MACHINES:
            # Without fork, a worker can't see machines registered at
            # runtime; evaluate those points locally instead.
            return False
        return True

    def _fan_out(
        self,
        batched: list[list[Point]],
        scalar: list[Point],
        jobs: int,
    ) -> None:
        """Spread batch groups and scalar points over a process pool.

        Batch groups are the unit of pool parallelism: one group, one
        worker, one batched simulation. Scalar points stream through
        ``pool.map`` as before. Groups or points that cannot ship to a
        worker (custom programs; runtime-registered machines without
        fork) are evaluated locally after the pool drains.
        """
        context = _fork_context()
        has_fork = context is not None
        local_groups = [
            group for group in batched
            if not self._poolable(group[0], has_fork)
        ]
        pool_groups = [
            group for group in batched
            if self._poolable(group[0], has_fork)
        ]
        pool_scalar = [
            canonical for canonical in scalar
            if self._poolable(canonical, has_fork)
        ]
        local_scalar = [
            canonical for canonical in scalar
            if not self._poolable(canonical, has_fork)
        ]
        tasks = len(pool_groups) + len(pool_scalar)
        if tasks:
            config = {
                "scale": self.scale,
                "au_width": self.au_width,
                "du_width": self.du_width,
                "swsm_width": self.swsm_width,
                "latencies": self.latencies,
                "engine": self.engine,
                # Workers share the result cache and the digest-keyed
                # lowering cache: the first worker to need a compiled
                # program persists it, the rest load it. They never
                # inherit tracing: a forked child appending to the
                # parent's trace file would interleave span streams.
                "cache_dir": self.cache_dir,
                "trace": False,
            }
            workers = min(jobs, tasks)
            chunksize = max(1, len(pool_scalar) // (workers * 4))
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(config,),
            )
            try:
                futures = [
                    pool.submit(_worker_evaluate_batch, tuple(group))
                    for group in pool_groups
                ]
                if pool_scalar:
                    for canonical, result in pool.map(
                        _worker_evaluate, pool_scalar, chunksize=chunksize
                    ):
                        self._fold_worker_result(canonical, result)
                for future in as_completed(futures):
                    for canonical, result in future.result():
                        self._fold_worker_result(canonical, result)
            except BaseException:
                # Ctrl-C (or any abort) must not hang waiting for queued
                # work: cancel what hasn't started and return
                # immediately — points already folded in stay cached,
                # so a rerun resumes.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            else:
                pool.shutdown()
        for group in local_groups:
            for canonical, result in self.evaluate_batch(group):
                self._store(canonical, result)
                self.stats["evaluated"] += 1
        for canonical in local_scalar:
            self._store(canonical, self._simulate(canonical))
            self.stats["evaluated"] += 1

    def _fold_worker_result(
        self, canonical: Point, result: SimulationResult
    ) -> None:
        """Fold one pool-worker result into this process's caches.

        The worker's engine bumped *its own* process's ``PERF_COUNTERS``
        — increments that die with the fork. The per-run telemetry
        rides home on the result, so merging it here keeps the parent's
        compat aggregate identical to what a ``jobs=1`` run reports.
        """
        if result.telemetry is not None:
            record_counters(result.telemetry.counters)
        self._store(canonical, result)
        self.stats["evaluated"] += 1

    # -- disk cache --------------------------------------------------------------

    def _disk_path(self, canonical: Point) -> Path | None:
        if self.cache_dir is None:
            return None
        digest = point_digest(canonical, self.scale, self.latencies)
        return Path(self.cache_dir) / f"{digest}.pkl"

    def _disk_prefetch(self, points: Iterable[Point]) -> None:
        """Warm path: unpickle a sweep's disk-cache hits on a thread pool.

        A warm re-run of a large sweep used to pay one serial
        ``pickle.load`` per point on the main thread; here the reads
        overlap on a small thread pool (unpickling releases the GIL
        during file I/O). Results — hits *and* misses — land in a
        private staging dict that :meth:`_disk_load` consumes, so the
        ``disk_hits`` / ``disk_misses`` counters still advance exactly
        where they always did. The elapsed wall clock is recorded in
        ``stats["disk_read_seconds"]``.
        """
        if self.cache_dir is None:
            return
        candidates: list[Point] = []
        seen: set[Point] = set()
        for point in points:
            canonical = self._canonical(point)
            if (
                canonical in seen
                or canonical in self._results
                or canonical in self._disk_prefetched
                or canonical.program in self._custom
            ):
                continue
            seen.add(canonical)
            candidates.append(canonical)
        if len(candidates) < 2:
            return
        started = time.perf_counter()

        def read(canonical: Point):
            path = self._disk_path(canonical)
            try:
                with path.open("rb") as handle:
                    return canonical, pickle.load(handle)
            except Exception:
                return canonical, None  # miss or corrupt: both re-read
        with ThreadPoolExecutor(
            max_workers=min(8, len(candidates))
        ) as readers:
            for canonical, result in readers.map(read, candidates):
                self._disk_prefetched[canonical] = result
        self.stats["disk_read_seconds"] += time.perf_counter() - started

    def _disk_load(self, canonical: Point) -> SimulationResult | None:
        staged = self._disk_prefetched.pop(canonical, _UNSET)
        if staged is not _UNSET and staged is not None:
            self.stats["disk_hits"] += 1
            return _stamp_tier(staged, "disk")
        # A staged miss falls through to a fresh read: the entry may
        # have appeared since (another process), and the open below is
        # what counts the miss either way.
        path = self._disk_path(canonical)
        if path is None:
            return None
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.stats["disk_misses"] += 1
            return None
        except Exception:
            self.stats["disk_misses"] += 1
            return None  # corrupt entry: treat as a miss, re-simulate
        self.stats["disk_hits"] += 1
        return _stamp_tier(result, "disk")

    def _disk_store(self, canonical: Point, result: SimulationResult) -> None:
        path = self._disk_path(canonical)
        if path is None:
            return
        if result.telemetry is not None:
            # Cache entries stay telemetry-free: the payload bytes must
            # depend only on the simulated schedule, never on which
            # engine strategy or wall clock produced it (a batched and
            # a per-point session write identical entries).
            result = replace(result, telemetry=None)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    # -- convenience accessors (the old Lab vocabulary) --------------------------

    def dm_point(
        self, name: str, window: int | None, memory_differential: int, **over
    ) -> Point:
        return Point(
            program=name,
            machine="dm",
            window=window,
            memory_differential=memory_differential,
            au_width=self.au_width,
            du_width=self.du_width,
            **over,
        )

    def swsm_point(
        self, name: str, window: int | None, memory_differential: int, **over
    ) -> Point:
        return Point(
            program=name,
            machine="swsm",
            window=window,
            memory_differential=memory_differential,
            swsm_width=self.swsm_width,
            **over,
        )

    def serial_point(self, name: str, memory_differential: int) -> Point:
        return Point(
            program=name,
            machine="serial",
            window=None,
            memory_differential=memory_differential,
        )

    def dm_compiled(self, name: str):
        return self.compiled(name, "dm")

    def swsm_compiled(self, name: str):
        return self.compiled(name, "swsm")

    def dm_result(
        self, name: str, window: int | None, memory_differential: int
    ) -> SimulationResult:
        """Cached DM run (both unit windows set to ``window``)."""
        return self.evaluate(self.dm_point(name, window, memory_differential))

    def swsm_result(
        self, name: str, window: int | None, memory_differential: int
    ) -> SimulationResult:
        """Cached SWSM run."""
        return self.evaluate(self.swsm_point(name, window, memory_differential))

    def dm_cycles(self, name: str, window: int | None, md: int) -> int:
        return self.dm_result(name, window, md).cycles

    def swsm_cycles(self, name: str, window: int | None, md: int) -> int:
        return self.swsm_result(name, window, md).cycles

    def serial_cycles(self, name: str, md: int) -> int:
        return self.evaluate(self.serial_point(name, md)).cycles

    def dm_speedup(self, name: str, window: int | None, md: int) -> float:
        return self.serial_cycles(name, md) / self.dm_cycles(name, window, md)

    def swsm_speedup(self, name: str, window: int | None, md: int) -> float:
        return self.serial_cycles(name, md) / self.swsm_cycles(name, window, md)

    def dm_lhe(self, name: str, window: int | None, md: int) -> float:
        """Latency-hiding effectiveness of the DM at one operating point."""
        perfect = self.dm_cycles(name, window, 0)
        actual = self.dm_cycles(name, window, md)
        return perfect / actual


def _stamp_tier(result: SimulationResult, tier: str) -> SimulationResult:
    """Mark which cache tier served this copy of a result.

    Disk-cache payloads are stored telemetry-free, so a disk hit gets
    a minimal record (strategy ``cached`` — the producing strategy is
    not persisted there); store hits arrive with the recorded strategy
    already attached and only need the tier corrected.
    """
    if result.telemetry is None:
        return replace(result, telemetry=RunTelemetry(
            strategy="cached", sim_cycles=result.cycles, cache_tier=tier,
        ))
    if result.telemetry.cache_tier == tier:
        return result
    return replace(
        result, telemetry=replace(result.telemetry, cache_tier=tier)
    )


# -- process-pool workers ----------------------------------------------------------

#: Machines registered at import time, visible in any worker process.
_BUILTIN_MACHINES = frozenset({"dm", "swsm", "serial"})


def _fork_context():
    """The fork start-method context, or None where fork is unavailable.

    Forked workers inherit runtime machine registrations; spawned ones
    would not, so the caller keeps non-builtin machines local then.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


_WORKER_SESSION: Session | None = None


def _worker_init(config: dict) -> None:
    global _WORKER_SESSION
    _WORKER_SESSION = Session(**config)


def _worker_evaluate(point: Point) -> tuple[Point, SimulationResult]:
    assert _WORKER_SESSION is not None
    return point, _WORKER_SESSION.evaluate(point)


def _worker_evaluate_batch(
    group: tuple[Point, ...]
) -> list[tuple[Point, SimulationResult]]:
    """One batch group, one worker, one batched simulation."""
    assert _WORKER_SESSION is not None
    return _WORKER_SESSION.evaluate_batch(list(group))
