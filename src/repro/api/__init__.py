"""Declarative experiment API: specs, sessions, presets.

The three layers:

* :mod:`repro.api.spec` — frozen :class:`Point`/:class:`Sweep` specs
  that *describe* experiments (and serialise to TOML/JSON);
* :mod:`repro.api.session` — the :class:`Session` that *evaluates*
  them, with three-level memoisation, a content-addressed disk cache
  and a process-pool executor;
* :mod:`repro.api.presets` — the named sweeps behind every paper
  artefact.

See docs/api.md for a guided tour.
"""

from .spec import (
    UNLIMITED,
    MemorySpec,
    Point,
    Sweep,
    load_sweep,
    point_digest,
    point_from_dict,
    point_to_dict,
)
from .session import Session, SweepResult
from .presets import (
    HIERARCHY_MEMORY_VARIANTS,
    PRESETS_NEEDING_PROGRAM,
    SWEEP_PRESETS,
    bypass_sweep,
    esw_sweep,
    ewr_dm_sweep,
    expansion_sweep,
    generalization_sweep,
    hierarchy_sweep,
    issue_split_sweep,
    partition_sweep,
    speedup_sweep,
    table1_sweep,
)

__all__ = [
    "HIERARCHY_MEMORY_VARIANTS",
    "MemorySpec",
    "Point",
    "PRESETS_NEEDING_PROGRAM",
    "SWEEP_PRESETS",
    "Session",
    "Sweep",
    "SweepResult",
    "UNLIMITED",
    "bypass_sweep",
    "esw_sweep",
    "ewr_dm_sweep",
    "expansion_sweep",
    "generalization_sweep",
    "hierarchy_sweep",
    "issue_split_sweep",
    "load_sweep",
    "partition_sweep",
    "point_digest",
    "point_from_dict",
    "point_to_dict",
    "speedup_sweep",
    "table1_sweep",
]
