"""Named sweeps reproducing every artefact of the paper.

Each factory returns the declarative :class:`~repro.api.spec.Sweep`
behind one table, figure or ablation; the experiment drivers in
:mod:`repro.experiments` evaluate exactly these grids, and the CLI
exposes them by name (``repro sweep --preset fig4``). Extra keyword
arguments override base-point fields (issue widths, partition, ...),
which is how a session with non-default widths reuses the same grids.

``SWEEP_PRESETS`` maps preset names to factories. Factories listed in
``PRESETS_NEEDING_PROGRAM`` take the program as their first argument;
the rest are complete as-is.
"""

from __future__ import annotations

from ..config import DEFAULT_MEMORY_DIFFERENTIAL
from ..kernels import PAPER_ORDER
from ..partition.strategies import PARTITION_STRATEGIES
from .spec import MemorySpec, Sweep

__all__ = [
    "EWR_DIFFERENTIALS",
    "EWR_WINDOWS",
    "FIGURE_PROGRAMS",
    "SPEEDUP_DIFFERENTIALS",
    "SPEEDUP_WINDOWS",
    "SWEEP_PRESETS",
    "PRESETS_NEEDING_PROGRAM",
    "TABLE1_WINDOWS",
    "HIERARCHY_MEMORY_VARIANTS",
    "bypass_sweep",
    "esw_sweep",
    "ewr_dm_sweep",
    "expansion_sweep",
    "generalization_sweep",
    "hierarchy_sweep",
    "issue_split_sweep",
    "partition_sweep",
    "speedup_sweep",
    "table1_sweep",
]

#: Window axis of figures 4-6 (0-100 in the paper).
SPEEDUP_WINDOWS = (4, 8, 12, 16, 24, 32, 48, 64, 80, 100)

#: DM-window axis of figures 7-9 (10-100 in the paper).
EWR_WINDOWS = (10, 20, 32, 48, 64, 80, 100)

#: Table 1 columns; ``None`` is the paper's "unlimited" column.
TABLE1_WINDOWS = (8, 16, 32, 64, 128, 256, None)

#: Figures 4-6 plot md=0 and md=60.
SPEEDUP_DIFFERENTIALS = (0, 60)

#: Figures 7-9 sweep md=0..60 in steps of 10.
EWR_DIFFERENTIALS = (0, 10, 20, 30, 40, 50, 60)

#: The three representative programs of the figures.
FIGURE_PROGRAMS = ("flo52q", "mdg", "track")


def table1_sweep(
    programs: tuple[str, ...] = PAPER_ORDER,
    windows: tuple[int | None, ...] = TABLE1_WINDOWS,
    memory_differential: int = DEFAULT_MEMORY_DIFFERENTIAL,
    **base: object,
) -> Sweep:
    """Table 1: DM LHE needs each window at md=0 (perfect) and md=60."""
    return Sweep.grid(
        name="table1",
        program=programs,
        machine="dm",
        window=windows,
        memory_differential=(0, memory_differential),
        **base,
    )


def speedup_sweep(
    program: str,
    windows: tuple[int, ...] = SPEEDUP_WINDOWS,
    differentials: tuple[int, ...] = SPEEDUP_DIFFERENTIALS,
    **base: object,
) -> Sweep:
    """Figures 4-6: DM and SWSM curves plus the serial denominator.

    The serial machine ignores the window, so its apparent per-window
    points all collapse onto one cached run per differential.
    """
    return Sweep.grid(
        name=f"speedup:{program}",
        program=program,
        machine=("serial", "dm", "swsm"),
        window=windows,
        memory_differential=differentials,
        **base,
    )


def ewr_dm_sweep(
    program: str,
    dm_windows: tuple[int, ...] = EWR_WINDOWS,
    differentials: tuple[int, ...] = EWR_DIFFERENTIALS,
    **base: object,
) -> Sweep:
    """Figures 7-9, DM side: the targets the SWSM search must match.

    The SWSM side is adaptive (a projection search over window sizes),
    so it cannot be a static grid; the driver evaluates it point by
    point through the same session cache.
    """
    return Sweep.grid(
        name=f"ewr:{program}",
        program=program,
        machine="dm",
        window=dm_windows,
        memory_differential=differentials,
        **base,
    )


def esw_sweep(
    programs: tuple[str, ...] = FIGURE_PROGRAMS,
    window: int = 32,
    differentials: tuple[int, ...] = (0, 20, 40, 60),
    **base: object,
) -> Sweep:
    """The effective-single-window study (Figure 3 made quantitative)."""
    return Sweep.grid(
        name="esw",
        program=programs,
        machine="dm",
        window=window,
        memory_differential=differentials,
        probe_esw=True,
        **base,
    )


def issue_split_sweep(
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    combined_width: int = 9,
    **base: object,
) -> Sweep:
    """Issue-split ablation: every AU/DU division of the combined width."""
    splits = tuple(
        (au, combined_width - au) for au in range(1, combined_width)
    )
    return Sweep.grid(
        name=f"issue-split:{program}",
        program=program,
        machine="dm",
        window=window,
        memory_differential=memory_differential,
        zipped={("au_width", "du_width"): splits},
        **base,
    )


def partition_sweep(
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    strategies: tuple[str, ...] = PARTITION_STRATEGIES,
    **base: object,
) -> Sweep:
    """Partition-strategy ablation: slice vs memory-only vs balanced."""
    return Sweep.grid(
        name=f"partition:{program}",
        program=program,
        machine="dm",
        window=window,
        memory_differential=memory_differential,
        partition=strategies,
        **base,
    )


def bypass_sweep(
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    entry_counts: tuple[int, ...] = (0, 16, 64, 256),
    **base: object,
) -> Sweep:
    """Bypass-buffer ablation; 0 entries means no bypass at all."""
    variants = tuple(
        MemorySpec()
        if entries == 0
        else MemorySpec(kind="bypass", entries=entries, line_bytes=1)
        for entries in entry_counts
    )
    return Sweep.grid(
        name=f"bypass:{program}",
        program=program,
        machine="dm",
        window=window,
        memory_differential=memory_differential,
        memory=variants,
        **base,
    )


#: The memory-hierarchy ablation's model ladder: the paper's fixed
#: differential, then progressively more locality-capturing systems.
#: Labels are stable row names for tables and tests.
HIERARCHY_MEMORY_VARIANTS: tuple[tuple[str, MemorySpec], ...] = (
    ("fixed", MemorySpec()),
    ("bypass", MemorySpec(kind="bypass", entries=64, line_bytes=1)),
    ("cache", MemorySpec(kind="cache")),
    (
        "hierarchy",
        MemorySpec(
            kind="hierarchy",
            levels=((4 * 1024, 32, 1, 0), (128 * 1024, 32, 8, 4)),
        ),
    ),
    ("banked", MemorySpec(kind="banked", banks=8, bank_busy=4)),
    ("prefetch", MemorySpec(kind="prefetch", streams=4, degree=2)),
)


def hierarchy_sweep(
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    variants: tuple[tuple[str, MemorySpec], ...] = HIERARCHY_MEMORY_VARIANTS,
    **base: object,
) -> Sweep:
    """Memory-hierarchy ablation: DM vs SWSM across memory systems.

    The paper's footnote observes that a locality-capturing memory
    system shrinks the differential the DM must hide; this grid
    quantifies how much of the DM/SWSM gap survives each system in
    :data:`HIERARCHY_MEMORY_VARIANTS`.
    """
    return Sweep.grid(
        name=f"hierarchy:{program}",
        program=program,
        machine=("dm", "swsm"),
        window=window,
        memory_differential=memory_differential,
        memory=tuple(spec for _, spec in variants),
        **base,
    )


def generalization_sweep(
    programs: str | tuple[str, ...],
    window: int = 32,
    memory_differential: int = DEFAULT_MEMORY_DIFFERENTIAL,
    **base: object,
) -> Sweep:
    """The generalization study's grid: both machines, every program.

    Three operating points per (program, machine), expressed as a
    zipped (window, differential) axis: the unlimited window at md=0
    (the perfect baseline) and at the study differential — Table 1's
    LHE construction — plus the limited window at the differential,
    the figure-4-6 regime of the DM-vs-SWSM comparison. The fourth
    grid corner (limited window, md=0) is deliberately absent: the
    study never reads it, and over a 100-kernel corpus it would be
    hundreds of discarded simulations.
    """
    program_axis: object = (
        programs if isinstance(programs, str) else tuple(programs)
    )
    return Sweep.grid(
        name="generalization",
        program=program_axis,
        machine=("dm", "swsm"),
        zipped={
            ("window", "memory_differential"): (
                (None, 0),
                (None, memory_differential),
                (window, memory_differential),
            ),
        },
        **base,
    )


def expansion_sweep(
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    fractions: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5),
    **base: object,
) -> Sweep:
    """Code-expansion ablation: DM vs SWSM as overhead is added."""
    return Sweep.grid(
        name=f"expansion:{program}",
        program=program,
        machine=("dm", "swsm"),
        window=window,
        memory_differential=memory_differential,
        expansion=fractions,
        **base,
    )


SWEEP_PRESETS = {
    "table1": table1_sweep,
    "fig4": lambda **kw: speedup_sweep("flo52q", **kw),
    "fig5": lambda **kw: speedup_sweep("mdg", **kw),
    "fig6": lambda **kw: speedup_sweep("track", **kw),
    "fig7": lambda **kw: ewr_dm_sweep("flo52q", **kw),
    "fig8": lambda **kw: ewr_dm_sweep("mdg", **kw),
    "fig9": lambda **kw: ewr_dm_sweep("track", **kw),
    "esw": esw_sweep,
    "speedup": speedup_sweep,
    "ewr": ewr_dm_sweep,
    "issue-split": issue_split_sweep,
    "partition": partition_sweep,
    "bypass": bypass_sweep,
    "expansion": expansion_sweep,
    "hierarchy": hierarchy_sweep,
    "generalization": generalization_sweep,
}

#: Presets whose factory takes the program as first positional argument.
PRESETS_NEEDING_PROGRAM = (
    "speedup",
    "ewr",
    "issue-split",
    "partition",
    "bypass",
    "expansion",
    "hierarchy",
    "generalization",
)
