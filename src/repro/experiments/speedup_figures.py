"""Figures 4-6: speedup versus window size for the DM and the SWSM.

Each figure plots four curves for one program — DM and SWSM at memory
differentials of 0 and 60 — against window size. The paper's claims
checked here:

* at MD = 0 the DM wins at small windows and the SWSM overtakes at a
  cutoff window (its full issue width becomes usable);
* at MD = 60 the DM wins at *every* window size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.presets import speedup_sweep
from ..api.session import Session
from .scales import SPEEDUP_DIFFERENTIALS, SPEEDUP_WINDOWS

__all__ = ["SpeedupCurve", "SpeedupFigure", "run_speedup_figure"]


@dataclass(frozen=True)
class SpeedupCurve:
    """One (machine, memory differential) curve."""

    machine: str  # "DM" or "SWSM"
    memory_differential: int
    windows: tuple[int, ...]
    speedups: tuple[float, ...]

    def at(self, window: int) -> float:
        return self.speedups[self.windows.index(window)]


@dataclass(frozen=True)
class SpeedupFigure:
    """All four curves of one figure."""

    program: str
    windows: tuple[int, ...]
    curves: tuple[SpeedupCurve, ...]

    def curve(self, machine: str, memory_differential: int) -> SpeedupCurve:
        for candidate in self.curves:
            if (
                candidate.machine == machine
                and candidate.memory_differential == memory_differential
            ):
                return candidate
        raise KeyError(f"no curve for {machine} at md={memory_differential}")

    def crossover_window(self, memory_differential: int) -> int | None:
        """First window where the SWSM performs at least as well as the DM.

        Returns ``None`` if the DM wins everywhere (the paper's MD = 60
        result).
        """
        dm = self.curve("DM", memory_differential)
        swsm = self.curve("SWSM", memory_differential)
        for window in self.windows:
            if swsm.at(window) >= dm.at(window):
                return window
        return None


def run_speedup_figure(
    session: Session,
    program: str,
    windows: tuple[int, ...] = SPEEDUP_WINDOWS,
    differentials: tuple[int, ...] = SPEEDUP_DIFFERENTIALS,
) -> SpeedupFigure:
    """Reproduce one of figures 4-6 as a sweep through the session."""
    session.run(
        speedup_sweep(
            program,
            windows,
            differentials,
            au_width=session.au_width,
            du_width=session.du_width,
            swsm_width=session.swsm_width,
        )
    )
    curves = []
    for md in differentials:
        curves.append(
            SpeedupCurve(
                machine="DM",
                memory_differential=md,
                windows=windows,
                speedups=tuple(
                    session.dm_speedup(program, window, md)
                    for window in windows
                ),
            )
        )
        curves.append(
            SpeedupCurve(
                machine="SWSM",
                memory_differential=md,
                windows=windows,
                speedups=tuple(
                    session.swsm_speedup(program, window, md)
                    for window in windows
                ),
            )
        )
    return SpeedupFigure(program=program, windows=windows, curves=tuple(curves))
