"""Figure 3 made quantitative: effective-single-window measurements.

The paper's Figure 3 is a concept diagram; this study measures the
concept on real runs. For each program and memory differential it
reports the time-weighted mean and peak ESW of a DM run, compared
against the sum of the two physical windows. The paper's point — "the
ESW conceptually illustrates how the DM is able to perform better than
an architecture with twice the size of instruction window" — shows up
as amplification factors above 1 that grow with the differential.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DMConfig
from ..machines import DecoupledMachine
from ..metrics import EswStats, esw_stats
from .lab import Lab

__all__ = ["EswStudyRow", "run_esw_study"]


@dataclass(frozen=True)
class EswStudyRow:
    """ESW statistics of one (program, md) run."""

    program: str
    window: int
    memory_differential: int
    stats: EswStats


def run_esw_study(
    lab: Lab,
    programs: tuple[str, ...],
    window: int = 32,
    differentials: tuple[int, ...] = (0, 20, 40, 60),
) -> list[EswStudyRow]:
    """Measure ESW across programs and memory differentials."""
    rows = []
    for name in programs:
        compiled = lab.dm_compiled(name)
        machine = DecoupledMachine(
            DMConfig.symmetric(
                window,
                au_width=lab.au_width,
                du_width=lab.du_width,
                latencies=lab.latencies,
            )
        )
        for md in differentials:
            result = machine.run(
                compiled, memory_differential=md, probe_esw=True
            )
            rows.append(
                EswStudyRow(
                    program=name,
                    window=window,
                    memory_differential=md,
                    stats=esw_stats(result, md, physical_windows=2 * window),
                )
            )
    return rows
