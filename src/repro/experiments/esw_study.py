"""Figure 3 made quantitative: effective-single-window measurements.

The paper's Figure 3 is a concept diagram; this study measures the
concept on real runs. For each program and memory differential it
reports the time-weighted mean and peak ESW of a DM run, compared
against the sum of the two physical windows. The paper's point — "the
ESW conceptually illustrates how the DM is able to perform better than
an architecture with twice the size of instruction window" — shows up
as amplification factors above 1 that grow with the differential.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.presets import esw_sweep
from ..api.session import Session
from ..metrics import EswStats, esw_stats

__all__ = ["EswStudyRow", "run_esw_study"]


@dataclass(frozen=True)
class EswStudyRow:
    """ESW statistics of one (program, md) run."""

    program: str
    window: int
    memory_differential: int
    stats: EswStats


def run_esw_study(
    session: Session,
    programs: tuple[str, ...],
    window: int = 32,
    differentials: tuple[int, ...] = (0, 20, 40, 60),
) -> list[EswStudyRow]:
    """Measure ESW across programs and memory differentials."""
    sweep = esw_sweep(
        programs,
        window,
        differentials,
        au_width=session.au_width,
        du_width=session.du_width,
    )
    outcome = session.run(sweep)
    return [
        EswStudyRow(
            program=point.program,
            window=window,
            memory_differential=point.memory_differential,
            stats=esw_stats(
                result,
                point.memory_differential,
                physical_windows=2 * window,
            ),
        )
        for point, result in outcome
    ]
