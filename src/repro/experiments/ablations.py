"""Ablation studies for the reproduction's documented design choices.

Five studies, each tied to a discussion point in the paper, each a
declarative :class:`~repro.api.Sweep` evaluated through the session:

* **issue split** — the DM's combined issue width of 9 can be divided
  between the AU and DU in eight ways; the paper adopts 4+5, citing a
  companion study that found it optimal. This sweep re-derives that.
* **partition strategy** — the paper's future work asks how the
  division of code between the units affects performance: the slice
  partition vs. a memory-only partition vs. a balance-driven one.
* **bypass buffer** — the paper's future work proposes a bypass that
  captures the temporal locality exposed by decoupling.
* **code expansion** — the paper's future work asks how the instruction
  overhead of unrolling affects the DM and SWSM differently.
* **memory hierarchy** — the paper's footnote anticipates that a
  locality-capturing memory system shrinks the differential the DM
  must hide; this study runs DM and SWSM under every memory model
  (caches, configurable hierarchies, banked memory, a stream
  prefetcher) and reports how much of the DM advantage survives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.presets import (
    HIERARCHY_MEMORY_VARIANTS,
    bypass_sweep,
    expansion_sweep,
    hierarchy_sweep,
    issue_split_sweep,
    partition_sweep,
)
from ..api.session import Session
from ..partition import Unit

__all__ = [
    "IssueSplitPoint",
    "run_issue_split_ablation",
    "PartitionPoint",
    "run_partition_ablation",
    "BypassPoint",
    "run_bypass_ablation",
    "ExpansionPoint",
    "run_code_expansion_ablation",
    "HierarchyPoint",
    "run_memory_hierarchy_ablation",
]


@dataclass(frozen=True)
class IssueSplitPoint:
    program: str
    au_width: int
    du_width: int
    cycles: int


def run_issue_split_ablation(
    session: Session,
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    combined_width: int = 9,
) -> list[IssueSplitPoint]:
    """DM cycles for every AU/DU division of the combined issue width."""
    sweep = issue_split_sweep(
        program, window, memory_differential, combined_width
    )
    return [
        IssueSplitPoint(
            program=program,
            au_width=point.au_width,
            du_width=point.du_width,
            cycles=result.cycles,
        )
        for point, result in session.run(sweep)
    ]


@dataclass(frozen=True)
class PartitionPoint:
    program: str
    strategy: str
    cycles: int
    au_instructions: int
    du_instructions: int


def run_partition_ablation(
    session: Session,
    program: str,
    window: int = 32,
    memory_differential: int = 60,
) -> list[PartitionPoint]:
    """DM cycles under each partitioning strategy."""
    sweep = partition_sweep(
        program,
        window,
        memory_differential,
        au_width=session.au_width,
        du_width=session.du_width,
    )
    points = []
    for point, result in session.run(sweep):
        counts = session.compiled(
            program, "dm", partition=point.partition
        ).unit_counts()
        points.append(
            PartitionPoint(
                program=program,
                strategy=point.partition,
                cycles=result.cycles,
                au_instructions=counts[Unit.AU],
                du_instructions=counts[Unit.DU],
            )
        )
    return points


@dataclass(frozen=True)
class BypassPoint:
    program: str
    entries: int  # 0 means no bypass
    cycles: int
    hit_rate: float


def run_bypass_ablation(
    session: Session,
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    entry_counts: tuple[int, ...] = (0, 16, 64, 256),
) -> list[BypassPoint]:
    """DM cycles with bypass buffers of increasing size."""
    sweep = bypass_sweep(
        program,
        window,
        memory_differential,
        entry_counts,
        au_width=session.au_width,
        du_width=session.du_width,
    )
    points = []
    for (point, result), entries in zip(session.run(sweep), entry_counts):
        points.append(
            BypassPoint(
                program=program,
                entries=entries,
                cycles=result.cycles,
                hit_rate=float(result.meta.get("bypass_hit_rate", 0.0)),
            )
        )
    return points


@dataclass(frozen=True)
class ExpansionPoint:
    program: str
    fraction: float
    dm_cycles: int
    swsm_cycles: int

    @property
    def dm_over_swsm(self) -> float:
        return self.swsm_cycles / self.dm_cycles


def run_code_expansion_ablation(
    session: Session,
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    fractions: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5),
) -> list[ExpansionPoint]:
    """DM vs SWSM cycles as bookkeeping overhead is added."""
    sweep = expansion_sweep(
        program,
        window,
        memory_differential,
        fractions,
        au_width=session.au_width,
        du_width=session.du_width,
        swsm_width=session.swsm_width,
    )
    outcome = session.run(sweep)
    cycles = {
        (point.machine, point.expansion): result.cycles
        for point, result in outcome
    }
    return [
        ExpansionPoint(
            program=program,
            fraction=fraction,
            dm_cycles=cycles[("dm", fraction)],
            swsm_cycles=cycles[("swsm", fraction)],
        )
        for fraction in fractions
    ]


#: Metadata counters (reported by ``MemorySystem.stats``) surfaced as
#: the hierarchy table's locality column, first match wins. Banked
#: memory is deliberately absent: it captures no locality (its
#: ``bank_conflict_rate`` measures stalls, the opposite), so it
#: reports 0.0 here and keeps the conflict rate in ``result.meta``.
_LOCALITY_METRICS = (
    "bypass_hit_rate",
    "cache_hit_rate",
    "prefetch_hit_rate",
)


@dataclass(frozen=True)
class HierarchyPoint:
    program: str
    memory: str  # variant label from HIERARCHY_MEMORY_VARIANTS
    dm_cycles: int
    swsm_cycles: int
    dm_hit_rate: float  # locality captured under the DM (0 for fixed)

    @property
    def dm_advantage(self) -> float:
        return self.swsm_cycles / self.dm_cycles


def _locality(meta: dict) -> float:
    for key in _LOCALITY_METRICS:
        if key in meta:
            return float(meta[key])
    return 0.0


def run_memory_hierarchy_ablation(
    session: Session,
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    variants: tuple = HIERARCHY_MEMORY_VARIANTS,
) -> list[HierarchyPoint]:
    """DM vs SWSM cycles under every memory-system model."""
    sweep = hierarchy_sweep(
        program,
        window,
        memory_differential,
        variants=variants,
        au_width=session.au_width,
        du_width=session.du_width,
        swsm_width=session.swsm_width,
    )
    by_key = {
        (point.machine, point.memory): result
        for point, result in session.run(sweep)
    }
    points = []
    for label, spec in variants:
        dm = by_key[("dm", spec)]
        swsm = by_key[("swsm", spec)]
        points.append(
            HierarchyPoint(
                program=program,
                memory=label,
                dm_cycles=dm.cycles,
                swsm_cycles=swsm.cycles,
                dm_hit_rate=_locality(dm.meta),
            )
        )
    return points
