"""Ablation studies for the design choices DESIGN.md calls out.

Four studies, each tied to a discussion point in the paper:

* **issue split** — the DM's combined issue width of 9 can be divided
  between the AU and DU in eight ways; the paper adopts 4+5, citing a
  companion study that found it optimal. This sweep re-derives that.
* **partition strategy** — the paper's future work asks how the
  division of code between the units affects performance: the slice
  partition vs. a memory-only partition vs. a balance-driven one.
* **bypass buffer** — the paper's future work proposes a bypass that
  captures the temporal locality exposed by decoupling.
* **code expansion** — the paper's future work asks how the instruction
  overhead of unrolling affects the DM and SWSM differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DMConfig, SWSMConfig
from ..ir.transforms import expand_code
from ..machines import DecoupledMachine, SuperscalarMachine
from ..memory import BypassBuffer, FixedLatencyMemory
from ..partition import Unit, lower_swsm
from ..partition.strategies import PARTITION_STRATEGIES, partition_with_strategy
from .lab import Lab

__all__ = [
    "IssueSplitPoint",
    "run_issue_split_ablation",
    "PartitionPoint",
    "run_partition_ablation",
    "BypassPoint",
    "run_bypass_ablation",
    "ExpansionPoint",
    "run_code_expansion_ablation",
]


@dataclass(frozen=True)
class IssueSplitPoint:
    program: str
    au_width: int
    du_width: int
    cycles: int


def run_issue_split_ablation(
    lab: Lab,
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    combined_width: int = 9,
) -> list[IssueSplitPoint]:
    """DM cycles for every AU/DU division of the combined issue width."""
    compiled = lab.dm_compiled(program)
    points = []
    for au_width in range(1, combined_width):
        du_width = combined_width - au_width
        machine = DecoupledMachine(
            DMConfig.symmetric(
                window,
                au_width=au_width,
                du_width=du_width,
                latencies=lab.latencies,
            )
        )
        result = machine.run(compiled, memory_differential=memory_differential)
        points.append(
            IssueSplitPoint(
                program=program,
                au_width=au_width,
                du_width=du_width,
                cycles=result.cycles,
            )
        )
    return points


@dataclass(frozen=True)
class PartitionPoint:
    program: str
    strategy: str
    cycles: int
    au_instructions: int
    du_instructions: int


def run_partition_ablation(
    lab: Lab,
    program: str,
    window: int = 32,
    memory_differential: int = 60,
) -> list[PartitionPoint]:
    """DM cycles under each partitioning strategy."""
    source = lab.program(program)
    machine = DecoupledMachine(
        DMConfig.symmetric(
            window,
            au_width=lab.au_width,
            du_width=lab.du_width,
            latencies=lab.latencies,
        )
    )
    points = []
    for strategy in PARTITION_STRATEGIES:
        compiled = partition_with_strategy(source, strategy, lab.latencies)
        result = machine.run(compiled, memory_differential=memory_differential)
        counts = compiled.unit_counts()
        points.append(
            PartitionPoint(
                program=program,
                strategy=strategy,
                cycles=result.cycles,
                au_instructions=counts[Unit.AU],
                du_instructions=counts[Unit.DU],
            )
        )
    return points


@dataclass(frozen=True)
class BypassPoint:
    program: str
    entries: int  # 0 means no bypass
    cycles: int
    hit_rate: float


def run_bypass_ablation(
    lab: Lab,
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    entry_counts: tuple[int, ...] = (0, 16, 64, 256),
) -> list[BypassPoint]:
    """DM cycles with bypass buffers of increasing size."""
    compiled = lab.dm_compiled(program)
    machine = DecoupledMachine(
        DMConfig.symmetric(
            window,
            au_width=lab.au_width,
            du_width=lab.du_width,
            latencies=lab.latencies,
        )
    )
    points = []
    for entries in entry_counts:
        if entries == 0:
            memory = FixedLatencyMemory(memory_differential)
            result = machine.run(compiled, memory=memory)
            hit_rate = 0.0
        else:
            bypass = BypassBuffer(
                FixedLatencyMemory(memory_differential),
                entries=entries,
                line_bytes=1,
            )
            result = machine.run(compiled, memory=bypass)
            hit_rate = bypass.hit_rate
        points.append(
            BypassPoint(
                program=program,
                entries=entries,
                cycles=result.cycles,
                hit_rate=hit_rate,
            )
        )
    return points


@dataclass(frozen=True)
class ExpansionPoint:
    program: str
    fraction: float
    dm_cycles: int
    swsm_cycles: int

    @property
    def dm_over_swsm(self) -> float:
        return self.swsm_cycles / self.dm_cycles


def run_code_expansion_ablation(
    lab: Lab,
    program: str,
    window: int = 32,
    memory_differential: int = 60,
    fractions: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5),
) -> list[ExpansionPoint]:
    """DM vs SWSM cycles as bookkeeping overhead is added."""
    source = lab.program(program)
    dm = DecoupledMachine(
        DMConfig.symmetric(
            window,
            au_width=lab.au_width,
            du_width=lab.du_width,
            latencies=lab.latencies,
        )
    )
    swsm = SuperscalarMachine(
        SWSMConfig(window=window, width=lab.swsm_width, latencies=lab.latencies)
    )
    points = []
    for fraction in fractions:
        expanded = expand_code(source, fraction)
        dm_cycles = dm.run_program(
            expanded, memory_differential=memory_differential
        ).cycles
        swsm_compiled = lower_swsm(expanded, lab.latencies)
        swsm_cycles = swsm.run(
            swsm_compiled, memory_differential=memory_differential
        ).cycles
        points.append(
            ExpansionPoint(
                program=program,
                fraction=fraction,
                dm_cycles=dm_cycles,
                swsm_cycles=swsm_cycles,
            )
        )
    return points
