"""Experiment drivers: one module per paper table/figure plus ablations.

Every driver is a thin wrapper that builds the matching declarative
sweep (see :mod:`repro.api.presets`), evaluates it through a
:class:`~repro.api.Session`, and shapes the results into the artefact's
row/curve dataclasses. ``Lab`` is a deprecated alias of ``Session``.
"""

from ..api.session import Session, SweepResult
from .ablations import (
    BypassPoint,
    ExpansionPoint,
    HierarchyPoint,
    IssueSplitPoint,
    PartitionPoint,
    run_bypass_ablation,
    run_code_expansion_ablation,
    run_issue_split_ablation,
    run_memory_hierarchy_ablation,
    run_partition_ablation,
)
from .esw_study import EswStudyRow, run_esw_study
from .ewr_figures import EwrCurve, EwrFigure, run_ewr_figure
from .formatting import format_cell, render_plot, render_table
from .generalization import (
    FamilyGeneralization,
    GeneralizationResult,
    GeneralizationRow,
    run_generalization_study,
)
from .lab import UNLIMITED, Lab
from .scales import (
    EWR_DIFFERENTIALS,
    EWR_WINDOWS,
    FIGURE_PROGRAMS,
    PRESETS,
    SPEEDUP_DIFFERENTIALS,
    SPEEDUP_WINDOWS,
    TABLE1_WINDOWS,
    ScalePreset,
    active_preset,
)
from .speedup_figures import SpeedupCurve, SpeedupFigure, run_speedup_figure
from .table1 import Table1Result, Table1Row, run_table1

__all__ = [
    "BypassPoint",
    "EWR_DIFFERENTIALS",
    "EWR_WINDOWS",
    "EswStudyRow",
    "EwrCurve",
    "EwrFigure",
    "ExpansionPoint",
    "FIGURE_PROGRAMS",
    "FamilyGeneralization",
    "GeneralizationResult",
    "GeneralizationRow",
    "HierarchyPoint",
    "IssueSplitPoint",
    "Lab",
    "PRESETS",
    "PartitionPoint",
    "SPEEDUP_DIFFERENTIALS",
    "SPEEDUP_WINDOWS",
    "ScalePreset",
    "Session",
    "SweepResult",
    "SpeedupCurve",
    "SpeedupFigure",
    "TABLE1_WINDOWS",
    "Table1Result",
    "Table1Row",
    "UNLIMITED",
    "active_preset",
    "format_cell",
    "render_plot",
    "render_table",
    "run_bypass_ablation",
    "run_code_expansion_ablation",
    "run_esw_study",
    "run_ewr_figure",
    "run_generalization_study",
    "run_issue_split_ablation",
    "run_memory_hierarchy_ablation",
    "run_partition_ablation",
    "run_speedup_figure",
    "run_table1",
]
