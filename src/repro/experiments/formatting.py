"""ASCII rendering of tables and figures for terminal output.

The benchmark harness prints the same rows and series the paper
reports; these helpers keep that output readable without plotting
dependencies.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["format_cell", "render_table", "render_plot"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[format_cell(value) for value in row] for row in rows]
    columns = len(headers)
    for row in cells:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(headers[i].ljust(widths[i]) for i in range(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def format_cell(value: object) -> str:
    """Canonical cell formatting shared by every renderer.

    Floats print at two decimals (NaN as ``-``), ``None`` renders as
    the unlimited-window label. The terminal tables, the Markdown
    tables and the HTML tables of the report site all format values
    through this one function, so a number reads identically on every
    surface.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.2f}"
    if value is None:
        return "unl"
    return str(value)


def render_plot(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str = "",
    x_label: str = "x",
    height: int = 16,
    width: int = 72,
) -> str:
    """Multi-series ASCII line plot (one letter marker per series)."""
    if not series:
        raise ValueError("at least one series is required")
    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    points: list[tuple[float, float, str]] = []
    for index, (name, ys) in enumerate(series.items()):
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} xs"
            )
        marker = markers[index % len(markers)]
        for x, y in zip(x_values, ys):
            if not math.isnan(y):
                points.append((float(x), float(y), marker))
    if not points:
        return f"{title}\n(no finite data)"

    x_low, x_high = min(p[0] for p in points), max(p[0] for p in points)
    y_low, y_high = min(p[1] for p in points), max(p[1] for p in points)
    y_low = min(y_low, 0.0)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        column = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    for index, name in enumerate(series):
        lines.append(f"  {markers[index % len(markers)]} = {name}")
    lines.append(f"{y_high:10.2f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_low:10.2f} +" + "-" * width)
    lines.append(
        " " * 12 + f"{x_low:<10.0f}{x_label:^{max(0, width - 20)}}{x_high:>10.0f}"
    )
    return "\n".join(lines)
