"""Figures 7-9: equivalent window ratio versus DM window size.

For each memory differential (0-60 in steps of 10) and each DM window
size, find the SWSM window giving the same execution time and report
the ratio of the two. The paper's claims checked here:

* the ratio grows with the memory differential (more effective DM
  prefetching means the SWSM needs ever larger windows);
* the ratio falls as the DM window grows (a big enough SWSM window
  re-orders as well as the DM and enjoys the wider issue width);
* at a realistic DM window and MD = 60 the ratio lies roughly in the
  paper's 2x-4x range.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.presets import ewr_dm_sweep
from ..api.session import Session
from ..errors import ProjectionError
from ..metrics import find_equivalent_window
from .scales import EWR_DIFFERENTIALS, EWR_WINDOWS

__all__ = ["EwrCurve", "EwrFigure", "run_ewr_figure"]


@dataclass(frozen=True)
class EwrCurve:
    """Equivalent-window ratios for one memory differential."""

    memory_differential: int
    dm_windows: tuple[int, ...]
    ratios: tuple[float, ...]  # NaN where the SWSM could not match

    def at(self, dm_window: int) -> float:
        return self.ratios[self.dm_windows.index(dm_window)]


@dataclass(frozen=True)
class EwrFigure:
    """All differential curves of one figure."""

    program: str
    dm_windows: tuple[int, ...]
    curves: tuple[EwrCurve, ...]

    def curve(self, memory_differential: int) -> EwrCurve:
        for candidate in self.curves:
            if candidate.memory_differential == memory_differential:
                return candidate
        raise KeyError(f"no curve for md={memory_differential}")


def run_ewr_figure(
    session: Session,
    program: str,
    dm_windows: tuple[int, ...] = EWR_WINDOWS,
    differentials: tuple[int, ...] = EWR_DIFFERENTIALS,
    max_swsm_window: int = 4096,
) -> EwrFigure:
    """Reproduce one of figures 7-9.

    The DM targets are a declarative sweep (evaluated up front, so they
    parallelise); the SWSM side is an adaptive projection search and is
    evaluated point by point through the same session cache.
    """
    session.run(
        ewr_dm_sweep(
            program,
            dm_windows,
            differentials,
            au_width=session.au_width,
            du_width=session.du_width,
        )
    )
    curves = []
    for md in differentials:
        def evaluate(window: int, _md: int = md) -> int:
            return session.swsm_cycles(program, window, _md)

        ratios = []
        for dm_window in dm_windows:
            target = session.dm_cycles(program, dm_window, md)
            try:
                equivalent = find_equivalent_window(
                    evaluate,
                    target,
                    start=max(4, dm_window),
                    max_window=max_swsm_window,
                )
            except ProjectionError:
                ratios.append(float("nan"))
            else:
                ratios.append(equivalent / dm_window)
        curves.append(
            EwrCurve(
                memory_differential=md,
                dm_windows=dm_windows,
                ratios=tuple(ratios),
            )
        )
    return EwrFigure(program=program, dm_windows=dm_windows, curves=tuple(curves))
