"""Scale presets and sweep grids shared by the experiment drivers.

The paper's axes: window sizes 0-100 for the speedup figures, DM
windows 10-100 for the equivalent-window figures, memory differentials
0-60 in steps of 10, and Table 1 window columns up to "unlimited".
The exact Table 1 column values are not legible in the source text;
the powers-of-two ladder below is the documented reproduction choice.

The ``REPRO_SCALE`` environment variable selects a preset globally
(``tiny`` for CI-speed checks, ``small`` for the benchmark harness,
``paper`` for full-fidelity runs, ``huge`` for production-scale
engine-throughput sweeps).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..api.presets import (  # noqa: F401 - canonical home; re-exported here
    EWR_DIFFERENTIALS,
    EWR_WINDOWS,
    FIGURE_PROGRAMS,
    SPEEDUP_DIFFERENTIALS,
    SPEEDUP_WINDOWS,
    TABLE1_WINDOWS,
)
from ..errors import ConfigError

__all__ = [
    "ScalePreset",
    "PRESETS",
    "active_preset",
    "SPEEDUP_WINDOWS",
    "EWR_WINDOWS",
    "TABLE1_WINDOWS",
    "SPEEDUP_DIFFERENTIALS",
    "EWR_DIFFERENTIALS",
    "FIGURE_PROGRAMS",
]


@dataclass(frozen=True)
class ScalePreset:
    """A named trade-off between fidelity and wall-clock time."""

    name: str
    scale: int  # architectural instructions per kernel
    speedup_windows: tuple[int, ...] = SPEEDUP_WINDOWS
    ewr_windows: tuple[int, ...] = EWR_WINDOWS
    ewr_differentials: tuple[int, ...] = EWR_DIFFERENTIALS


PRESETS = {
    "tiny": ScalePreset(
        name="tiny",
        scale=3_000,
        speedup_windows=(4, 16, 48, 100),
        ewr_windows=(16, 48),
        ewr_differentials=(0, 30, 60),
    ),
    "small": ScalePreset(
        name="small",
        scale=12_000,
        speedup_windows=(4, 8, 16, 32, 64, 100),
        ewr_windows=(10, 20, 32, 64, 100),
        ewr_differentials=(0, 20, 40, 60),
    ),
    "paper": ScalePreset(name="paper", scale=40_000),
    # Beyond the paper: production-scale sweeps for the SoA engine,
    # whose steady-state accelerator makes trace length nearly free on
    # the loop-nest kernels (see docs/timing.md).
    "huge": ScalePreset(name="huge", scale=160_000),
}


def active_preset(default: str = "small") -> ScalePreset:
    """The preset selected by ``REPRO_SCALE`` (or the given default)."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ConfigError(
            f"unknown REPRO_SCALE={name!r}; known presets: {known}"
        ) from None
