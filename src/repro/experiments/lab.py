"""The experiment lab: cached program building, compilation and runs.

Every figure and table in the paper is a sweep over (program, machine,
window, memory differential). The sweeps overlap heavily — the
equivalent-window figures re-use the speedup curves, Table 1 re-uses
the perfect-machine runs — so the lab memoises at three levels:
architectural traces, compiled machine programs, and simulation
results. All caches are keyed on exact parameters; nothing is ever
approximated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import (
    DEFAULT_LATENCIES,
    DMConfig,
    LatencyModel,
    SWSMConfig,
)
from ..ir import Program
from ..kernels import build_kernel
from ..machines import (
    DecoupledMachine,
    SerialMachine,
    SimulationResult,
    SuperscalarMachine,
)
from ..partition import MachineProgram, lower_swsm, partition_dm

__all__ = ["Lab", "UNLIMITED"]

#: Sentinel window meaning "as large as the program" (paper: unlimited).
UNLIMITED: int | None = None


@dataclass
class Lab:
    """Builds, compiles, simulates and caches.

    Attributes:
        scale: approximate architectural instruction count per kernel.
        au_width / du_width / swsm_width: issue widths (paper: 4+5=9).
        latencies: operation latency model.
    """

    scale: int = 20_000
    au_width: int = 4
    du_width: int = 5
    swsm_width: int = 9
    latencies: LatencyModel = field(default=DEFAULT_LATENCIES)

    def __post_init__(self) -> None:
        self._programs: dict[str, Program] = {}
        self._dm_compiled: dict[str, MachineProgram] = {}
        self._swsm_compiled: dict[str, MachineProgram] = {}
        self._dm_runs: dict[tuple[str, int, int], SimulationResult] = {}
        self._swsm_runs: dict[tuple[str, int, int], SimulationResult] = {}
        self._serial_runs: dict[tuple[str, int], int] = {}
        self._serial_machine = SerialMachine(self.latencies)

    # -- building and compiling -------------------------------------------------

    def program(self, name: str) -> Program:
        """The architectural trace of a kernel at this lab's scale."""
        if name not in self._programs:
            self._programs[name] = build_kernel(name, self.scale)
        return self._programs[name]

    def register_program(self, program: Program) -> None:
        """Make a custom (non-registry) program available under its name."""
        self._programs[program.name] = program

    def dm_compiled(self, name: str) -> MachineProgram:
        if name not in self._dm_compiled:
            self._dm_compiled[name] = partition_dm(
                self.program(name), self.latencies
            )
        return self._dm_compiled[name]

    def swsm_compiled(self, name: str) -> MachineProgram:
        if name not in self._swsm_compiled:
            self._swsm_compiled[name] = lower_swsm(
                self.program(name), self.latencies
            )
        return self._swsm_compiled[name]

    # -- window handling ---------------------------------------------------------

    def resolve_window(self, name: str, window: int | None) -> int:
        """Translate the unlimited-window sentinel into a concrete size."""
        if window is not None:
            return window
        return max(len(self.program(name)), 1)

    # -- simulation --------------------------------------------------------------

    def dm_result(
        self, name: str, window: int | None, memory_differential: int
    ) -> SimulationResult:
        """Cached DM run (both unit windows set to ``window``)."""
        concrete = self.resolve_window(name, window)
        key = (name, concrete, memory_differential)
        if key not in self._dm_runs:
            machine = DecoupledMachine(
                DMConfig.symmetric(
                    concrete,
                    au_width=self.au_width,
                    du_width=self.du_width,
                    latencies=self.latencies,
                )
            )
            self._dm_runs[key] = machine.run(
                self.dm_compiled(name), memory_differential=memory_differential
            )
        return self._dm_runs[key]

    def swsm_result(
        self, name: str, window: int | None, memory_differential: int
    ) -> SimulationResult:
        """Cached SWSM run."""
        concrete = self.resolve_window(name, window)
        key = (name, concrete, memory_differential)
        if key not in self._swsm_runs:
            machine = SuperscalarMachine(
                SWSMConfig(
                    window=concrete,
                    width=self.swsm_width,
                    latencies=self.latencies,
                )
            )
            self._swsm_runs[key] = machine.run(
                self.swsm_compiled(name),
                memory_differential=memory_differential,
            )
        return self._swsm_runs[key]

    def dm_cycles(self, name: str, window: int | None, md: int) -> int:
        return self.dm_result(name, window, md).cycles

    def swsm_cycles(self, name: str, window: int | None, md: int) -> int:
        return self.swsm_result(name, window, md).cycles

    def serial_cycles(self, name: str, md: int) -> int:
        key = (name, md)
        if key not in self._serial_runs:
            self._serial_runs[key] = self._serial_machine.run(
                self.program(name), md
            ).cycles
        return self._serial_runs[key]

    # -- derived metrics -----------------------------------------------------------

    def dm_speedup(self, name: str, window: int | None, md: int) -> float:
        return self.serial_cycles(name, md) / self.dm_cycles(name, window, md)

    def swsm_speedup(self, name: str, window: int | None, md: int) -> float:
        return self.serial_cycles(name, md) / self.swsm_cycles(name, window, md)

    def dm_lhe(self, name: str, window: int | None, md: int) -> float:
        """Latency-hiding effectiveness of the DM at one operating point."""
        perfect = self.dm_cycles(name, window, 0)
        actual = self.dm_cycles(name, window, md)
        return perfect / actual
