"""Deprecated: the experiment lab is now :class:`repro.api.Session`.

``Lab`` was the original in-memory-only, single-process experiment
cache. The session supersedes it — same three-level memoisation, same
convenience accessors (``dm_cycles``, ``swsm_speedup``, ``dm_lhe``,
...), plus a content-addressed disk cache, a process-pool executor and
the declarative :class:`~repro.api.Sweep` interface. ``Lab`` remains as
a thin shim so existing code keeps working; new code should construct
:class:`~repro.api.Session` directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..api.session import Session
from ..api.spec import UNLIMITED

__all__ = ["Lab", "UNLIMITED"]


@dataclass
class Lab(Session):
    """Deprecated alias of :class:`repro.api.Session`.

    Accepts the same constructor arguments it always did (``scale``,
    issue widths, ``latencies``) and delegates every operation to the
    session implementation.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        warnings.warn(
            "Lab is deprecated; use repro.Session (same API, plus disk "
            "caching, parallel sweeps and declarative Sweep specs)",
            DeprecationWarning,
            stacklevel=3,
        )
