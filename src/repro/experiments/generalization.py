"""The generalization study: does Table 1 survive beyond seven programs?

The paper classifies seven PERFECT-club programs into latency-hiding
bands (Table 1) and concludes that, at a memory differential, the DM
dominates the SWSM at limited window sizes. Seven is a small sample.
This study re-derives both observations over an arbitrary *generated*
corpus (:mod:`repro.workloads`): for every kernel, on both machines,

* **band classification** — LHE at the unlimited window and the study
  differential, exactly Table 1's construction, classified with the
  same thresholds (:func:`repro.metrics.classify_band`);
* **limited-window comparison** — DM vs SWSM cycles at the probe
  window and differential, the figure-4-6 operating regime where the
  paper finds the DM ahead.

Per kernel, the paper's *crossover structure holds* when the DM wins
the limited-window comparison and hides at least as much latency as
the SWSM at the unlimited window. The result aggregates per family —
band histograms, prediction agreement (static characterizer vs
measured band) and the holds fraction — so the report shows exactly
*where* the conclusion generalizes and where it breaks (e.g. pointer
chases, where neither machine can hide anything and the DM's
advantage collapses to parity).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.presets import generalization_sweep
from ..api.session import Session
from ..config import DEFAULT_MEMORY_DIFFERENTIAL
from ..kernels import get_kernel
from ..metrics import classify_band, lhe
from ..workloads import Corpus, parse_generated_name

__all__ = [
    "FamilyGeneralization",
    "GeneralizationResult",
    "GeneralizationRow",
    "run_generalization_study",
]


@dataclass(frozen=True)
class GeneralizationRow:
    """One kernel's measurements on both machines."""

    name: str
    family: str
    predicted_band: str
    dm_lhe: float
    swsm_lhe: float
    dm_cycles: int  # at the probe window and study differential
    swsm_cycles: int

    @property
    def dm_band(self) -> str:
        """Measured Table-1-style band of the DM."""
        return classify_band(self.dm_lhe)

    @property
    def swsm_band(self) -> str:
        return classify_band(self.swsm_lhe)

    @property
    def dm_wins(self) -> bool:
        """DM at least matches the SWSM at the limited window."""
        return self.dm_cycles <= self.swsm_cycles

    @property
    def prediction_matches(self) -> bool:
        """Static characterizer prediction agrees with the DM band."""
        return self.predicted_band == self.dm_band

    @property
    def structure_holds(self) -> bool:
        """The paper's crossover structure holds for this kernel."""
        return self.dm_wins and self.dm_lhe >= self.swsm_lhe


@dataclass(frozen=True)
class FamilyGeneralization:
    """One access-pattern family's aggregate."""

    family: str
    rows: tuple[GeneralizationRow, ...]

    @property
    def kernels(self) -> int:
        return len(self.rows)

    @property
    def band_counts(self) -> dict[str, int]:
        """Measured DM band histogram ({"high": n, ...})."""
        counts = {"high": 0, "moderate": 0, "poor": 0}
        for row in self.rows:
            counts[row.dm_band] += 1
        return counts

    @property
    def mean_dm_lhe(self) -> float:
        return sum(row.dm_lhe for row in self.rows) / len(self.rows)

    @property
    def mean_swsm_lhe(self) -> float:
        return sum(row.swsm_lhe for row in self.rows) / len(self.rows)

    @property
    def dm_wins(self) -> int:
        return sum(1 for row in self.rows if row.dm_wins)

    @property
    def holds(self) -> int:
        return sum(1 for row in self.rows if row.structure_holds)

    @property
    def prediction_hits(self) -> int:
        return sum(1 for row in self.rows if row.prediction_matches)


@dataclass(frozen=True)
class GeneralizationResult:
    """The full study: per-kernel rows and per-family aggregates."""

    corpus_name: str
    scale: int
    window: int
    memory_differential: int
    rows: tuple[GeneralizationRow, ...]
    families: tuple[FamilyGeneralization, ...]

    @property
    def kernels(self) -> int:
        return len(self.rows)

    @property
    def holds(self) -> int:
        return sum(1 for row in self.rows if row.structure_holds)

    @property
    def holds_fraction(self) -> float:
        return self.holds / len(self.rows) if self.rows else 0.0

    @property
    def prediction_agreement(self) -> float:
        if not self.rows:
            return 0.0
        hits = sum(1 for row in self.rows if row.prediction_matches)
        return hits / len(self.rows)


def _study_entries(
    corpus: Corpus | tuple[str, ...] | list[str],
) -> list[tuple[str, str, str]]:
    """Normalise the input to (name, family, predicted band) triples."""
    if isinstance(corpus, Corpus):
        return [
            (entry.name, entry.family, entry.predicted_band)
            for entry in corpus.entries
        ]
    entries = []
    for raw in corpus:
        # Lower-case first so family classification agrees with the
        # case-insensitive registry lookup the simulation will use.
        name = str(raw).lower()
        parsed = parse_generated_name(name)
        family = parsed[0] if parsed else "named"
        entries.append((name, family, get_kernel(name).resolved_band))
    return entries


def run_generalization_study(
    session: Session,
    corpus: Corpus | tuple[str, ...] | list[str],
    window: int = 32,
    memory_differential: int = DEFAULT_MEMORY_DIFFERENTIAL,
) -> GeneralizationResult:
    """Run the study over a corpus (or an explicit list of kernel names).

    Kernels are regenerated at the *session's* scale — generated names
    are scale-free — so one manifest drives the study at any fidelity
    preset. Plain registry names (the seven paper kernels) are accepted
    too and grouped under the ``named`` pseudo-family, which is how the
    study cross-checks itself against Table 1.
    """
    entries = _study_entries(corpus)
    names = tuple(name for name, _, _ in entries)
    sweep = generalization_sweep(
        names,
        window,
        memory_differential,
        au_width=session.au_width,
        du_width=session.du_width,
        swsm_width=session.swsm_width,
    )
    cycles = {
        (p.program, p.machine, p.window, p.memory_differential): r.cycles
        for p, r in session.run(sweep)
    }
    rows = []
    for name, family, predicted in entries:
        rows.append(
            GeneralizationRow(
                name=name,
                family=family,
                predicted_band=predicted,
                dm_lhe=lhe(
                    cycles[(name, "dm", None, 0)],
                    cycles[(name, "dm", None, memory_differential)],
                ),
                swsm_lhe=lhe(
                    cycles[(name, "swsm", None, 0)],
                    cycles[(name, "swsm", None, memory_differential)],
                ),
                dm_cycles=cycles[(name, "dm", window,
                                  memory_differential)],
                swsm_cycles=cycles[(name, "swsm", window,
                                    memory_differential)],
            )
        )
    order: list[str] = []
    grouped: dict[str, list[GeneralizationRow]] = {}
    for row in rows:
        if row.family not in grouped:
            order.append(row.family)
            grouped[row.family] = []
        grouped[row.family].append(row)
    families = tuple(
        FamilyGeneralization(family=family, rows=tuple(grouped[family]))
        for family in order
    )
    return GeneralizationResult(
        corpus_name=corpus.name if isinstance(corpus, Corpus) else "",
        scale=session.scale,
        window=window,
        memory_differential=memory_differential,
        rows=tuple(rows),
        families=families,
    )
