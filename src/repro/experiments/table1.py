"""Table 1: latency-hiding effectiveness of the DM at MD = 60.

Rows are the seven PERFECT-club programs; columns are DM window sizes
(both unit windows set to the column value), ending with the unlimited
window that defines the paper's high/moderate/poor bands.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.presets import table1_sweep
from ..api.session import Session
from ..config import DEFAULT_MEMORY_DIFFERENTIAL
from ..kernels import PAPER_ORDER, get_kernel
from ..metrics import classify_band
from .scales import TABLE1_WINDOWS

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """LHE of one program across the window columns."""

    program: str
    lhe_by_window: dict[int | None, float]
    expected_band: str

    @property
    def unlimited_lhe(self) -> float:
        return self.lhe_by_window[None]

    @property
    def measured_band(self) -> str:
        return classify_band(self.unlimited_lhe)

    @property
    def band_matches(self) -> bool:
        return self.measured_band == self.expected_band


@dataclass(frozen=True)
class Table1Result:
    """The full reproduced table."""

    memory_differential: int
    windows: tuple[int | None, ...]
    rows: tuple[Table1Row, ...]

    @property
    def bands_correct(self) -> int:
        return sum(1 for row in self.rows if row.band_matches)


def run_table1(
    session: Session,
    programs: tuple[str, ...] = PAPER_ORDER,
    windows: tuple[int | None, ...] = TABLE1_WINDOWS,
    memory_differential: int = DEFAULT_MEMORY_DIFFERENTIAL,
) -> Table1Result:
    """Reproduce Table 1 on the given session."""
    session.run(
        table1_sweep(
            programs,
            windows,
            memory_differential,
            au_width=session.au_width,
            du_width=session.du_width,
        )
    )
    rows = []
    for name in programs:
        lhe_by_window = {
            window: session.dm_lhe(name, window, memory_differential)
            for window in windows
        }
        rows.append(
            Table1Row(
                program=name,
                lhe_by_window=lhe_by_window,
                expected_band=get_kernel(name).resolved_band,
            )
        )
    return Table1Result(
        memory_differential=memory_differential,
        windows=tuple(windows),
        rows=tuple(rows),
    )
