"""Generative workload subsystem: grammar, characterizer, corpora.

Three layers (see docs/architecture.md, "Generative workloads"):

* :mod:`repro.workloads.grammar` — a seeded loop-nest grammar that
  samples programs from six access-pattern families; importing this
  package installs the ``gen:<family>:<seed>`` resolver into the
  kernel registry, making generated kernels first-class ``program=``
  axes everywhere;
* :mod:`repro.workloads.characterize` — the static characterizer:
  dependence-distance histograms, crossing density, load-chain depth
  and a predicted latency-hiding band, no simulation required;
* :mod:`repro.workloads.corpus` — named, versioned TOML/JSON corpus
  manifests whose content digests prove bit-identical regeneration.

The generalization study (:func:`repro.experiments.
run_generalization_study`, ``repro ablation --study generalization``)
re-derives the paper's Table-1-style band classification over a whole
corpus on both machines.
"""

from .characterize import WorkloadProfile, characterize
from .corpus import (
    MANIFEST_VERSION,
    Corpus,
    CorpusEntry,
    generate_corpus,
    load_manifest,
    register_corpus,
    verify_corpus,
    write_manifest,
)
from .grammar import (
    FAMILIES,
    GRAMMAR_VERSION,
    GenParams,
    build_generated,
    generated_name,
    parse_generated_name,
    sample_params,
)

__all__ = [
    "FAMILIES",
    "GRAMMAR_VERSION",
    "MANIFEST_VERSION",
    "Corpus",
    "CorpusEntry",
    "GenParams",
    "WorkloadProfile",
    "build_generated",
    "characterize",
    "generate_corpus",
    "generated_name",
    "load_manifest",
    "parse_generated_name",
    "register_corpus",
    "sample_params",
    "verify_corpus",
    "write_manifest",
]
