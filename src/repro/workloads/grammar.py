"""A seeded loop-nest grammar: unbounded generated workloads.

The paper's evidence base is seven fixed PERFECT-club models. This
module generates arbitrarily many more: programs are *sampled* from
six access-pattern families —

* ``streaming`` — unit-stride loads/stores with optional carried FP
  chains (the vectorisable common case);
* ``strided`` — the same skeleton over non-unit strides;
* ``gather`` — indirect references through an index table, so every
  data address depends on an AU self-load (TRFD/FLO52Q-style gating,
  made pervasive);
* ``chase`` — a pointer chase: each load's address depends on the
  *previous* load's value, the degenerate case no amount of address
  slip can hide;
* ``stencil`` — multi-tap neighbourhood reads with a carried
  read-after-write on the output array (DYFESM-style memory
  dependences);
* ``reduction`` — deep serial accumulation chains with optional
  DU -> AU feedback, where the reduced value periodically steers
  addressing (TRACK-style loss of decoupling, at tunable density).

Each family crosses its skeleton with distributions over
inter-iteration dependence distance, FP chain depth, memory-op mix and
AU<->DU feedback density (:func:`sample_params`). Programs compile
through the ordinary :class:`~repro.ir.KernelBuilder`, so a generated
kernel is a pure function of ``(family, seed, scale)`` — the same
determinism contract as the seven hand-written models, enforced by the
registry purity tests.

Generated kernels are addressed by *structured names*,
``gen:<family>:<seed>``, resolved on demand through the kernel
registry's dynamic-resolver hook (:func:`repro.kernels.base.
register_resolver`); importing :mod:`repro.kernels` installs the
resolver. Any consumer of kernel names — ``Point``/``Sweep`` axes,
``Session`` caching, process-pool workers, the CLI — therefore accepts
generated kernels with no further registration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import KernelError
from ..ir import KernelBuilder, Program
from ..kernels.base import KernelSpec, register_resolver

__all__ = [
    "FAMILIES",
    "GRAMMAR_VERSION",
    "GenParams",
    "build_generated",
    "ensure_family",
    "generated_name",
    "parse_generated_name",
    "sample_params",
]

#: The access-pattern families the grammar samples from.
FAMILIES = (
    "streaming", "strided", "gather", "chase", "stencil", "reduction",
)

#: Bump when the sampling distributions or emitters change shape; part
#: of program metadata so manifests can detect grammar drift.
GRAMMAR_VERSION = 1

#: Scale at which a kernel is probed to predict its latency-hiding
#: band when its spec is resolved (cheap, static analysis only).
_PROBE_SCALE = 2_000

_NAME_PREFIX = "gen"


def ensure_family(family: str) -> str:
    """Validate a family name (shared by every entry point)."""
    if family not in FAMILIES:
        raise KernelError(
            f"unknown workload family {family!r}; "
            f"known families: {', '.join(FAMILIES)}"
        )
    return family


@dataclass(frozen=True)
class GenParams:
    """The sampled structure of one generated loop nest.

    Attributes:
        family: access-pattern family (one of :data:`FAMILIES`).
        seed: grammar seed the parameters were sampled from.
        loads: data loads per iteration.
        stores: data stores per iteration.
        chain_depth: serial FP operations per iteration (0 = no FP).
        parallel_fp: additional independent FP operations per iteration.
        dep_distance: inter-iteration dependence distance of the
            carried FP accumulators (1 = each iteration depends on the
            previous one).
        stride: address stride, in elements, of the streaming families.
        gate_group: if positive, one AU self-load every ``gate_group``
            iterations gates those iterations' addressing.
        feedback_period: if positive, every ``feedback_period``
            iterations the FP result is converted to an integer and
            steers subsequent addressing (a DU -> AU crossing).
        taps: neighbourhood size of the stencil family (odd, >= 3).
        store_period: iterations between stores of the reduction
            family's accumulator.
    """

    family: str
    seed: int
    loads: int = 1
    stores: int = 0
    chain_depth: int = 0
    parallel_fp: int = 0
    dep_distance: int = 1
    stride: int = 1
    gate_group: int = 0
    feedback_period: int = 0
    taps: int = 3
    store_period: int = 0

    def __post_init__(self) -> None:
        ensure_family(self.family)
        if self.loads < 1:
            raise KernelError("generated kernels need at least one load")
        for name in ("stores", "chain_depth", "parallel_fp", "gate_group",
                     "feedback_period", "store_period"):
            if getattr(self, name) < 0:
                raise KernelError(f"{name} must be >= 0")
        if self.dep_distance < 1 or self.stride < 1:
            raise KernelError("dep_distance and stride must be >= 1")
        if self.taps < 3 or self.taps % 2 == 0:
            raise KernelError(f"taps must be odd and >= 3, got {self.taps}")
        if self.feedback_period and not self.chain_depth:
            raise KernelError("feedback needs an FP chain to convert")

    @property
    def per_item(self) -> int:
        """Architectural instructions per iteration (amortised extras
        — gates, feedback converts, periodic stores — excluded)."""
        if self.family == "gather":
            return 3 + 2 * self.loads + self.chain_depth \
                + self.parallel_fp + 2 * self.stores
        if self.family == "chase":
            return 3 + self.chain_depth + 2 * self.stores
        if self.family == "stencil":
            return 4 * self.taps + 5
        if self.family == "reduction":
            return 1 + 2 * self.loads + self.chain_depth
        # streaming / strided
        return 1 + 2 * self.loads + self.chain_depth \
            + self.parallel_fp + 2 * self.stores


def generated_name(family: str, seed: int) -> str:
    """The registry name of one generated kernel."""
    ensure_family(family)
    if seed < 0:
        raise KernelError(f"generated kernel seed must be >= 0, got {seed}")
    return f"{_NAME_PREFIX}:{family}:{seed}"


def parse_generated_name(name: str) -> tuple[str, int] | None:
    """Parse ``gen:<family>:<seed>`` into ``(family, seed)``.

    Returns ``None`` for names outside the ``gen:`` namespace; raises
    :class:`KernelError` for malformed names inside it (so typos fail
    loudly instead of falling through to "unknown kernel").
    """
    parts = name.split(":")
    if parts[0] != _NAME_PREFIX:
        return None
    if len(parts) != 3:
        raise KernelError(
            f"malformed generated kernel name {name!r}; "
            f"expected gen:<family>:<seed>"
        )
    family, seed_text = parts[1], parts[2]
    ensure_family(family)
    # Only the canonical spelling is a valid name: aliases such as
    # "007" or non-ASCII digits would cache and digest as different
    # kernels than the program they build.
    if (not seed_text.isascii() or not seed_text.isdigit()
            or str(int(seed_text)) != seed_text):
        raise KernelError(
            f"generated kernel seed must be a canonical non-negative "
            f"integer, got {seed_text!r} in {name!r}"
        )
    return family, int(seed_text)


def sample_params(family: str, seed: int) -> GenParams:
    """Sample one family's structural knobs (pure in ``(family, seed)``)."""
    ensure_family(family)
    rng = random.Random(f"repro:gen:{family}:{seed}")
    if family in ("streaming", "strided"):
        feedback = rng.choice((0, 0, 0, 0, 48, 64))
        chain = rng.choice((0, 1, 2, 4, 6))
        return GenParams(
            family=family,
            seed=seed,
            loads=rng.randint(1, 4),
            stores=rng.randint(0, 2),
            chain_depth=max(1, chain) if feedback else chain,
            parallel_fp=rng.randint(0, 2),
            dep_distance=rng.choice((1, 2, 4, 8)),
            stride=1 if family == "streaming"
            else rng.choice((2, 3, 5, 8, 17)),
            gate_group=rng.choice((0, 0, 0, 16, 32)),
            feedback_period=feedback,
        )
    if family == "gather":
        feedback = rng.choice((0, 0, 0, 0, 0, 64))
        chain = rng.choice((0, 1, 2, 4))
        return GenParams(
            family=family,
            seed=seed,
            loads=rng.randint(1, 3),
            stores=rng.randint(0, 1),
            chain_depth=max(1, chain) if feedback else chain,
            parallel_fp=rng.randint(0, 1),
            dep_distance=rng.choice((1, 2, 4)),
            feedback_period=feedback,
        )
    if family == "chase":
        return GenParams(
            family=family,
            seed=seed,
            loads=1,
            stores=rng.randint(0, 1),
            chain_depth=rng.randint(0, 3),
        )
    if family == "stencil":
        return GenParams(
            family=family,
            seed=seed,
            stores=1,
            taps=rng.choice((3, 5, 9)),
            dep_distance=rng.choice((4, 8, 16)),
        )
    # reduction
    feedback = rng.choice((0, 0, 8, 16, 32, 64))
    return GenParams(
        family=family,
        seed=seed,
        loads=rng.randint(1, 3),
        chain_depth=rng.randint(2, 8),
        dep_distance=rng.choice((1, 1, 2, 4)),
        store_period=rng.choice((8, 32)),
        feedback_period=feedback,
    )


def build_generated(family: str, seed: int, scale: int) -> Program:
    """Build one generated kernel — pure in ``(family, seed, scale)``."""
    params = sample_params(family, seed)
    builder = KernelBuilder(generated_name(family, seed), seed=seed)
    items = max(2, scale // params.per_item)
    _EMITTERS[family](builder, params, items)
    builder.set_meta(
        model=f"generated {family} loop nest",
        family=family,
        items=items,
        params=repr(params),
        grammar=GRAMMAR_VERSION,
    )
    return builder.build()


# -- family emitters ----------------------------------------------------------


def _carried_fp(
    builder: KernelBuilder,
    p: GenParams,
    accs: list,
    item: int,
    loaded: list,
    chain_tag: str = "chain",
):
    """One iteration's FP work, shared by the streaming-shaped families.

    Starts the serial chain from the accumulator carried
    ``dep_distance`` iterations back (or the first load, first time
    round), emits ``chain_depth`` dependent adds plus ``parallel_fp``
    independent multiplies, and rotates the accumulator ring. This is
    the single implementation governing the carried-dependence
    semantics of every family that uses it — and therefore their
    digests.
    """
    value = accs[item % p.dep_distance]
    if value is None:
        value = loaded[0]
    for depth in range(p.chain_depth):
        value = builder.fadd(value, loaded[depth % len(loaded)],
                             tag=chain_tag)
    if p.chain_depth:
        accs[item % p.dep_distance] = value
    for k in range(p.parallel_fp):
        builder.fmul(loaded[k % len(loaded)], loaded[0], tag="parfp")
    return value


def _feedback_convert(
    builder: KernelBuilder, p: GenParams, item: int, value, feedback
):
    """Periodic DU -> AU feedback: convert the FP result for addressing."""
    if p.feedback_period and (item + 1) % p.feedback_period == 0:
        return builder.cvt_f2i(value, tag="feedback")
    return feedback


def _emit_stream(builder: KernelBuilder, p: GenParams, items: int) -> None:
    """Streaming/strided: affine references, carried FP accumulators."""
    src = builder.array("src", items * p.loads * p.stride + 1)
    dst = builder.array("dst", max(1, items * max(1, p.stores)))
    gates = builder.array("gates", items) if p.gate_group else None
    accs: list = [None] * p.dep_distance
    iv = gate = feedback = None
    for item in range(items):
        if gates is not None and item % p.gate_group == 0:
            gate = builder.load(gates, item % gates.length, tag="gate")
        iv = builder.induction(iv, tag="item")
        deps = [iv]
        if gate is not None:
            deps.append(gate)
        if feedback is not None:
            deps.append(feedback)
        loaded = [
            builder.load(
                src, (item * p.loads + k) * p.stride % src.length,
                *deps, tag="stream",
            )
            for k in range(p.loads)
        ]
        value = _carried_fp(builder, p, accs, item, loaded)
        for k in range(p.stores):
            builder.store(
                dst, (item * p.stores + k) % dst.length,
                value if p.chain_depth else None, *deps, tag="out",
            )
        feedback = _feedback_convert(builder, p, item, value, feedback)


def _emit_gather(builder: KernelBuilder, p: GenParams, items: int) -> None:
    """Gather: every data address depends on an index-table self-load."""
    idx = builder.array("idx", items)
    src = builder.array("src", items * p.loads + 1)
    dst = builder.array("dst", max(1, items * max(1, p.stores)))
    # Concrete addresses are scattered (irregular locality); dependence
    # structure routes them through the index load either way.
    targets = [builder.rng.randrange(src.length) for _ in range(items)]
    accs: list = [None] * p.dep_distance
    iv = feedback = None
    for item in range(items):
        iv = builder.induction(iv, tag="item")
        deps = [iv]
        if feedback is not None:
            deps.append(feedback)
        pointer = builder.load(idx, item, *deps, tag="index")
        loaded = [
            builder.load(src, (targets[item] + k) % src.length,
                         iv, pointer, tag="gather")
            for k in range(p.loads)
        ]
        value = _carried_fp(builder, p, accs, item, loaded)
        for k in range(p.stores):
            builder.store(
                dst, (item * p.stores + k) % dst.length,
                value if p.chain_depth else None, iv, pointer, tag="out",
            )
        feedback = _feedback_convert(builder, p, item, value, feedback)


def _emit_chase(builder: KernelBuilder, p: GenParams, items: int) -> None:
    """Pointer chase: each address depends on the previous load's value."""
    nodes = builder.array("nodes", items)
    dst = builder.array("dst", items)
    order = list(range(items))
    builder.rng.shuffle(order)
    iv = pointer = None
    for item in range(items):
        iv = builder.induction(iv, tag="item")
        deps = [iv] if pointer is None else [iv, pointer]
        pointer = builder.load(nodes, order[item], *deps, tag="chase")
        value = pointer
        for _ in range(p.chain_depth):
            value = builder.fadd(value, pointer, tag="payload")
        for _ in range(p.stores):
            builder.store(dst, item, value if p.chain_depth else None,
                          iv, tag="out")


def _emit_stencil(builder: KernelBuilder, p: GenParams, items: int) -> None:
    """Stencil: multi-tap reads plus a carried RAW on the output array."""
    src = builder.array("src", items + p.taps)
    dst = builder.array("dst", items)
    iv = None
    for item in range(items):
        iv = builder.induction(iv, tag="item")
        loaded = [
            builder.load(src, item + t, iv, tag="tap")
            for t in range(p.taps)
        ]
        weighted = [builder.fmul(v, tag="weight") for v in loaded]
        value = builder.fsum_tree(weighted, tag="tree")
        if item >= p.dep_distance:
            # Reads the row stored dep_distance iterations ago: a
            # store -> load memory dependence, DYFESM-style.
            prev = builder.load(dst, item - p.dep_distance, iv,
                                tag="carried")
        else:
            prev = builder.load(src, item, iv, tag="carried")
        value = builder.fadd(value, prev, tag="carried")
        builder.store(dst, item, value, iv, tag="out")


def _emit_reduction(builder: KernelBuilder, p: GenParams, items: int) -> None:
    """Reduction: serial accumulation, optional DU -> AU feedback."""
    src = builder.array("src", items * p.loads + 1)
    dst = builder.array(
        "dst", max(1, items // max(1, p.store_period) + 1)
    )
    accs: list = [None] * p.dep_distance
    iv = feedback = None
    out = 0
    for item in range(items):
        iv = builder.induction(iv, tag="item")
        deps = [iv]
        if feedback is not None:
            deps.append(feedback)
        loaded = [
            builder.load(src, (item * p.loads + k) % src.length,
                         *deps, tag="stream")
            for k in range(p.loads)
        ]
        value = _carried_fp(builder, p, accs, item, loaded,
                            chain_tag="acc")
        if p.store_period and (item + 1) % p.store_period == 0:
            builder.store(dst, out % dst.length, value, iv, tag="out")
            out += 1
        feedback = _feedback_convert(builder, p, item, value, feedback)


_EMITTERS = {
    "streaming": _emit_stream,
    "strided": _emit_stream,
    "gather": _emit_gather,
    "chase": _emit_chase,
    "stencil": _emit_stencil,
    "reduction": _emit_reduction,
}


# -- registry resolution -------------------------------------------------------


def _resolve_generated(name: str) -> KernelSpec | None:
    """Kernel-registry resolver for ``gen:<family>:<seed>`` names.

    Resolution is pure name parsing; the band prediction needs a probe
    build plus a full static characterisation, so it is deferred until
    someone actually reads ``resolved_band`` (and then memoised on the
    spec). Process-pool workers, which resolve names only to *build*
    kernels, never pay for it.
    """
    parsed = parse_generated_name(name)
    if parsed is None:
        return None
    family, seed = parsed

    def _probe_band() -> str:
        from .characterize import characterize

        return characterize(
            build_generated(family, seed, _PROBE_SCALE)
        ).predicted_band

    def _build(scale: int, s: int) -> Program:
        if s != seed:
            # The name *is* the identity: silently building a different
            # seed would return a program contradicting the name.
            raise KernelError(
                f"kernel {name!r} pins seed {seed}; "
                f"cannot build it with seed {s}"
            )
        return build_generated(family, seed, scale)

    return KernelSpec(
        name=name,
        title=f"generated {family} loop nest (grammar v{GRAMMAR_VERSION})",
        description=f"sampled from the {family} access-pattern family "
        f"with seed {seed}",
        band=_probe_band,
        build=_build,
        default_seed=seed,
    )


register_resolver(_resolve_generated)
