"""Static workload characterisation: what a trace looks like *before*
simulation.

:func:`characterize` reduces a program to the structural quantities
the paper's experiments turn out to depend on — the instruction mix,
the inter-instruction dependence-distance histogram, the density of
DU -> AU crossings (loss-of-decoupling events) and AU self-loads, and
the depth of address-coupled load chains — and predicts which of the
paper's latency-hiding bands the program should land in.

The prediction is a documented heuristic over three quantities:

* **the dataflow LHE bound** (``dataflow_lhe_bound``): the ratio of
  execution-time lower bounds at md=0 and md=60, where each bound is
  ``max(critical path, instructions / combined issue width)`` — a
  machine is limited by its issue bandwidth or by the dependence
  structure, whichever bites. No machine can hide more latency than
  this ratio allows, so it upper-bounds the Table-1 LHE at an
  unlimited window and catches every *memory-carried* serialisation —
  pointer chases, carried store -> load chains — whatever shape it
  takes, while leaving throughput-bound programs (whose critical path
  is short but wide) correctly classified as hideable.
* **crossing density** (``lod_rate``): DU -> AU crossings per thousand
  instructions. Each crossing stalls the address unit behind the data
  unit, which is exactly what Table 1's *poorly effective* programs
  (TRACK) do at high density. Crossings hurt real machines well below
  the density at which they dominate the critical path, so they get
  their own thresholds.
* **address-coupled load chains** (``load_chain_fraction``): the
  longest chain of loads linked through address computation, relative
  to the number of loads. A pointer chase has a chain as long as the
  trace — no window, however large, can hide memory latency the
  address unit itself is serialised on. Gathers (chains of depth 2)
  and descriptor gating (depth 2, sparse) are cheap by the same
  measure, matching their *highly effective* classification.

The predicted band is the **worse** of the bound's band and the
density rules' band.

Corpus manifests persist the profile per kernel; the generalization
study compares the prediction against the measured band on both
machines.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..config import DEFAULT_MEMORY_DIFFERENTIAL
from ..ir import OpClass, Program
from ..metrics import classify_band
from ..partition import analyze_decoupling

__all__ = ["WorkloadProfile", "characterize"]

#: Band severity order, worst first.
_BAND_ORDER = ("poor", "moderate", "high")

#: The paper's combined issue width: the throughput floor of the
#: execution-time bound behind ``dataflow_lhe_bound``.
_ISSUE_WIDTH = 9

#: lod_rate at or above which hiding is predicted to collapse.
_POOR_LOD_RATE = 5.0
#: lod_rate at or above which hiding is predicted to degrade.
_MODERATE_LOD_RATE = 0.5
#: Longest address-coupled load chain / loads: chase detection.
_POOR_LOAD_CHAIN = 0.10
_MODERATE_LOAD_CHAIN = 0.02


@dataclass(frozen=True)
class WorkloadProfile:
    """Static structural profile of one program.

    Attributes:
        name: program name.
        total: architectural instruction count.
        int_fraction / fp_fraction / load_fraction / store_fraction:
            instruction mix.
        dep_distance_hist: dependence-distance histogram as
            ``(bucket, count)`` pairs; each bucket is a power-of-two
            lower bound (distance ``d`` lands in ``2**floor(log2 d)``).
        mean_dep_distance: mean distance over all dependence edges.
        lod_rate: DU -> AU crossings per thousand instructions.
        self_load_rate: AU self-loads per thousand instructions.
        load_chain_fraction: longest chain of loads coupled through
            address computation, divided by the load count.
        dataflow_ilp: instructions / dataflow critical path at md=0 —
            the parallelism an infinite machine could extract.
        dataflow_lhe_bound: ratio of execution-time lower bounds
            (``max(critical path, instructions / issue width)``) at
            md=0 and the default differential — the dependence
            structure's upper bound on Table-1 LHE at an unlimited
            window.
    """

    name: str
    total: int
    int_fraction: float
    fp_fraction: float
    load_fraction: float
    store_fraction: float
    dep_distance_hist: tuple[tuple[int, int], ...]
    mean_dep_distance: float
    lod_rate: float
    self_load_rate: float
    load_chain_fraction: float
    dataflow_ilp: float
    dataflow_lhe_bound: float

    @property
    def predicted_band(self) -> str:
        """Predicted latency-hiding band ("high"/"moderate"/"poor")."""
        if (self.lod_rate >= _POOR_LOD_RATE
                or self.load_chain_fraction >= _POOR_LOAD_CHAIN):
            density = "poor"
        elif (self.lod_rate >= _MODERATE_LOD_RATE
                or self.load_chain_fraction >= _MODERATE_LOAD_CHAIN):
            density = "moderate"
        else:
            density = "high"
        bound = classify_band(min(1.0, self.dataflow_lhe_bound))
        return min(density, bound, key=_BAND_ORDER.index)

    @property
    def memory_fraction(self) -> float:
        return self.load_fraction + self.store_fraction

    def to_dict(self) -> dict:
        """Plain-dict form (JSON/TOML compatible) including the band."""
        doc = asdict(self)
        doc["dep_distance_hist"] = [list(row) for row in
                                    self.dep_distance_hist]
        doc["predicted_band"] = self.predicted_band
        return doc


def _load_chain_depth(program: Program) -> int:
    """Longest chain of loads coupled through address computation.

    Chain depth propagates through integer ops and load address
    operands only; FP operations and stores break the chain (a value
    that detours through the data unit is a crossing, counted by
    ``lod_rate`` instead).
    """
    depth = [0] * len(program)
    deepest = 0
    for inst in program:
        if inst.op_class is OpClass.INT:
            d = 0
            for src in inst.srcs:
                if depth[src] > d:
                    d = depth[src]
            depth[inst.index] = d
        elif inst.op_class is OpClass.LOAD:
            base = depth[inst.addr_src] if inst.addr_src is not None else 0
            depth[inst.index] = base + 1
            if depth[inst.index] > deepest:
                deepest = depth[inst.index]
    return deepest


def characterize(program: Program) -> WorkloadProfile:
    """Compute the static profile of one program."""
    stats = program.stats
    total = max(1, stats.total)

    buckets: dict[int, int] = {}
    edges = 0
    distance_sum = 0
    for inst in program:
        for dep in inst.all_deps():
            distance = inst.index - dep
            bucket = 1 << (distance.bit_length() - 1)
            buckets[bucket] = buckets.get(bucket, 0) + 1
            edges += 1
            distance_sum += distance

    report = analyze_decoupling(program)
    chain = _load_chain_depth(program)
    critical = program.critical_path(0)
    critical_md = program.critical_path(DEFAULT_MEMORY_DIFFERENTIAL)
    issue_floor = stats.total / _ISSUE_WIDTH
    bound_0 = max(float(critical), issue_floor)
    bound_md = max(float(critical_md), issue_floor)

    return WorkloadProfile(
        name=program.name,
        total=stats.total,
        int_fraction=stats.int_ops / total,
        fp_fraction=stats.fp_ops / total,
        load_fraction=stats.loads / total,
        store_fraction=stats.stores / total,
        dep_distance_hist=tuple(sorted(buckets.items())),
        mean_dep_distance=distance_sum / edges if edges else 0.0,
        lod_rate=report.lod_rate,
        self_load_rate=1000.0 * report.self_loads / total,
        load_chain_fraction=chain / max(1, stats.loads),
        dataflow_ilp=stats.total / critical if critical else 0.0,
        dataflow_lhe_bound=bound_0 / bound_md if bound_md else 1.0,
    )
