"""Paper metrics: speedup, LHE, equivalent window ratio, ESW."""

from .esw import EswStats, esw_stats
from .ewr import (
    DEFAULT_MAX_WINDOW,
    EwrPoint,
    equivalent_window_ratio,
    find_equivalent_window,
)
from .lhe import LHE_BANDS, LhePoint, classify_band, lhe
from .speedup import SpeedupPoint, speedup

__all__ = [
    "DEFAULT_MAX_WINDOW",
    "EswStats",
    "EwrPoint",
    "LHE_BANDS",
    "LhePoint",
    "SpeedupPoint",
    "classify_band",
    "equivalent_window_ratio",
    "esw_stats",
    "find_equivalent_window",
    "lhe",
    "speedup",
]
