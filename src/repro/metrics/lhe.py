"""Latency-hiding effectiveness (LHE).

``LHE = T_perfect / T_actual``, where ``T_actual`` is the machine's
execution time at the memory differential under study and
``T_perfect`` is the execution time of the same machine with perfect
latency hiding — every memory access perceiving a single-cycle
latency, i.e. the machine re-run with a zero differential. An LHE of
1.0 means the differential is completely hidden.

The paper's Table 1 groups the seven programs into *highly* (roughly
0.85 and above), *moderately* (0.45-0.85) and *poorly* (below 0.45)
effective bands at an unlimited window; the precise thresholds are not
legible in the source text, so the boundaries here are the documented
reproduction convention (see README.md, documented substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MetricError

__all__ = ["LHE_BANDS", "LhePoint", "lhe", "classify_band"]

#: (lower-inclusive bound, band name), highest first.
LHE_BANDS = ((0.85, "high"), (0.45, "moderate"), (0.0, "poor"))


@dataclass(frozen=True)
class LhePoint:
    """One latency-hiding-effectiveness measurement."""

    program: str
    machine: str
    window: int | None  # None means unlimited
    memory_differential: int
    perfect_cycles: int
    actual_cycles: int

    @property
    def lhe(self) -> float:
        return lhe(self.perfect_cycles, self.actual_cycles)

    @property
    def band(self) -> str:
        return classify_band(self.lhe)


#: Largest fraction by which the differential run may legitimately
#: beat the zero-differential run. Greedy oldest-first issue under a
#: width limit is not monotone in latencies (Graham's scheduling
#: anomalies): raising the memory latency can reorder issue so the
#: whole program finishes slightly *sooner*. Every engine agrees on
#: such cases bit-for-bit (the differential fuzzer holds them to each
#: other), so small violations are a property of the modeled machine,
#: not a bug; anything past this margin still fails loudly.
_ANOMALY_MARGIN = 0.05


def lhe(perfect_cycles: int, actual_cycles: int) -> float:
    """Latency-hiding effectiveness ratio, clamped to 1.0.

    ``perfect_cycles`` is a lower bound only for latency-monotone
    schedulers; width-limited greedy issue is not one, so a run at the
    study differential may beat the zero-differential run by a small
    scheduling-anomaly margin. Such points hide the differential
    completely and report an LHE of exactly 1.0.
    """
    if perfect_cycles <= 0:
        raise MetricError(f"non-positive perfect time {perfect_cycles}")
    if actual_cycles <= 0:
        raise MetricError(f"non-positive actual time {actual_cycles}")
    if actual_cycles < perfect_cycles:
        if perfect_cycles - actual_cycles > _ANOMALY_MARGIN * perfect_cycles:
            # Too large for a scheduling anomaly: a simulator bug.
            raise MetricError(
                f"actual time {actual_cycles} beats perfect time "
                f"{perfect_cycles} by more than the "
                f"{_ANOMALY_MARGIN:.0%} scheduling-anomaly margin"
            )
        return 1.0
    return perfect_cycles / actual_cycles


def classify_band(value: float) -> str:
    """Map an LHE value to the paper's effectiveness band."""
    if not 0.0 <= value <= 1.0:
        raise MetricError(f"LHE must be in [0, 1], got {value}")
    for threshold, band in LHE_BANDS:
        if value >= threshold:
            return band
    raise AssertionError("unreachable: bands cover [0, 1]")
