"""Speedup: execution time of the serial reference over the machine.

The paper's figures 4-6 plot speedup against window size for both
machines at memory differentials of 0 and 60 cycles. The reference is
the non-overlapped serial machine *at the same memory differential*,
so large differentials produce large speedups (the reference pays the
full latency on every access while the machines hide it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MetricError

__all__ = ["SpeedupPoint", "speedup"]


@dataclass(frozen=True)
class SpeedupPoint:
    """One point of a speedup-versus-window curve."""

    program: str
    machine: str
    window: int
    memory_differential: int
    machine_cycles: int
    serial_cycles: int

    @property
    def speedup(self) -> float:
        if self.machine_cycles <= 0:
            raise MetricError(
                f"non-positive machine time {self.machine_cycles}"
            )
        return self.serial_cycles / self.machine_cycles


def speedup(serial_cycles: int, machine_cycles: int) -> float:
    """Plain ratio helper with input validation."""
    if serial_cycles <= 0:
        raise MetricError(f"non-positive serial time {serial_cycles}")
    if machine_cycles <= 0:
        raise MetricError(f"non-positive machine time {machine_cycles}")
    return serial_cycles / machine_cycles
