"""Effective single window (ESW): paper §3.

The DM's dynamic slippage means the span of in-flight work — from the
oldest not-yet-issued DU instruction to the youngest dispatched AU
instruction — can exceed the sum of the two physical windows. The ESW
is that span measured in architectural instructions: the single window
an equivalent one-window machine would need to buffer the same work.
The engine samples it every active cycle when ``probe_esw`` is set;
this module packages the samples into the statistic the paper
discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MetricError
from ..machines.engine import SimulationResult

__all__ = ["EswStats", "esw_stats"]


@dataclass(frozen=True)
class EswStats:
    """Effective-single-window statistics of one DM run.

    Attributes:
        peak: largest ESW observed (instructions).
        mean: time-weighted mean ESW.
        physical_windows: sum of the AU and DU window sizes.
    """

    program: str
    memory_differential: int
    peak: int
    mean: float
    physical_windows: int

    @property
    def amplification(self) -> float:
        """How much larger the mean ESW is than the physical windows.

        Values above 1.0 are the paper's point: slippage lets two small
        windows behave like one much larger window.
        """
        if self.physical_windows <= 0:
            raise MetricError("physical window sum must be positive")
        return self.mean / self.physical_windows


def esw_stats(
    result: SimulationResult,
    memory_differential: int,
    physical_windows: int,
) -> EswStats:
    """Package a probed simulation result into ESW statistics."""
    if result.esw_peak == 0 and result.esw_mean == 0.0:
        raise MetricError(
            "simulation was not run with probe_esw=True (no ESW samples)"
        )
    return EswStats(
        program=result.name,
        memory_differential=memory_differential,
        peak=result.esw_peak,
        mean=result.esw_mean,
        physical_windows=physical_windows,
    )
