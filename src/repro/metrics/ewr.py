"""Equivalent window ratio (EWR): figures 7-9 of the paper.

For a DM running with window size ``W``, the equivalent window ratio
is ``W' / W`` where ``W'`` is the SWSM window size that yields the same
execution time. The paper derives it by projecting from the DM curve
onto the SWSM curve; we compute it by searching the SWSM's
window-time function directly (exponential bracketing plus bisection,
with a final linear interpolation between the bracketing integer
windows so the ratio varies smoothly).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..errors import ProjectionError

__all__ = ["EwrPoint", "find_equivalent_window", "equivalent_window_ratio"]

#: Give up if the SWSM still has not matched the DM at this window size.
DEFAULT_MAX_WINDOW = 1 << 15


@dataclass(frozen=True)
class EwrPoint:
    """One point of an equivalent-window-ratio curve."""

    program: str
    dm_window: int
    memory_differential: int
    dm_cycles: int
    equivalent_swsm_window: float

    @property
    def ratio(self) -> float:
        return self.equivalent_swsm_window / self.dm_window


def find_equivalent_window(
    evaluate: Callable[[int], int],
    target_cycles: int,
    start: int = 4,
    max_window: int = DEFAULT_MAX_WINDOW,
) -> float:
    """Smallest (interpolated) window whose time is <= ``target_cycles``.

    Args:
        evaluate: maps an SWSM window size to its execution time in
            cycles. Expected to be non-increasing; small local
            non-monotonicities only shift the crossing by a window or
            two. Cache inside ``evaluate`` if calls are expensive.
        target_cycles: the DM execution time to match.
        start: initial probe window.
        max_window: raise :class:`ProjectionError` if even this window
            cannot match the target.
    """
    if target_cycles <= 0:
        raise ProjectionError(f"non-positive target time {target_cycles}")
    if start < 1:
        raise ProjectionError(f"start window must be >= 1, got {start}")

    # Bracket: grow until the target is met, shrink while it is met.
    high = start
    time_high = evaluate(high)
    while time_high > target_cycles:
        if high >= max_window:
            raise ProjectionError(
                f"SWSM cannot match {target_cycles} cycles even with a "
                f"window of {high}"
            )
        high = min(high * 2, max_window)
        time_high = evaluate(high)
    low = high
    time_low = time_high
    while low > 1:
        candidate = low // 2
        time_candidate = evaluate(candidate)
        if time_candidate <= target_cycles:
            low, time_low = candidate, time_candidate
        else:
            break
    if low == 1 and time_low <= target_cycles:
        return 1.0

    # Invariant: evaluate(low..?) — low currently meets the target and
    # low//2 (if any) does not. Bisect the integer crossing between
    # the last failing window and ``low``.
    fail = low // 2
    time_fail = evaluate(fail)
    success, time_success = low, time_low
    while success - fail > 1:
        middle = (success + fail) // 2
        time_middle = evaluate(middle)
        if time_middle <= target_cycles:
            success, time_success = middle, time_middle
        else:
            fail, time_fail = middle, time_middle

    if time_fail == time_success:
        return float(success)
    fraction = (time_fail - target_cycles) / (time_fail - time_success)
    fraction = min(max(fraction, 0.0), 1.0)
    return fail + fraction * (success - fail)


def equivalent_window_ratio(
    evaluate: Callable[[int], int],
    dm_window: int,
    dm_cycles: int,
    max_window: int = DEFAULT_MAX_WINDOW,
) -> float:
    """The paper's EWR for one DM operating point."""
    if dm_window < 1:
        raise ProjectionError(f"DM window must be >= 1, got {dm_window}")
    equivalent = find_equivalent_window(
        evaluate, dm_cycles, start=max(4, dm_window), max_window=max_window
    )
    return equivalent / dm_window
