"""IR-to-IR transforms.

Currently one transform: *code expansion*, modelling the instruction
overhead of the software techniques the paper assumes (aggressive loop
unrolling and software pipelining add bookkeeping instructions). The
paper's future-work section proposes studying how code expansion
affects the two machines; the expansion transform plus the ablation
benchmark implement that study.
"""

from __future__ import annotations

from ..errors import IRValidationError
from .instruction import Instruction
from .program import Program
from .types import Opcode

__all__ = ["expand_code"]


def expand_code(
    program: Program, fraction: float, chain: bool = True
) -> Program:
    """Insert bookkeeping integer instructions, evenly spread.

    Args:
        program: source trace.
        fraction: overhead as a fraction of the original instruction
            count (0.25 inserts one bookkeeping op per four original
            instructions).
        chain: if true, each inserted op depends on the previously
            inserted one (an unrolled induction/bookkeeping chain);
            otherwise inserted ops are fully independent.

    Returns:
        A new program named ``<name>+exp<percent>`` with all original
        dependencies re-indexed around the insertions.
    """
    if not 0.0 <= fraction <= 4.0:
        raise IRValidationError(
            f"expansion fraction must be in [0, 4], got {fraction}"
        )
    if fraction == 0.0:
        return program

    total_inserted = round(len(program) * fraction)
    if total_inserted == 0:
        return program

    # Positions (in original-index space) after which to insert.
    step = len(program) / total_inserted
    insert_after = [min(len(program) - 1, int((k + 1) * step) - 1)
                    for k in range(total_inserted)]

    new_instructions: list[Instruction] = []
    index_map: dict[int, int] = {}
    previous_inserted: int | None = None
    insertion_cursor = 0

    def remap(values: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(index_map[v] for v in values)

    for inst in program:
        new_index = len(new_instructions)
        index_map[inst.index] = new_index
        new_instructions.append(
            Instruction(
                index=new_index,
                opcode=inst.opcode,
                srcs=remap(inst.srcs),
                addr_src=None if inst.addr_src is None
                else index_map[inst.addr_src],
                addr=inst.addr,
                mem_dep=None if inst.mem_dep is None
                else index_map[inst.mem_dep],
                tag=inst.tag,
            )
        )
        while (
            insertion_cursor < total_inserted
            and insert_after[insertion_cursor] == inst.index
        ):
            overhead_index = len(new_instructions)
            srcs: tuple[int, ...] = ()
            if chain and previous_inserted is not None:
                srcs = (previous_inserted,)
            new_instructions.append(
                Instruction(
                    index=overhead_index,
                    opcode=Opcode.IADD,
                    srcs=srcs,
                    tag="expansion",
                )
            )
            previous_inserted = overhead_index
            insertion_cursor += 1

    expanded = Program(
        f"{program.name}+exp{round(fraction * 100)}",
        new_instructions,
        meta={**program.meta, "expansion_fraction": fraction},
    )
    expanded.validate()
    return expanded
