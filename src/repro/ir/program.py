"""The :class:`Program` container: an architectural instruction trace.

A program is an immutable (by convention) list of instructions in
program order together with summary statistics and dependence-graph
helpers used by the partitioner, the machine models and the analytic
sanity checks in the test-suite.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from functools import cached_property

from ..config import DEFAULT_LATENCIES, LatencyModel
from ..errors import IRValidationError
from .instruction import Instruction
from .types import OpClass, opcode_latency

__all__ = ["Program", "ProgramStats"]


@dataclass(frozen=True)
class ProgramStats:
    """Instruction-mix statistics for a program."""

    total: int
    int_ops: int
    fp_ops: int
    loads: int
    stores: int

    @property
    def memory_ops(self) -> int:
        return self.loads + self.stores

    @property
    def memory_fraction(self) -> float:
        return self.memory_ops / self.total if self.total else 0.0

    @property
    def fp_fraction(self) -> float:
        return self.fp_ops / self.total if self.total else 0.0


class Program(Sequence[Instruction]):
    """An architectural trace in program order.

    Args:
        name: identifies the workload (e.g. ``"flo52q"``).
        instructions: trace in program order; instruction ``i`` must
            have ``index == i`` and only reference earlier instructions.
        meta: free-form metadata recorded by the generator (parameters,
            seed, scale) so a result is fully reproducible.
    """

    def __init__(
        self,
        name: str,
        instructions: Sequence[Instruction],
        meta: dict[str, object] | None = None,
    ) -> None:
        self.name = name
        self.instructions = list(instructions)
        self.meta: dict[str, object] = dict(meta or {})

    # -- Sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, item):  # type: ignore[override]
        return self.instructions[item]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self)} instructions)"

    # -- statistics ---------------------------------------------------------

    @cached_property
    def stats(self) -> ProgramStats:
        counts = {cls: 0 for cls in OpClass}
        for inst in self.instructions:
            counts[inst.op_class] += 1
        return ProgramStats(
            total=len(self.instructions),
            int_ops=counts[OpClass.INT],
            fp_ops=counts[OpClass.FP],
            loads=counts[OpClass.LOAD],
            stores=counts[OpClass.STORE],
        )

    def digest(self) -> str:
        """Stable SHA-256 content address of the trace.

        Covers the name and every instruction field (opcode, operands,
        addresses, memory-ordering edges, tags) but not ``meta``, so two
        builds are equal exactly when they execute identically. Corpus
        manifests record this digest, and the registry purity tests use
        it to enforce the determinism contract of
        :mod:`repro.kernels.base`.
        """
        hasher = hashlib.sha256()
        hasher.update(self.name.encode("utf-8"))
        for inst in self.instructions:
            row = (
                inst.index, inst.opcode.value, inst.srcs, inst.addr_src,
                inst.addr, inst.mem_dep, inst.tag,
            )
            hasher.update(repr(row).encode("utf-8"))
        return hasher.hexdigest()

    # -- dependence helpers ---------------------------------------------------

    @cached_property
    def consumers(self) -> list[list[int]]:
        """For each instruction, the indices of instructions that use it.

        Includes memory-ordering (store -> load) edges.
        """
        out: list[list[int]] = [[] for _ in self.instructions]
        for inst in self.instructions:
            for dep in inst.all_deps():
                out[dep].append(inst.index)
        return out

    def validate(self) -> None:
        """Raise :class:`IRValidationError` unless the trace is well formed."""
        for i, inst in enumerate(self.instructions):
            if inst.index != i:
                raise IRValidationError(
                    f"instruction at position {i} has index {inst.index}"
                )
            for dep in inst.all_deps():
                if not 0 <= dep < i:
                    raise IRValidationError(
                        f"instruction {i} depends on {dep}, which is not an "
                        "earlier instruction"
                    )
            if inst.is_memory and inst.addr is None:
                raise IRValidationError(f"memory instruction {i} has no address")
            if not inst.is_memory and inst.addr is not None:
                raise IRValidationError(
                    f"non-memory instruction {i} has an address"
                )
            if not inst.is_memory and inst.addr_src is not None:
                raise IRValidationError(
                    f"non-memory instruction {i} has an address dependency"
                )
            if inst.mem_dep is not None:
                dep_inst = self.instructions[inst.mem_dep]
                if dep_inst.op_class is not OpClass.STORE:
                    raise IRValidationError(
                        f"mem_dep of instruction {i} is not a store"
                    )

    # -- analytic timing bounds ----------------------------------------------

    def critical_path(
        self,
        memory_differential: int,
        latencies: LatencyModel = DEFAULT_LATENCIES,
    ) -> int:
        """Dataflow critical-path length in cycles.

        Uses the architectural latencies with loads costing
        ``mem_base + md`` cycles. This is a lower bound on any machine's
        execution time with these latencies and infinite resources, and
        is used by tests and by the analytic models in the docs.
        """
        if memory_differential < 0:
            raise IRValidationError("memory differential must be >= 0")
        finish = [0] * len(self.instructions)
        longest = 0
        for inst in self.instructions:
            start = 0
            for dep in inst.all_deps():
                if finish[dep] > start:
                    start = finish[dep]
            cost = self._serial_cost(inst, memory_differential, latencies)
            finish[inst.index] = start + cost
            if finish[inst.index] > longest:
                longest = finish[inst.index]
        return longest

    def serial_time(
        self,
        memory_differential: int,
        latencies: LatencyModel = DEFAULT_LATENCIES,
    ) -> int:
        """Execution time of the non-overlapped serial reference machine.

        Each instruction costs its full latency and the next starts only
        when it completes; loads cost ``mem_base + md``. This is the
        denominator of the paper's speedup metric.
        """
        if memory_differential < 0:
            raise IRValidationError("memory differential must be >= 0")
        return sum(
            self._serial_cost(inst, memory_differential, latencies)
            for inst in self.instructions
        )

    @staticmethod
    def _serial_cost(
        inst: Instruction, memory_differential: int, latencies: LatencyModel
    ) -> int:
        if inst.op_class is OpClass.LOAD:
            return latencies.mem_base + memory_differential
        if inst.op_class is OpClass.STORE:
            return latencies.store
        return opcode_latency(inst.opcode, latencies)
