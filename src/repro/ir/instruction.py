"""Architectural instructions and SSA values.

A program trace is a list of :class:`Instruction` in program order.
Every instruction produces at most one value, identified by the
instruction's position in the trace, so a :class:`Value` is a thin
wrapper around that index. Renaming is therefore perfect by
construction (the paper assumes false dependencies are removed).

Memory operations carry their *address dependency* in a dedicated slot
(``addr_src``) rather than mixed into ``srcs``: the access/execute
partitioner must know which operands feed address computation (those
slices run on the address unit) and which carry data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import OPCODE_CLASS, OpClass, Opcode

__all__ = ["Value", "Instruction"]


@dataclass(frozen=True)
class Value:
    """An SSA value: the result of the instruction at ``index``."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"value index must be >= 0, got {self.index}")


@dataclass(frozen=True)
class Instruction:
    """One architectural instruction in a trace.

    Attributes:
        index: position in the trace; also the id of the produced value.
        opcode: architectural opcode.
        srcs: indices of producing instructions for true data
            dependencies (for stores, the stored value). Immediates and
            loop-invariant constants are not represented — they are
            always ready.
        addr_src: index of the instruction producing the effective
            address, for memory operations with a computed address;
            ``None`` for non-memory operations and for references whose
            address is a compile-time constant.
        addr: concrete effective address for memory operations; ``None``
            otherwise. Addresses are known at trace-generation time,
            which models the paper's perfect dependence analysis.
        mem_dep: index of the most recent store to ``addr`` that this
            memory operation must follow, or ``None``. This is how
            perfect memory disambiguation is encoded in the trace.
        tag: free-form annotation (kernel region name) for analysis.
    """

    index: int
    opcode: Opcode
    srcs: tuple[int, ...] = ()
    addr_src: int | None = None
    addr: int | None = None
    mem_dep: int | None = None
    tag: str = ""
    _op_class: OpClass = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_op_class", OPCODE_CLASS[self.opcode])

    @property
    def op_class(self) -> OpClass:
        return self._op_class

    @property
    def is_memory(self) -> bool:
        return self._op_class.is_memory

    @property
    def value(self) -> Value:
        """The SSA value this instruction produces."""
        return Value(self.index)

    def all_deps(self) -> tuple[int, ...]:
        """Every dependency: data, address and memory-ordering edges."""
        deps = self.srcs
        if self.addr_src is not None:
            deps = deps + (self.addr_src,)
        if self.mem_dep is not None:
            deps = deps + (self.mem_dep,)
        return deps

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"%{self.index} = {self.opcode.value}"]
        if self.srcs:
            parts.append(", ".join(f"%{s}" for s in self.srcs))
        if self.addr_src is not None:
            parts.append(f"addr=%{self.addr_src}")
        if self.addr is not None:
            parts.append(f"[@{self.addr}]")
        if self.mem_dep is not None:
            parts.append(f"(after %{self.mem_dep})")
        return " ".join(parts)
