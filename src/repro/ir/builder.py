"""The kernel-builder DSL: a small emission API for instruction traces.

Kernels are written as ordinary Python functions that drive a
:class:`KernelBuilder`. Loops are unrolled at build time — the paper
assumes loop-closing branches have been removed by unrolling and
branch prediction, so the trace contains no control flow. Values flow
through Python variables, which gives perfect renaming for free.

Example::

    b = KernelBuilder("daxpy")
    x = b.array("x", n)
    y = b.array("y", n)
    i = None
    for k in range(n):
        i = b.induction(i)
        xv = b.load(x, k, i)
        yv = b.load(y, k, i)
        b.store(y, k, b.fma(xv, yv), i)
    program = b.build()

Every array reference costs one integer address instruction (the
address add) plus the memory operation itself, which is the access
workload the paper's address unit executes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import BuilderError
from .instruction import Instruction, Value
from .program import Program
from .types import OPCODE_CLASS, OpClass, Opcode

__all__ = ["ArrayHandle", "KernelBuilder"]

#: Arrays are laid out on aligned slabs so addresses never collide.
_ARRAY_ALIGNMENT = 1 << 20


@dataclass(frozen=True)
class ArrayHandle:
    """A named array with a fixed base address in the flat address space."""

    name: str
    base: int
    length: int

    def element(self, index: int) -> int:
        """Concrete address of ``self[index]`` (bounds-checked)."""
        if not 0 <= index < self.length:
            raise BuilderError(
                f"index {index} out of bounds for array {self.name!r} "
                f"of length {self.length}"
            )
        return self.base + index


class KernelBuilder:
    """Builds an architectural :class:`~repro.ir.program.Program`.

    Args:
        name: workload name recorded on the resulting program.
        seed: seed for the builder's private RNG (used by kernels for
            synthetic index arrays and workload shuffles), recorded in
            the program metadata so traces are reproducible.
    """

    def __init__(self, name: str, seed: int = 0) -> None:
        self.name = name
        self.seed = seed
        self.rng = random.Random(seed)
        self._instructions: list[Instruction] = []
        self._arrays: dict[str, ArrayHandle] = {}
        self._addr_of: dict[int, int] = {}
        self._last_store: dict[int, int] = {}
        self._next_base = _ARRAY_ALIGNMENT
        self._meta: dict[str, object] = {}

    # -- arrays --------------------------------------------------------------

    def array(self, name: str, length: int) -> ArrayHandle:
        """Declare an array; each array lives on its own address slab."""
        if length < 1:
            raise BuilderError(f"array {name!r} must have positive length")
        if name in self._arrays:
            raise BuilderError(f"array {name!r} already declared")
        slabs = (length + _ARRAY_ALIGNMENT - 1) // _ARRAY_ALIGNMENT
        handle = ArrayHandle(name=name, base=self._next_base, length=length)
        self._next_base += slabs * _ARRAY_ALIGNMENT
        self._arrays[name] = handle
        return handle

    # -- raw emission ----------------------------------------------------------

    def emit(
        self,
        opcode: Opcode,
        srcs: tuple[Value, ...] = (),
        addr_src: Value | None = None,
        addr: int | None = None,
        mem_dep: int | None = None,
        tag: str = "",
    ) -> Value:
        """Append one instruction; returns the value it produces."""
        index = len(self._instructions)
        for src in srcs:
            self._check_value(src)
        if addr_src is not None:
            self._check_value(addr_src)
        inst = Instruction(
            index=index,
            opcode=opcode,
            srcs=tuple(s.index for s in srcs),
            addr_src=None if addr_src is None else addr_src.index,
            addr=addr,
            mem_dep=mem_dep,
            tag=tag,
        )
        self._instructions.append(inst)
        return Value(index)

    def _check_value(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise BuilderError(f"expected a Value, got {value!r}")
        if value.index >= len(self._instructions):
            raise BuilderError(
                f"value %{value.index} does not exist yet "
                f"({len(self._instructions)} instructions emitted)"
            )

    # -- arithmetic ------------------------------------------------------------

    def _arith(self, opcode: Opcode, srcs: tuple[Value, ...], tag: str) -> Value:
        if OPCODE_CLASS[opcode].is_memory:
            raise BuilderError(f"{opcode.value} is not an arithmetic opcode")
        return self.emit(opcode, srcs=srcs, tag=tag)

    def iadd(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.IADD, srcs, tag)

    def isub(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.ISUB, srcs, tag)

    def imul(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.IMUL, srcs, tag)

    def iand(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.IAND, srcs, tag)

    def shift(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.SHIFT, srcs, tag)

    def cmp(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.CMP, srcs, tag)

    def select(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.SELECT, srcs, tag)

    def cvt_f2i(self, src: Value, tag: str = "") -> Value:
        """Float-to-int conversion: the bridge from data to address domain."""
        return self._arith(Opcode.CVT_F2I, (src,), tag)

    def cvt_i2f(self, src: Value, tag: str = "") -> Value:
        return self._arith(Opcode.CVT_I2F, (src,), tag)

    def fadd(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.FADD, srcs, tag)

    def fsub(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.FSUB, srcs, tag)

    def fmul(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.FMUL, srcs, tag)

    def fma(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.FMA, srcs, tag)

    def fdiv(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.FDIV, srcs, tag)

    def fsqrt(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.FSQRT, srcs, tag)

    def fneg(self, src: Value, tag: str = "") -> Value:
        return self._arith(Opcode.FNEG, (src,), tag)

    def fmax(self, *srcs: Value, tag: str = "") -> Value:
        return self._arith(Opcode.FMAX, srcs, tag)

    # -- induction and addressing ------------------------------------------------

    def induction(self, prev: Value | None, tag: str = "loop") -> Value:
        """Advance a loop induction variable (one integer add).

        Pass ``None`` on the first iteration (the initial value is an
        immediate); pass the previous returned value afterwards, which
        creates the one-cycle-per-iteration induction chain real
        unrolled code carries.
        """
        srcs = () if prev is None else (prev,)
        return self.iadd(*srcs, tag=tag)

    def address(
        self, array: ArrayHandle, index: int, *deps: Value, tag: str = ""
    ) -> Value:
        """Compute the address of ``array[index]`` (one integer add).

        ``deps`` are the values the address arithmetic consumes — the
        induction variable for affine references, a loaded index for
        indirect references, a converted data value for data-dependent
        references.
        """
        value = self.iadd(*deps, tag=tag or f"addr:{array.name}")
        self._addr_of[value.index] = array.element(index)
        return value

    def concrete_address(self, value: Value) -> int:
        """The concrete address carried by an address value."""
        try:
            return self._addr_of[value.index]
        except KeyError:
            raise BuilderError(
                f"value %{value.index} is not an address value"
            ) from None

    # -- memory ---------------------------------------------------------------

    def load_at(self, addr_value: Value, tag: str = "") -> Value:
        """Load through a previously computed address value."""
        addr = self.concrete_address(addr_value)
        return self.emit(
            Opcode.LOAD,
            addr_src=addr_value,
            addr=addr,
            mem_dep=self._last_store.get(addr),
            tag=tag,
        )

    def store_at(self, addr_value: Value, data: Value | None, tag: str = "") -> None:
        """Store ``data`` through a previously computed address value.

        ``data`` may be ``None`` for stores of immediates.
        """
        addr = self.concrete_address(addr_value)
        value = self.emit(
            Opcode.STORE,
            srcs=() if data is None else (data,),
            addr_src=addr_value,
            addr=addr,
            tag=tag,
        )
        self._last_store[addr] = value.index

    def load(
        self, array: ArrayHandle, index: int, *addr_deps: Value, tag: str = ""
    ) -> Value:
        """Address computation plus load of ``array[index]``."""
        addr_value = self.address(array, index, *addr_deps, tag=tag)
        return self.load_at(addr_value, tag=tag)

    def store(
        self,
        array: ArrayHandle,
        index: int,
        data: Value | None,
        *addr_deps: Value,
        tag: str = "",
    ) -> None:
        """Address computation plus store to ``array[index]``."""
        addr_value = self.address(array, index, *addr_deps, tag=tag)
        self.store_at(addr_value, data, tag=tag)

    # -- reductions ------------------------------------------------------------

    def fsum_chain(self, acc: Value | None, values: list[Value], tag: str = "") -> Value:
        """Serial floating-point accumulation (what 1990s compilers emit).

        The serial chain is a deliberate ILP limiter: each add waits for
        the previous one.
        """
        if acc is None and not values:
            raise BuilderError("fsum_chain needs an accumulator or values")
        for value in values:
            acc = self.fadd(acc, value, tag=tag) if acc is not None else value
        assert acc is not None
        return acc

    def fsum_tree(self, values: list[Value], tag: str = "") -> Value:
        """Balanced floating-point reduction tree (log depth)."""
        if not values:
            raise BuilderError("fsum_tree needs at least one value")
        level = list(values)
        while len(level) > 1:
            nxt = [
                self.fadd(level[k], level[k + 1], tag=tag)
                for k in range(0, len(level) - 1, 2)
            ]
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    # -- finishing --------------------------------------------------------------

    def set_meta(self, **meta: object) -> None:
        """Attach generator parameters to the resulting program."""
        self._meta.update(meta)

    def __len__(self) -> int:
        return len(self._instructions)

    def build(self, validate: bool = True) -> Program:
        """Freeze the trace into a :class:`Program`."""
        meta = {"seed": self.seed, **self._meta}
        program = Program(self.name, self._instructions, meta=meta)
        if validate:
            program.validate()
        return program
