"""Core IR enumerations: operation classes and opcodes.

The architectural IR describes a program trace *before* it is mapped to
either machine: integer/address arithmetic, floating-point arithmetic,
loads and stores. Machine-level operation kinds (load-issue, receive,
prefetch, access, copies between register files) appear only after
partitioning/lowering and live in :mod:`repro.partition.machine_program`.
"""

from __future__ import annotations

import enum

from ..config import LatencyModel
from ..errors import IRValidationError

__all__ = ["OpClass", "Opcode", "OPCODE_CLASS", "opcode_latency"]


class OpClass(enum.Enum):
    """Architectural operation classes."""

    INT = "int"
    FP = "fp"
    LOAD = "load"
    STORE = "store"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)


class Opcode(enum.Enum):
    """Architectural opcodes.

    Opcodes exist mainly for trace readability and latency selection;
    the simulators schedule on :class:`OpClass` plus latency.
    """

    # Integer / address arithmetic (1 cycle).
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IAND = "iand"
    IOR = "ior"
    SHIFT = "shift"
    CMP = "cmp"
    SELECT = "select"
    CVT_F2I = "cvt.f2i"

    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FMA = "fma"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FNEG = "fneg"
    FMAX = "fmax"
    CVT_I2F = "cvt.i2f"

    # Memory.
    LOAD = "load"
    STORE = "store"


OPCODE_CLASS: dict[Opcode, OpClass] = {
    Opcode.IADD: OpClass.INT,
    Opcode.ISUB: OpClass.INT,
    Opcode.IMUL: OpClass.INT,
    Opcode.IAND: OpClass.INT,
    Opcode.IOR: OpClass.INT,
    Opcode.SHIFT: OpClass.INT,
    Opcode.CMP: OpClass.INT,
    Opcode.SELECT: OpClass.INT,
    Opcode.CVT_F2I: OpClass.INT,
    Opcode.FADD: OpClass.FP,
    Opcode.FSUB: OpClass.FP,
    Opcode.FMUL: OpClass.FP,
    Opcode.FMA: OpClass.FP,
    Opcode.FDIV: OpClass.FP,
    Opcode.FSQRT: OpClass.FP,
    Opcode.FNEG: OpClass.FP,
    Opcode.FMAX: OpClass.FP,
    Opcode.CVT_I2F: OpClass.FP,
    Opcode.LOAD: OpClass.LOAD,
    Opcode.STORE: OpClass.STORE,
}

_LONG_FP = frozenset({Opcode.FDIV, Opcode.FSQRT})


def opcode_latency(opcode: Opcode, latencies: LatencyModel) -> int:
    """Execution latency of an architectural opcode.

    Memory opcodes have no single architectural latency (it depends on
    the machine and the memory differential), so asking for one is an
    error; the machine models compute memory timing themselves.
    """
    op_class = OPCODE_CLASS[opcode]
    if op_class is OpClass.INT:
        return latencies.int_op
    if op_class is OpClass.FP:
        return latencies.fp_div if opcode in _LONG_FP else latencies.fp_op
    raise IRValidationError(
        f"opcode {opcode.value!r} is a memory operation; its latency is "
        "machine-dependent"
    )
