"""Architectural IR: opcodes, instructions, programs, and the kernel DSL."""

from .builder import ArrayHandle, KernelBuilder
from .instruction import Instruction, Value
from .program import Program, ProgramStats
from .types import OPCODE_CLASS, OpClass, Opcode, opcode_latency

__all__ = [
    "ArrayHandle",
    "KernelBuilder",
    "Instruction",
    "Value",
    "Program",
    "ProgramStats",
    "OpClass",
    "Opcode",
    "OPCODE_CLASS",
    "opcode_latency",
]
