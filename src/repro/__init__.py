"""repro: Jones & Topham (MICRO-30, 1997) reproduced in Python.

A trace-driven microarchitecture study comparing data prefetching on an
access decoupled machine (DM) and a single-window out-of-order
superscalar machine (SWSM). See README.md for the quickstart, the
artefact map and the timing-semantics summary, and docs/api.md for the
declarative experiment API.

Quickstart::

    from repro import Session, run_speedup_figure

    session = Session(scale=12_000)
    figure = run_speedup_figure(session, "flo52q")
    print(figure.crossover_window(0))    # SWSM overtakes at md=0 ...
    print(figure.crossover_window(60))   # ... but never at md=60

Any grid over (kernel, machine, window, memory differential, ...) is a
declarative sweep — parallel and disk-cached::

    from repro import Sweep, Session

    session = Session(scale=12_000, cache_dir=".repro-cache", jobs=4)
    sweep = Sweep.grid(program=("mdg", "track"), machine=("dm", "swsm"),
                       window=(16, 64), memory_differential=(0, 60))
    for point, result in session.run(sweep):
        print(point.program, point.machine, result.cycles)
"""

from .api import (
    UNLIMITED,
    MemorySpec,
    Point,
    Session,
    Sweep,
    SweepResult,
    load_sweep,
)
from .config import (
    DEFAULT_LATENCIES,
    DEFAULT_MEMORY_DIFFERENTIAL,
    MEMORY_DIFFERENTIALS,
    DMConfig,
    LatencyModel,
    SWSMConfig,
    UnitConfig,
)
from .errors import (
    BuilderError,
    ConfigError,
    IRValidationError,
    KernelError,
    MetricError,
    PartitionError,
    ProjectionError,
    ReproError,
    SimulationDeadlockError,
    SimulationError,
)
from .experiments import (
    Lab,
    run_bypass_ablation,
    run_code_expansion_ablation,
    run_esw_study,
    run_ewr_figure,
    run_generalization_study,
    run_issue_split_ablation,
    run_memory_hierarchy_ablation,
    run_partition_ablation,
    run_speedup_figure,
    run_table1,
)
from .ir import Instruction, KernelBuilder, OpClass, Opcode, Program, Value
from .kernels import (
    PAPER_ORDER,
    SyntheticParams,
    build_kernel,
    build_synthetic_stream,
    get_kernel,
    list_kernels,
)
from .machines import (
    DecoupledMachine,
    MachineModel,
    SerialMachine,
    SimulationResult,
    SuperscalarMachine,
    get_machine,
    list_machines,
    register_machine,
)
from .memory import (
    BankedMemory,
    BypassBuffer,
    CacheMemory,
    FixedLatencyMemory,
    MemorySystem,
    StreamPrefetcher,
)
from .metrics import (
    classify_band,
    equivalent_window_ratio,
    find_equivalent_window,
    lhe,
    speedup,
)
from .partition import (
    MachineProgram,
    Unit,
    analyze_decoupling,
    compute_address_slice,
    lower_swsm,
    partition_dm,
)
from .report import ResultStore, StoredResult, build_report, write_site
from .workloads import (
    FAMILIES,
    Corpus,
    WorkloadProfile,
    build_generated,
    characterize,
    generate_corpus,
    generated_name,
    load_manifest,
    verify_corpus,
    write_manifest,
)

__version__ = "1.1.0"

__all__ = [
    "BankedMemory",
    "BuilderError",
    "BypassBuffer",
    "CacheMemory",
    "ConfigError",
    "Corpus",
    "DEFAULT_LATENCIES",
    "DEFAULT_MEMORY_DIFFERENTIAL",
    "DMConfig",
    "DecoupledMachine",
    "FAMILIES",
    "FixedLatencyMemory",
    "IRValidationError",
    "Instruction",
    "KernelBuilder",
    "KernelError",
    "Lab",
    "LatencyModel",
    "MEMORY_DIFFERENTIALS",
    "MachineModel",
    "MachineProgram",
    "MemorySpec",
    "MemorySystem",
    "MetricError",
    "OpClass",
    "Opcode",
    "PAPER_ORDER",
    "PartitionError",
    "Point",
    "Program",
    "ProjectionError",
    "ReproError",
    "ResultStore",
    "SWSMConfig",
    "SerialMachine",
    "Session",
    "SimulationDeadlockError",
    "SimulationError",
    "SimulationResult",
    "StoredResult",
    "StreamPrefetcher",
    "SuperscalarMachine",
    "Sweep",
    "SweepResult",
    "SyntheticParams",
    "UNLIMITED",
    "Unit",
    "UnitConfig",
    "Value",
    "WorkloadProfile",
    "analyze_decoupling",
    "build_generated",
    "build_kernel",
    "build_report",
    "build_synthetic_stream",
    "characterize",
    "classify_band",
    "compute_address_slice",
    "equivalent_window_ratio",
    "find_equivalent_window",
    "generate_corpus",
    "generated_name",
    "get_kernel",
    "get_machine",
    "lhe",
    "list_kernels",
    "list_machines",
    "load_manifest",
    "load_sweep",
    "lower_swsm",
    "partition_dm",
    "register_machine",
    "run_bypass_ablation",
    "run_code_expansion_ablation",
    "run_esw_study",
    "run_ewr_figure",
    "run_generalization_study",
    "run_issue_split_ablation",
    "run_memory_hierarchy_ablation",
    "run_partition_ablation",
    "run_speedup_figure",
    "run_table1",
    "speedup",
    "verify_corpus",
    "write_manifest",
    "write_site",
    "__version__",
]
