"""The serial reference machine: the speedup denominator.

An in-order, single-issue, non-overlapped machine: each instruction
costs its full latency (loads pay the whole memory differential) and
the next instruction begins only when it completes. Both the DM and
the SWSM are reported as speedups over this machine *at the same
memory differential*, which is why large differentials produce large
speedups — the reference suffers the full latency on every access.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_LATENCIES, LatencyModel
from ..ir import Program

__all__ = ["SerialResult", "SerialMachine"]


@dataclass(frozen=True)
class SerialResult:
    """Outcome of the (analytically computed) serial execution."""

    name: str
    cycles: int
    instructions: int
    memory_differential: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class SerialMachine:
    """Evaluates the non-overlapped serial execution time of a trace."""

    def __init__(self, latencies: LatencyModel = DEFAULT_LATENCIES) -> None:
        self.latencies = latencies

    def run(self, program: Program, memory_differential: int) -> SerialResult:
        cycles = program.serial_time(memory_differential, self.latencies)
        return SerialResult(
            name=program.name,
            cycles=cycles,
            instructions=len(program),
            memory_differential=memory_differential,
        )
