"""Event-driven out-of-order scheduling engine (struct-of-arrays core).

Simulates one or more out-of-order units executing unit-tagged
instruction streams under the timing semantics specified in
docs/timing.md: in-order dispatch into per-unit windows, oldest-first
out-of-order issue up to ``width`` per cycle, full bypassing, and
memory accesses that deliver ``mem_base + extra`` cycles after issue,
where ``extra`` comes from the pluggable
:class:`~repro.memory.MemorySystem`.

The engine never walks per-instruction objects: programs are lowered
once into flat parallel arrays (:mod:`repro.machines.lowered`, cached
on the :class:`~repro.partition.machine_program.MachineProgram`), and
the dispatch/issue loop runs over integer arrays and integer-encoded
ready queues. The memory system is queried exclusively through the
batched :meth:`~repro.memory.MemorySystem.latencies` protocol — there
is no per-access scalar call anywhere in the engine — and the model's
declared capability picks the strategy:

* **uniform** models (the paper's fixed differential) fold the whole
  availability rule into one precomputed per-gid latency table; on
  structurally periodic programs (every loop-nest trace) the fast loop
  then also detects a repeating scheduler state and skips whole
  iterations at once (docs/timing.md, "Periodic steady state");
* **stateless** models (pure functions of the address) are queried
  once, up front, for every memory access in the program, and the
  answers become a per-gid latency table — the fast loop again;
* **stateful** models (caches, bypass buffers, banked memories,
  prefetchers) first get the *speculative schedule fixed point*
  (:func:`_simulate_speculative`): guess a per-gid table, run at full
  table speed (steady-state skip included), replay the model over the
  resulting access stream, and verify the guess — exact whenever it
  converges. Models that decline (or fail to converge) run either in
  the same fast loop with one chunked, issue-ordered query per unit
  per cycle, or — when the model reports ``time_sensitive`` stateful
  behaviour (bank queuing, in-flight prefetch arrivals) — in the
  **event-heap scheduler** (:func:`_simulate_events`): one global
  min-heap of ``(time, seq, event)`` entries for dispatches,
  completions and memory arrivals, advancing the clock straight to
  the next event with deterministic FIFO tie-breaking at equal
  timestamps (docs/timing.md, "Event scheduling").

The ``REPRO_EVENT_ENGINE`` environment toggle overrides the automatic
choice (``events`` forces the event heap for every no-probe strategy,
``soa`` disables it, ``auto`` — the default — reserves it for
time-sensitive stateful models); whichever route runs, the schedule is
bit-exact. The strategy chosen by the most recent :func:`simulate`
call is recorded in :data:`LAST_STRATEGY` for tests and benchmarks.

A separate probing loop carries the buffer/ESW probes; it uses the
same chunked queries. All loops are event-driven — idle cycles are
skipped — and cycle-exact: schedules are identical to the naive
cycle-by-cycle reference (:mod:`repro.machines.reference`) and to the
pre-SoA engine (:mod:`repro.machines.engine_objects`), a property the
test-suite checks kernel by kernel and model by model.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field, replace
from heapq import heappop, heappush
from time import perf_counter

from ..config import DEFAULT_LATENCIES, LatencyModel, UnitConfig
from ..errors import SimulationDeadlockError, SimulationError
from ..memory import (
    CAP_STATELESS,
    FixedLatencyMemory,
    MemorySystem,
    OccupancyStats,
    occupancy_from_intervals,
)
from ..obs.telemetry import RunTelemetry, TelemetryCollector
from ..partition.machine_program import MachineProgram, Unit
from .lowered import MODE_ESTABLISH, MODE_MEMORY, LoweredProgram

__all__ = ["UnitStats", "SimulationResult", "simulate"]

_INFINITY = float("inf")

#: Skip-layer tuning: programs below this size never amortise the
#: steady-state search, and checkpoint fingerprints are attempted at
#: most this many times before the engine stops looking.
_SKIP_MIN_TOTAL = 2048
_MAX_CHECKPOINTS = 64


def _period_skip_enabled() -> bool:
    return os.environ.get("REPRO_PERIOD_SKIP", "1") != "0"


#: ``REPRO_EVENT_ENGINE`` spellings that force / forbid the event heap.
_EVENT_FORCE = frozenset({"1", "on", "force", "events"})
_EVENT_OFF = frozenset({"0", "off", "soa"})

#: Event-heap keys pack ``(time << _TIME_SHIFT) | seq`` into one int so
#: heap comparisons are single integer compares. 40 bits of ``seq``
#: (one per pushed event, ~10^12) far exceeds any reachable run.
_TIME_SHIFT = 40
_SEQ_MASK = (1 << _TIME_SHIFT) - 1


def _event_engine_mode() -> str:
    """Resolve the ``REPRO_EVENT_ENGINE`` toggle to force/off/auto."""
    value = os.environ.get("REPRO_EVENT_ENGINE", "auto").strip().lower()
    if value in _EVENT_FORCE:
        return "force"
    if value in _EVENT_OFF:
        return "off"
    return "auto"


#: ``REPRO_BATCH_ENGINE`` spellings that force / forbid batched sweeps.
_BATCH_FORCE = frozenset({"1", "on", "force", "batch"})
_BATCH_OFF = frozenset({"0", "off", "scalar"})


def _batch_engine_mode() -> str:
    """Resolve the ``REPRO_BATCH_ENGINE`` toggle to force/off/auto.

    Mirrors ``REPRO_EVENT_ENGINE``: ``auto`` (default) lets the session
    batch sweep groups of two or more points, ``force`` batches even
    singleton groups (useful for tests), ``off`` keeps every point on
    the scalar per-point path.
    """
    value = os.environ.get("REPRO_BATCH_ENGINE", "auto").strip().lower()
    if value in _BATCH_FORCE:
        return "force"
    if value in _BATCH_OFF:
        return "off"
    return "auto"


#: Cumulative steady-state accelerator activity, for tests and
#: benchmarks that want to assert the skip path was (not) taken. A
#: backward-compatible *aggregated view*: the engines accumulate into
#: per-run :class:`~repro.obs.telemetry.TelemetryCollector` objects
#: and merge them in here under :data:`_PERF_LOCK` when a run
#: finishes. Not part of the public API.
PERF_COUNTERS = {
    "steady_skips": 0,
    "skipped_instructions": 0,
    "event_runs": 0,
    "batch_runs": 0,
    "batch_lanes": 0,
    "batch_fallback_lanes": 0,
    "batch_steps": 0,
}

#: Strategy chosen by the most recent :func:`simulate` call — one of
#: ``uniform-table``, ``stateless-table``, ``speculative``,
#: ``chunked``, ``events-table``, ``events-chunked`` or ``probing``
#: (``batch`` after a :func:`_simulate_batch` vectorized run).
#: Diagnostic only (tests, benchmarks); not part of the public API.
LAST_STRATEGY = "none"

#: Guards every write to the compat aggregate above. Reads for display
#: should go through :func:`counters_snapshot`.
_PERF_LOCK = threading.Lock()


def record_counters(counters: dict[str, int]) -> None:
    """Merge one run's counter contribution into the global view."""
    with _PERF_LOCK:
        for key, value in counters.items():
            if value:
                PERF_COUNTERS[key] = PERF_COUNTERS.get(key, 0) + value


def record_strategy(strategy: str) -> None:
    """Publish the most recent strategy label (thread-safe)."""
    global LAST_STRATEGY
    with _PERF_LOCK:
        LAST_STRATEGY = strategy


def counters_snapshot() -> dict[str, int]:
    """A consistent copy of :data:`PERF_COUNTERS`."""
    with _PERF_LOCK:
        return dict(PERF_COUNTERS)


def _chosen(
    collector: TelemetryCollector, strategy: str, result: SimulationResult
) -> SimulationResult:
    collector.choose(strategy)
    return result


@dataclass(frozen=True)
class UnitStats:
    """Per-unit outcome of a simulation."""

    unit: Unit
    instructions: int
    last_issue: int
    issue_cycles: int  # cycles in which the unit issued at least once

    @property
    def mean_issue_rate(self) -> float:
        """Instructions per *busy* cycle (not per elapsed cycle)."""
        return self.instructions / self.issue_cycles if self.issue_cycles else 0.0


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one machine program."""

    name: str
    cycles: int
    instructions: int
    unit_stats: dict[Unit, UnitStats]
    buffer_occupancy: OccupancyStats | None = None
    esw_peak: int = 0
    esw_mean: float = 0.0
    issue_times: dict[int, int] | None = None
    meta: dict[str, object] = field(default_factory=dict)
    #: Per-run observability record. Excluded from equality (two equal
    #: schedules stay equal across cache tiers and wall clocks) and
    #: from every cache key; ``None`` on results unpickled from
    #: pre-telemetry caches, which the class-level default absorbs.
    telemetry: RunTelemetry | None = field(default=None, compare=False)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def simulate(
    program: MachineProgram,
    unit_configs: dict[Unit, UnitConfig],
    memory: MemorySystem | None = None,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    probe_buffers: bool = False,
    probe_esw: bool = False,
    collect_issue_times: bool = False,
    max_cycles: int | None = None,
    collector: TelemetryCollector | None = None,
) -> SimulationResult:
    """Run a machine program to completion and return timing results.

    Args:
        program: lowered machine program (one stream per unit).
        unit_configs: window/width per unit; must cover every stream.
        memory: memory-system model; defaults to a zero-differential
            fixed model.
        latencies: operation latencies (only ``mem_base`` is read here;
            per-instruction latencies were baked in during lowering).
        probe_buffers: record decoupled-memory / prefetch-buffer
            residency intervals and report occupancy statistics.
        probe_esw: track the effective single window (only meaningful
            for two-unit programs with AU and DU streams).
        collect_issue_times: return the issue time of every gid (for
            tests and debugging; costs memory).
        max_cycles: abort with :class:`SimulationError` if the clock
            passes this bound (guards against configuration mistakes).
        collector: per-run telemetry sink; supply one to claim the
            run's counters yourself (the global aggregate is then
            *not* updated — callers that pass a collector publish it).
    """
    if memory is None:
        memory = FixedLatencyMemory(0)
    memory.reset()

    for unit in program.units:
        if unit not in unit_configs:
            raise SimulationError(f"no unit configuration for {unit.value}")

    own_collector = collector is None
    if collector is None:
        collector = TelemetryCollector()
    started = perf_counter()
    result = _route(
        program, unit_configs, memory, latencies, probe_buffers,
        probe_esw, collect_issue_times, max_cycles, collector,
    )
    telemetry = RunTelemetry(
        strategy=collector.strategy,
        counters=collector.snapshot(),
        memory_stats=dict(memory.stats()),
        wall_seconds=perf_counter() - started,
        sim_cycles=result.cycles,
    )
    if own_collector:
        record_counters(collector.counters)
        record_strategy(collector.strategy)
    return replace(result, telemetry=telemetry)


def _route(
    program: MachineProgram,
    unit_configs: dict[Unit, UnitConfig],
    memory: MemorySystem,
    latencies: LatencyModel,
    probe_buffers: bool,
    probe_esw: bool,
    collect_issue_times: bool,
    max_cycles: int | None,
    collector: TelemetryCollector,
) -> SimulationResult:
    """Pick a strategy and run it; records the choice on ``collector``."""
    low = program.lowered()
    if not probe_buffers and not probe_esw and low.min_latency >= 1:
        mode = _event_engine_mode()
        # Every event the heap scheduler pushes must be strictly in the
        # future; ``mem_base >= 1`` (with ``min_latency >= 1`` above)
        # guarantees it for memory arrivals too.
        events_ok = latencies.mem_base >= 1
        forced = mode == "force" and events_ok
        uniform = memory.uniform_extra_latency()
        if uniform is None and not low.memory_gids:
            uniform = 0  # no accesses: any model degenerates to uniform
        if uniform is not None:
            # One constant: precomputed table, steady-state skip armed.
            addlat = low.addlat_for(latencies.mem_base + uniform)
            if forced:
                return _chosen(collector, "events-table", _simulate_events(
                    low, program, unit_configs, memory, addlat, latencies,
                    collect_issue_times, max_cycles, chunked=False,
                    collector=collector,
                ))
            return _chosen(collector, "uniform-table", _simulate_fast(
                low, program, unit_configs, memory, addlat, latencies,
                collect_issue_times, max_cycles,
                steady_ok=True, chunked=False, collector=collector,
            )[0])
        if memory.capability() == CAP_STATELESS:
            # Pure function of the address: one up-front batched query
            # answers every access in the program. The skip re-arms if
            # the resulting table proves periodic.
            table = _stateless_table(low, memory, latencies.mem_base)
            if forced:
                return _chosen(collector, "events-table", _simulate_events(
                    low, program, unit_configs, memory, table, latencies,
                    collect_issue_times, max_cycles, chunked=False,
                    collector=collector,
                ))
            return _chosen(collector, "stateless-table", _simulate_fast(
                low, program, unit_configs, memory, table,
                latencies, collect_issue_times, max_cycles,
                steady_ok=True, chunked=False, collector=collector,
            )[0])
        if (
            not forced
            and memory.speculation_friendly()
            and max_cycles is None
            and low.total >= _SKIP_MIN_TOTAL
            and _period_skip_enabled()
            and low.single_memory_unit()
            and low.steady() is not None
        ):
            result = _simulate_speculative(
                low, program, unit_configs, memory, latencies,
                collect_issue_times, collector,
            )
            if result is not None:
                return _chosen(collector, "speculative", result)
        if forced or (
            mode == "auto" and events_ok and memory.time_sensitive()
        ):
            # Time-sensitive stateful models (bank queuing, in-flight
            # prefetch arrivals) burn idle cycles between long-latency
            # arrivals in the cycle loop; the event heap jumps the
            # clock straight to the next arrival instead.
            return _chosen(collector, "events-chunked", _simulate_events(
                low, program, unit_configs, memory, low.base_addlat,
                latencies, collect_issue_times, max_cycles, chunked=True,
                collector=collector,
            ))
        # Stateful-ordered: same fast loop, one chunked issue-order
        # query per unit per cycle.
        return _chosen(collector, "chunked", _simulate_fast(
            low, program, unit_configs, memory, low.base_addlat, latencies,
            collect_issue_times, max_cycles,
            steady_ok=False, chunked=True, collector=collector,
        )[0])
    return _chosen(collector, "probing", _simulate_probing(
        low,
        program,
        unit_configs,
        memory,
        latencies,
        probe_buffers,
        probe_esw,
        collect_issue_times,
        max_cycles,
    ))


def _simulate_batch(
    program: MachineProgram,
    lanes,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    collect_issue_times: bool = False,
) -> list[SimulationResult]:
    """Batched-sweep strategy: N lanes of one program, one stepping loop.

    ``lanes`` is a list of :class:`repro.machines.batch.BatchLane`
    (unit configs + memory model per lane). Vectorizable lanes run
    stacked in the 2-D NumPy loop of :mod:`repro.machines.batch`;
    the rest fall back to per-lane :func:`simulate` (stateful models
    land in the speculative / chunked paths as usual). Results are
    bit-exact with per-point runs, lane by lane. Imported lazily —
    the batch module depends back on this one for the scalar fallback.
    """
    from .batch import simulate_batch

    return simulate_batch(
        program, lanes, latencies, collect_issue_times=collect_issue_times
    )


def _stateless_table(
    low: LoweredProgram, memory: MemorySystem, mem_base: int
) -> list[int]:
    """Per-gid added-latency table from one batched stateless query."""
    addr = low.addr
    memory_gids = low.memory_gids
    extras = memory.latencies([addr[gid] for gid in memory_gids], 0)
    table = low.base_addlat.copy()
    for gid, extra in zip(memory_gids, extras):
        table[gid] = mem_base + extra
    return table


#: Fast-loop runs a speculative fixed point may spend before giving up
#: and handing the program to the chunked live path.
_SPEC_MAX_RUNS = 3


def _simulate_speculative(
    low: LoweredProgram,
    program: MachineProgram,
    unit_configs: dict[Unit, UnitConfig],
    memory: MemorySystem,
    latencies: LatencyModel,
    collect_issue_times: bool,
    collector: TelemetryCollector | None = None,
) -> SimulationResult | None:
    """Schedule fixed point: decouple the stateful model from the loop.

    A stateful model only feeds the schedule through its extras, and
    its extras only depend on the issue-ordered access stream — so the
    engine *guesses* a per-gid extras table, simulates at full
    table-driven speed (the steady-state skip re-arms whenever the
    table proves periodic), replays the model over the resulting
    access stream in batched chunks, and verifies: if a run's access
    schedule reproduces the one its table was derived from, the
    guessed extras are exactly what a live in-loop model would have
    produced, and the schedule is exact. On the paper's loop-nest
    kernels locality models stabilise within one refinement, turning a
    stateful simulation into two skip-accelerated runs plus one model
    replay. No convergence within :data:`_SPEC_MAX_RUNS` returns None
    (the caller falls back to the chunked live path); models whose
    extras feed back into timing too strongly (bank queuing) opt out
    up front via :meth:`MemorySystem.speculation_friendly`.
    """
    total = low.total
    mem_base = latencies.mem_base
    memory_gids = low.memory_gids
    prev_access: list[int] | None = None
    # Seed with the model's dominant answer so the first access
    # schedule lands near the real one (one refinement to converge).
    table = low.addlat_for(mem_base + memory.typical_extra_latency())
    fill = None if collect_issue_times else memory_gids
    for _ in range(_SPEC_MAX_RUNS):
        result, issue = _simulate_fast(
            low, program, unit_configs, memory, table, latencies,
            collect_issue_times, None, steady_ok=True, chunked=False,
            fill_gids=fill, collector=collector,
        )
        # The access stream, encoded issue-order first (cycle, gid).
        access = [issue[gid] * total + gid for gid in memory_gids]
        access.sort()
        if access == prev_access:
            # Same schedule as the run the table was replayed from:
            # the table is self-consistent, the run is exact, and the
            # model has already consumed exactly this access stream.
            return result
        memory.reset()
        extras = _replay(low, memory, access)
        refined = low.base_addlat.copy()
        for encoded, extra in zip(access, extras):
            refined[encoded % total] = mem_base + extra
        if refined == table:
            return result  # the guess was already a fixed point
        table = refined
        prev_access = access
    memory.reset()
    return None


def _replay(
    low: LoweredProgram, memory: MemorySystem, access: list[int]
) -> list[int]:
    """Feed an encoded access stream to a model, chunked as live issue.

    ``access`` holds ``cycle * total + gid`` keys in issue order. Time
    -insensitive models take the whole stream in one batched call;
    time-sensitive ones get one chunk per cycle, with the cycle as
    ``now`` — the same call pattern the chunked live path produces.
    """
    total = low.total
    addr = low.addr
    if not memory.time_sensitive():
        return memory.latencies(
            [addr[encoded % total] for encoded in access], 0
        )
    extras: list[int] = []
    length = len(access)
    i = 0
    while i < length:
        cycle = access[i] // total
        j = i
        while j < length and access[j] // total == cycle:
            j += 1
        extras.extend(memory.latencies(
            [addr[access[k] % total] for k in range(i, j)], cycle
        ))
        i = j
    return extras


def _result(
    low: LoweredProgram,
    program: MachineProgram,
    memory: MemorySystem,
    cycles: int,
    unit_stats: dict[Unit, UnitStats],
    occupancy: OccupancyStats | None,
    esw_peak: int,
    esw_mean: float,
    issue_times: dict[int, int] | None,
) -> SimulationResult:
    return SimulationResult(
        name=program.name,
        cycles=cycles,
        instructions=low.total,
        unit_stats=unit_stats,
        buffer_occupancy=occupancy,
        esw_peak=esw_peak,
        esw_mean=esw_mean,
        issue_times=issue_times,
        meta={"memory": memory.describe(), **program.meta},
    )


def _simulate_fast(
    low: LoweredProgram,
    program: MachineProgram,
    unit_configs: dict[Unit, UnitConfig],
    memory: MemorySystem,
    addlat: list[int],
    latencies: LatencyModel,
    collect_issue_times: bool,
    max_cycles: int | None,
    steady_ok: bool,
    chunked: bool,
    fill_gids: list[int] | None = None,
    collector: TelemetryCollector | None = None,
) -> tuple[SimulationResult, list[int]]:
    """The hot path: no probes, every latency baked or chunk-batched.

    ``addlat`` folds the availability rule into one add per issue,
    heaps hold plain integers (wakeups encode ``time * total + gid``,
    which orders by time then age), and a matured batch that fits the
    issue width bypasses the ready heap entirely. With ``chunked``
    (stateful memory models) the memory accesses of each issue batch
    are answered by one :meth:`MemorySystem.latencies` call in issue
    order; ``addlat`` then only covers the non-memory modes.
    ``steady_ok`` arms the periodic steady-state skip, which stays
    armed only if ``addlat`` itself proves periodic over the verified
    region. Returns ``(result, issue_time_list)`` — the raw per-gid
    issue times feed the speculative fixed point without paying for a
    dict.
    """
    total = low.total
    units = low.units
    nu = len(units)
    is_mem = low.is_mem
    addr_arr = low.addr
    mem_base = latencies.mem_base
    chunk_latencies = memory.latencies if chunked else None
    cons = low.cons
    unit_of = low.unit_index
    pending = low.n_srcs.copy()
    opmax = [0] * total
    dispatched = bytearray(total)
    issue_time = [-1] * total

    streams = low.stream_gids
    widths = [unit_configs[u].width for u in units]
    windows = [unit_configs[u].window for u in units]
    lens = [len(s) for s in streams]
    ptrs = [0] * nu
    occs = [0] * nu
    readys: list[list[int]] = [[] for _ in range(nu)]
    wakeups: list[list[int]] = [[] for _ in range(nu)]
    issued_cnt = [0] * nu
    icyc = [0] * nu
    last_issue = [0] * nu
    oldest = [0] * nu  # per-unit oldest-unissued stream position

    steady = None
    if (
        steady_ok
        and max_cycles is None
        and total >= _SKIP_MIN_TOTAL
        and _period_skip_enabled()
    ):
        steady = low.steady()
    if steady is not None:
        # The structural period ignores addresses, so a per-gid table
        # (stateless or speculative extras) must itself repeat for the
        # skip to stay cycle-exact. Uniform tables pass the one slice
        # compare trivially; tables with a warmup prefix (cold-start
        # misses) get their verified start raised past it instead —
        # block-wise slice compares keep the scan at C speed.
        period = steady.period
        if addlat[steady.start: total - period] != addlat[
            steady.start + period:
        ]:
            ok_from = total - period
            start = steady.start
            while ok_from > start:
                probe = max(start, ok_from - 4096)
                if addlat[probe: ok_from] == addlat[
                    probe + period: ok_from + period
                ]:
                    ok_from = probe
                    continue
                for gid in range(ok_from - 1, probe - 1, -1):
                    if addlat[gid] != addlat[gid + period]:
                        ok_from = gid + 1
                        break
                break
            if total - ok_from >= 3 * period + steady.dep_span + 64:
                steady = replace(steady, start=ok_from)
            else:
                steady = None
    if steady is not None:
        period = steady.period
        next_boundary = steady.start + period
        prev_fp: tuple | None = None
        prev_boundary = -1
        prev_t = -1
        prev_icyc: tuple[int, ...] = ()
        prev_issued: tuple[int, ...] = ()
        checkpoints = 0
    fmax = -1  # dispatch frontier (max dispatched gid); skip layer only
    skip_shift = 0
    skip_dt = 0

    horizon = 0
    t = 0
    while True:
        all_done = True
        any_progress = False
        width_blocked = False
        for u in range(nu):
            occ = occs[u]
            ptr = ptrs[u]
            stream_len = lens[u]
            if not occ and ptr >= stream_len:
                continue
            all_done = False
            ready = readys[u]
            wakeup = wakeups[u]
            # Mature wakeups whose ready time has come.
            limit = t * total + total - 1
            batch: list[int] | None = None
            while wakeup and wakeup[0] <= limit:
                gid = heappop(wakeup) % total
                if batch is None:
                    batch = [gid]
                else:
                    batch.append(gid)
            # Issue phase: oldest-first, up to width. When the matured
            # batch fits the width and nothing else is waiting, issue
            # order within the cycle is irrelevant — skip the heap.
            budget = widths[u]
            if batch is not None and (ready or len(batch) > budget):
                for gid in batch:
                    heappush(ready, gid)
                batch = None
            if batch is None and ready:
                batch = []
                while len(batch) < budget and ready:
                    batch.append(heappop(ready))
            if batch:
                if chunk_latencies is None:
                    for gid in batch:
                        issue_time[gid] = t
                        avail = t + addlat[gid]
                        if avail > horizon:
                            horizon = avail
                        for c in cons[gid]:
                            remaining = pending[c] - 1
                            pending[c] = remaining
                            if opmax[c] < avail:
                                opmax[c] = avail
                            if not remaining and dispatched[c]:
                                heappush(
                                    wakeups[unit_of[c]], opmax[c] * total + c
                                )
                else:
                    # Stateful memory: the model must see accesses
                    # oldest-first (heap order), so sort batches that
                    # bypassed the ready heap, then answer the memory
                    # subset with one issue-ordered chunked query.
                    if len(batch) > 1:
                        batch.sort()
                    mem_gids = [g for g in batch if is_mem[g]]
                    if mem_gids:
                        extra_iter = iter(chunk_latencies(
                            [addr_arr[g] for g in mem_gids], t
                        ))
                    for gid in batch:
                        issue_time[gid] = t
                        if is_mem[gid]:
                            avail = t + mem_base + next(extra_iter)
                        else:
                            avail = t + addlat[gid]
                        if avail > horizon:
                            horizon = avail
                        for c in cons[gid]:
                            remaining = pending[c] - 1
                            pending[c] = remaining
                            if opmax[c] < avail:
                                opmax[c] = avail
                            if not remaining and dispatched[c]:
                                heappush(
                                    wakeups[unit_of[c]], opmax[c] * total + c
                                )
                occ -= len(batch)
                any_progress = True
                issued_cnt[u] += len(batch)
                icyc[u] += 1
                last_issue[u] = t
            # Dispatch phase: in order, up to width, into freed slots.
            count = widths[u]
            room = windows[u] - occ
            if count > room:
                count = room
            remaining = stream_len - ptr
            if count > remaining:
                count = remaining
            if count > 0:
                new_ptr = ptr + count
                next_t = t + 1
                for gid in streams[u][ptr:new_ptr]:
                    dispatched[gid] = 1
                    if not pending[gid]:
                        ready_at = opmax[gid]
                        if ready_at < next_t:
                            ready_at = next_t
                        heappush(wakeup, ready_at * total + gid)
                ptr = new_ptr
                occ += count
                any_progress = True
                if steady is not None:
                    gid = streams[u][new_ptr - 1]
                    if gid > fmax:
                        fmax = gid
                if count == widths[u] and ptr < stream_len and occ < windows[u]:
                    width_blocked = True
            ptrs[u] = ptr
            occs[u] = occ

        # Steady-state checkpoint: when the dispatch frontier crosses a
        # period boundary, fingerprint the scheduler state relative to
        # (boundary, t). Two consecutive boundaries with identical
        # fingerprints prove the schedule is periodic from here on, and
        # the remaining full periods are applied as one shift.
        if steady is not None and fmax >= next_boundary:
            boundary = next_boundary
            while next_boundary <= fmax:
                next_boundary += period
            fp, lo, hi = _fast_fingerprint(
                low, boundary, t, fmax, nu, streams, ptrs, lens, occs,
                readys, wakeups, oldest, pending, opmax, dispatched,
                issue_time, steady.dep_span,
            )
            matched = (
                fp is not None
                and fp == prev_fp
                and boundary - prev_boundary == period
                and t > prev_t
                and lo >= steady.start
                and all(
                    issued_cnt[u] - prev_issued[u] == steady.unit_counts[u]
                    for u in range(nu)
                )
            )
            if matched:
                dt = t - prev_t
                margin = 2 * period + steady.dep_span + 8
                k = (total - 1 - fmax - margin) // period
                if k >= 1:
                    d_gid = k * period
                    d_t = k * dt
                    shift = d_t * total + d_gid
                    for u in range(nu):
                        wakeups[u] = [e + shift for e in wakeups[u]]
                        readys[u] = [g + d_gid for g in readys[u]]
                        advance = k * steady.unit_counts[u]
                        ptrs[u] += advance
                        oldest[u] += advance
                        issued_cnt[u] += k * steady.unit_counts[u]
                        icyc[u] += k * (icyc[u] - prev_icyc[u])
                    for g in range(hi, lo - 1, -1):
                        g2 = g + d_gid
                        pending[g2] = pending[g]
                        o = opmax[g]
                        opmax[g2] = o + d_t if o else 0
                        dispatched[g2] = dispatched[g]
                    t += d_t
                    fmax += d_gid
                    skip_shift = period
                    skip_dt = dt
                    if collector is not None:
                        collector.counters["steady_skips"] += 1
                        collector.counters["skipped_instructions"] += d_gid
                    else:
                        record_counters({
                            "steady_skips": 1,
                            "skipped_instructions": d_gid,
                        })
                steady = None
            else:
                prev_fp = fp
                prev_boundary = boundary
                prev_t = t
                prev_icyc = tuple(icyc)
                prev_issued = tuple(issued_cnt)
                checkpoints += 1
                if checkpoints >= _MAX_CHECKPOINTS:
                    steady = None

        if all_done:
            break
        # Earliest future activity across all units.
        next_time = _INFINITY
        for u in range(nu):
            if not occs[u] and ptrs[u] >= lens[u]:
                continue
            if readys[u]:
                next_time = t + 1
                break
            wakeup = wakeups[u]
            if wakeup:
                candidate = wakeup[0] // total
                if candidate < next_time:
                    next_time = candidate
        if width_blocked and next_time > t + 1:
            next_time = t + 1
        if next_time is _INFINITY:
            if any_progress:
                # Progress happened this cycle but nothing is
                # scheduled: re-scan next cycle (only reachable through
                # dispatch races).
                t += 1
                continue
            outstanding = sum(
                lens[u] - ptrs[u] + occs[u] for u in range(nu)
            )
            raise SimulationDeadlockError(
                f"no unit can make progress at cycle {t} with "
                f"{outstanding} instructions outstanding"
            )
        if max_cycles is not None and next_time > max_cycles:
            raise SimulationError(
                f"simulation exceeded max_cycles={max_cycles}"
            )
        t = int(next_time)

    if skip_shift:
        # Fill in the issue times of the skipped iterations. Every
        # instruction still unissued at the matched checkpoint issues
        # exactly one period's cycles after its one-period-earlier
        # counterpart, so an ascending sweep telescopes through the
        # whole skipped range (the counterpart is always either
        # simulated or already filled). ``fill_gids`` restricts the
        # sweep to the gids the caller needs (the speculative fixed
        # point only reads memory accesses, which telescope among
        # themselves — structural periodicity keeps g - period a
        # memory gid whenever g is one).
        d_gid = skip_shift
        d_t = skip_dt
        for g in range(total) if fill_gids is None else fill_gids:
            if issue_time[g] < 0:
                issue_time[g] = issue_time[g - d_gid] + d_t

    unit_stats = {
        units[u]: UnitStats(
            unit=units[u],
            instructions=issued_cnt[u],
            last_issue=last_issue[u],
            issue_cycles=icyc[u],
        )
        for u in range(nu)
    }
    issue_times = None
    if collect_issue_times:
        issue_times = {gid: issue_time[gid] for gid in range(total)}
    result = _result(
        low, program, memory, horizon, unit_stats, None, 0, 0.0, issue_times
    )
    return result, issue_time


def _fast_fingerprint(
    low, boundary, t, fmax, nu, streams, ptrs, lens, occs, readys, wakeups,
    oldest, pending, opmax, dispatched, issue_time, dep_span,
):
    """Canonical scheduler state relative to (boundary, t).

    Covers everything the future evolution can read: per-unit stream
    positions, occupancies and queues, plus the pending/opmax/window
    flags of every gid between the oldest live instruction and the
    dispatch frontier plus the dependence span. Equality of two
    fingerprints one period apart implies the evolutions are identical
    up to the (gid, time) shift.
    """
    total = low.total
    lo = total
    for u in range(nu):
        position = oldest[u]
        gids = streams[u]
        limit = ptrs[u]
        while position < limit and issue_time[gids[position]] >= 0:
            position += 1
        oldest[u] = position
        if position < limit and gids[position] < lo:
            lo = gids[position]
        if limit < lens[u] and gids[limit] < lo:
            lo = gids[limit]
    if lo == total:
        return None, lo, lo - 1
    hi = fmax + dep_span
    if hi >= total:
        return None, lo, hi
    base = t * total + boundary
    unit_part = []
    for u in range(nu):
        next_gid = (
            streams[u][ptrs[u]] - boundary if ptrs[u] < lens[u] else -total
        )
        unit_part.append((
            next_gid,
            occs[u],
            tuple(sorted(e - base for e in wakeups[u])),
            tuple(sorted(g - boundary for g in readys[u])),
        ))
    region = []
    for g in range(lo, hi + 1):
        o = opmax[g]
        region.append((
            pending[g],
            o - t if o else None,
            1 if dispatched[g] and issue_time[g] < 0 else 0,
        ))
    return (lo - boundary, tuple(unit_part), tuple(region)), lo, hi


def _simulate_events(
    low: LoweredProgram,
    program: MachineProgram,
    unit_configs: dict[Unit, UnitConfig],
    memory: MemorySystem,
    addlat: list[int],
    latencies: LatencyModel,
    collect_issue_times: bool,
    max_cycles: int | None,
    chunked: bool,
    trace: list[tuple[int, int, int]] | None = None,
    collector: TelemetryCollector | None = None,
) -> SimulationResult:
    """Event-heap scheduler: the clock jumps straight to the next event.

    One global min-heap holds gid wakeups — operand completions and
    memory arrivals — as bare integer keys
    ``(time << _TIME_SHIFT) | seq``, so pushes allocate nothing and
    every heap comparison is one int compare; ``seq_codes[seq]``
    decodes a popped key back to its gid. *Unit-cycle* events (a unit
    that must run again
    next cycle: ready-heap backlog, or an in-order dispatch stream
    still width-limited) can only ever target ``t + 1``, so they skip
    the heap entirely and go through a plain armed-unit list that is
    drained at the next timestamp. ``seq`` is a monotone insertion
    counter stamped on every event — packed into the key's low bits
    for heap entries — so events at equal timestamps order FIFO: the
    same determinism treatment as the scheduler heap in
    :mod:`repro.service.jobs`, making event order (and hence every
    stateful-model query) reproducible across runs and worker
    processes. Arming is deduplicated (``cycle_pending``), so no lazy
    cancellation is needed; gid wakeups are pushed exactly once per
    gid. The optional ``trace`` list receives the decoded
    ``(time, seq, code)`` triple per consumed event, seq-merged
    across both sources; ``code >= 0`` is a gid wakeup, ``code < 0``
    a cycle event for unit ``-1 - code``.

    Per popped timestamp the loop drains *all* events, then processes
    the touched units in ascending unit order — the order the cycle
    loops use — so with ``chunked`` a stateful model sees exactly one
    issue-ordered :meth:`~repro.memory.MemorySystem.latencies` chunk
    per issuing unit per visited cycle, with ``now`` jumping across
    the skipped idle cycles (see docs/timing.md, "Event scheduling",
    and the non-contiguous-timestamp contract in
    :class:`~repro.memory.MemorySystem`). Every pushed event is
    strictly in the future (the caller guarantees ``min_latency >= 1``
    and ``mem_base >= 1``), so no timestamp is visited twice and the
    schedule is bit-exact with :func:`_simulate_fast`.
    """
    total = low.total
    units = low.units
    nu = len(units)
    is_mem = low.is_mem
    addr_arr = low.addr
    mem_base = latencies.mem_base
    chunk_latencies = memory.latencies if chunked else None
    cons = low.cons
    unit_of = low.unit_index
    pending = low.n_srcs.copy()
    opmax = [0] * total
    dispatched = bytearray(total)
    issue_time = [-1] * total if collect_issue_times else None

    streams = low.stream_gids
    widths = [unit_configs[u].width for u in units]
    windows = [unit_configs[u].window for u in units]
    lens = [len(s) for s in streams]
    ptrs = [0] * nu
    occs = [0] * nu
    readys: list[list[int]] = [[] for _ in range(nu)]
    matured: list[list[int]] = [[] for _ in range(nu)]
    issued_cnt = [0] * nu
    icyc = [0] * nu
    last_issue = [0] * nu

    # The heap holds bare int keys — ``(time << _TIME_SHIFT) | seq`` —
    # so pushes allocate nothing and every sift compare is one int
    # compare; ``seq_codes[seq]`` decodes a popped key back to its gid
    # (cycle events never enter the heap; when tracing they burn a seq
    # on a ``-1 - u`` placeholder so the recorded FIFO order is global).
    seq_codes: list[int] = []
    events: list[int] = []  # gid wakeup keys only
    cycle_pending = bytearray(nu)  # one in-flight arming per unit
    active = bytearray(nu)  # dedupes touched units within a timestamp
    arm: list[int] = []  # units that must run at the next timestamp
    arm_seqs: list[int] | None = [] if trace is not None else None
    for u in range(nu):
        if lens[u]:
            arm.append(u)
            if arm_seqs is not None:
                arm_seqs.append(len(seq_codes))
                seq_codes.append(-1 - u)
            cycle_pending[u] = 1

    horizon = 0
    t = -1
    touched: list[int] = []
    while events or arm:
        # Armed units always target t + 1, and every heap entry is
        # strictly future, so the next timestamp is t + 1 whenever any
        # unit is armed — otherwise the clock jumps to the heap's min.
        if arm:
            t += 1
        else:
            t = events[0] >> _TIME_SHIFT
        if max_cycles is not None and t > max_cycles:
            raise SimulationError(
                f"simulation exceeded max_cycles={max_cycles}"
            )
        del touched[:]
        boundary = (t + 1) << _TIME_SHIFT
        if trace is None:
            while events and events[0] < boundary:
                code = seq_codes[heappop(events) & _SEQ_MASK]
                u = unit_of[code]
                matured[u].append(code)
                if not active[u]:
                    active[u] = 1
                    touched.append(u)
            for u in arm:
                cycle_pending[u] = 0
                if not active[u]:
                    active[u] = 1
                    touched.append(u)
            del arm[:]
        else:
            # Traced path: merge heap pops and armed cycle events by
            # seq so the recorded order is the global FIFO order.
            merged = [(s, -1 - u) for u, s in zip(arm, arm_seqs)]
            while events and events[0] < boundary:
                s = heappop(events) & _SEQ_MASK
                merged.append((s, seq_codes[s]))
            merged.sort()
            del arm[:]
            del arm_seqs[:]
            for s, code in merged:
                trace.append((t, s, code))
                if code >= 0:
                    u = unit_of[code]
                    matured[u].append(code)
                else:
                    u = -1 - code
                    cycle_pending[u] = 0
                if not active[u]:
                    active[u] = 1
                    touched.append(u)
        if len(touched) > 1:
            touched.sort()
        for u in touched:
            active[u] = 0
            ready = readys[u]
            budget = widths[u]
            # Issue phase: oldest-first, up to width. A matured batch
            # that fits the width with no backlog bypasses the ready
            # heap (sorted so stateful models still see oldest-first);
            # the matured list is reused, never reallocated.
            mat = matured[u]
            nb = len(mat)
            if nb:
                if ready or nb > budget:
                    for gid in mat:
                        heappush(ready, gid)
                    del mat[:]
                    nb = 0
                elif nb > 1:
                    mat.sort()
            if nb:
                batch = mat
            elif ready:
                batch = []
                while nb < budget and ready:
                    batch.append(heappop(ready))
                    nb += 1
            else:
                batch = None
            if batch:
                if nb == 1:
                    # Single-gid issue: the long-latency trickle case —
                    # skip the chunk listcomps and iterator machinery.
                    gid = batch[0]
                    if issue_time is not None:
                        issue_time[gid] = t
                    if chunk_latencies is not None and is_mem[gid]:
                        avail = t + mem_base + chunk_latencies(
                            [addr_arr[gid]], t
                        )[0]
                    else:
                        avail = t + addlat[gid]
                    if avail > horizon:
                        horizon = avail
                    for c in cons[gid]:
                        remaining = pending[c] - 1
                        pending[c] = remaining
                        if opmax[c] < avail:
                            opmax[c] = avail
                        if not remaining and dispatched[c]:
                            heappush(
                                events,
                                (opmax[c] << _TIME_SHIFT) | len(seq_codes),
                            )
                            seq_codes.append(c)
                else:
                    if chunk_latencies is not None:
                        mem_gids = [g for g in batch if is_mem[g]]
                        if mem_gids:
                            extra_iter = iter(chunk_latencies(
                                [addr_arr[g] for g in mem_gids], t
                            ))
                    for gid in batch:
                        if issue_time is not None:
                            issue_time[gid] = t
                        if chunk_latencies is not None and is_mem[gid]:
                            avail = t + mem_base + next(extra_iter)
                        else:
                            avail = t + addlat[gid]
                        if avail > horizon:
                            horizon = avail
                        for c in cons[gid]:
                            remaining = pending[c] - 1
                            pending[c] = remaining
                            if opmax[c] < avail:
                                opmax[c] = avail
                            if not remaining and dispatched[c]:
                                heappush(
                                    events,
                                    (opmax[c] << _TIME_SHIFT)
                                    | len(seq_codes),
                                )
                                seq_codes.append(c)
                if batch is mat:
                    del mat[:]
                occs[u] -= nb
                issued_cnt[u] += nb
                icyc[u] += 1
                last_issue[u] = t
            # Dispatch phase: in order, up to width, into freed slots.
            occ = occs[u]
            ptr = ptrs[u]
            stream_len = lens[u]
            n = budget
            room = windows[u] - occ
            if n > room:
                n = room
            remaining = stream_len - ptr
            if n > remaining:
                n = remaining
            if n > 0:
                new_ptr = ptr + n
                next_t = t + 1
                for gid in streams[u][ptr:new_ptr]:
                    dispatched[gid] = 1
                    if not pending[gid]:
                        ready_at = opmax[gid]
                        if ready_at < next_t:
                            ready_at = next_t
                        heappush(
                            events,
                            (ready_at << _TIME_SHIFT) | len(seq_codes),
                        )
                        seq_codes.append(gid)
                ptr = new_ptr
                occ += n
                ptrs[u] = ptr
                occs[u] = occ
            # Re-arm the unit's cycle event iff it must run next cycle:
            # ready backlog, or a width-limited dispatch stream (room
            # and instructions both left over means width was the cap).
            if not cycle_pending[u] and (
                ready or (ptr < stream_len and occ < windows[u])
            ):
                arm.append(u)
                if arm_seqs is not None:
                    arm_seqs.append(len(seq_codes))
                    seq_codes.append(-1 - u)
                cycle_pending[u] = 1

    if any(occs[u] or ptrs[u] < lens[u] for u in range(nu)):
        outstanding = sum(lens[u] - ptrs[u] + occs[u] for u in range(nu))
        raise SimulationDeadlockError(
            f"no unit can make progress at cycle {t} with "
            f"{outstanding} instructions outstanding"
        )
    if collector is not None:
        collector.counters["event_runs"] += 1
    else:
        record_counters({"event_runs": 1})
    unit_stats = {
        units[u]: UnitStats(
            unit=units[u],
            instructions=issued_cnt[u],
            last_issue=last_issue[u],
            issue_cycles=icyc[u],
        )
        for u in range(nu)
    }
    issue_times = None
    if issue_time is not None:
        issue_times = {gid: issue_time[gid] for gid in range(total)}
    return _result(
        low, program, memory, horizon, unit_stats, None, 0, 0.0, issue_times
    )


class _UState:
    """Mutable scheduling state of one unit (probing loop only)."""

    __slots__ = (
        "unit", "gids", "window", "width", "ptr", "occ",
        "ready", "wakeup", "oldest", "issued", "icyc", "last",
    )

    def __init__(self, unit, gids, window, width):
        self.unit = unit
        self.gids = gids
        self.window = window
        self.width = width
        self.ptr = 0
        self.occ = 0
        self.ready: list[int] = []  # heap of gids (oldest first)
        self.wakeup: list[tuple[int, int]] = []  # heap of (ready_at, gid)
        self.oldest = 0  # stream position, for ESW probing
        self.issued = 0
        self.icyc = 0
        self.last = 0

    def done(self) -> bool:
        return self.occ == 0 and self.ptr >= len(self.gids)


def _simulate_probing(
    low: LoweredProgram,
    program: MachineProgram,
    unit_configs: dict[Unit, UnitConfig],
    memory: MemorySystem,
    latencies: LatencyModel,
    probe_buffers: bool,
    probe_esw: bool,
    collect_issue_times: bool,
    max_cycles: int | None,
) -> SimulationResult:
    """The probing path: buffer/ESW probes, zero-latency programs.

    Still array-driven, and the memory system is still queried through
    the batched protocol — one issue-ordered
    :meth:`MemorySystem.latencies` chunk per unit per cycle. What sets
    this loop apart from the fast one are the probes (buffer residency
    intervals, ESW samples) and the dispatch-time floors that keep
    zero-latency instructions exact.
    """
    total = low.total
    mode_arr = low.mode
    lat_arr = low.lat
    addr_arr = low.addr
    cons = low.cons
    pending = low.n_srcs.copy()
    opmax = [0] * total
    dispatched = bytearray(total)
    issued_flag = bytearray(total)
    dispatch_time = [0] * total
    avail_arr = [0] * total
    issue_time = [0] * total if collect_issue_times or probe_esw else None

    states = [
        _UState(
            unit,
            low.stream_gids[ui],
            unit_configs[unit].window,
            unit_configs[unit].width,
        )
        for ui, unit in enumerate(low.units)
    ]
    state_of = [states[ui] for ui in low.unit_index] if total else []

    mem_base = latencies.mem_base
    chunk_latencies = memory.latencies

    # Buffer residency probe: arrival time of each delivering gid, and
    # (arrival, consume) intervals closed when the consumer issues.
    arrivals: dict[int, int] = {}
    intervals: list[tuple[int, int]] = []
    pair_arr = low.pair
    delivers = low.delivers
    if probe_buffers and low.pair_missing:
        gid, kind = low.pair_missing[0]
        raise SimulationError(
            f"{kind} gid={gid} has no paired memory operation"
        )

    by_unit = {state.unit: state for state in states}
    esw_enabled = probe_esw and Unit.AU in by_unit and Unit.DU in by_unit
    au_state = by_unit.get(Unit.AU)
    du_state = by_unit.get(Unit.DU)
    orig_index = low.orig_index
    esw_peak = 0
    esw_weighted = 0
    esw_cycles = 0

    time = 0
    while True:
        all_done = True
        any_progress = False
        width_blocked = False
        for state in states:
            if state.done():
                continue
            all_done = False
            ready = state.ready
            wakeup = state.wakeup
            while wakeup and wakeup[0][0] <= time:
                heappush(ready, heappop(wakeup)[1])
            budget = state.width
            batch: list[int] = []
            while budget and ready:
                batch.append(heappop(ready))
                budget -= 1
            if batch:
                # Heap pops come oldest-first, so the memory subset of
                # the batch is already in issue order: answer it with
                # one chunked query before applying the batch.
                mem_gids = [g for g in batch if mode_arr[g] == MODE_MEMORY]
                if mem_gids:
                    extra_iter = iter(chunk_latencies(
                        [addr_arr[g] for g in mem_gids], time
                    ))
                for gid in batch:
                    issued_flag[gid] = 1
                    if issue_time is not None:
                        issue_time[gid] = time
                    mode = mode_arr[gid]
                    if mode == MODE_MEMORY:
                        avail = time + mem_base + next(extra_iter)
                        if probe_buffers and delivers[gid]:
                            arrivals[gid] = avail
                    elif mode == MODE_ESTABLISH:
                        avail = time + 1
                    else:
                        avail = time + lat_arr[gid]
                    avail_arr[gid] = avail
                    state.occ -= 1
                    if probe_buffers and pair_arr[gid] >= 0:
                        arrival = arrivals.pop(pair_arr[gid], None)
                        if arrival is not None:
                            intervals.append((arrival, time))
                    for consumer in cons[gid]:
                        remaining = pending[consumer] - 1
                        pending[consumer] = remaining
                        if opmax[consumer] < avail:
                            opmax[consumer] = avail
                        if remaining == 0 and dispatched[consumer]:
                            ready_at = opmax[consumer]
                            floor = dispatch_time[consumer] + 1
                            if ready_at < floor:
                                ready_at = floor
                            heappush(
                                state_of[consumer].wakeup, (ready_at, consumer)
                            )
                any_progress = True
                state.issued += len(batch)
                state.icyc += 1
                state.last = time
            dispatch_budget = state.width
            gids = state.gids
            stream_len = len(gids)
            while (
                dispatch_budget
                and state.occ < state.window
                and state.ptr < stream_len
            ):
                gid = gids[state.ptr]
                dispatched[gid] = 1
                dispatch_time[gid] = time
                state.occ += 1
                state.ptr += 1
                dispatch_budget -= 1
                any_progress = True
                if pending[gid] == 0:
                    ready_at = opmax[gid]
                    if ready_at <= time:
                        ready_at = time + 1
                    heappush(wakeup, (ready_at, gid))
            if (
                state.ptr < stream_len
                and state.occ < state.window
                and dispatch_budget == 0
            ):
                width_blocked = True

        next_time = _INFINITY
        for state in states:
            if state.done():
                continue
            if state.ready:
                candidate = time + 1
            elif state.wakeup:
                candidate = state.wakeup[0][0]
            else:
                candidate = _INFINITY
            if candidate < next_time:
                next_time = candidate
        if width_blocked and next_time > time + 1:
            next_time = time + 1

        if esw_enabled and au_state is not None and du_state is not None:
            sample = _esw_sample(au_state, du_state, issued_flag, orig_index)
            if sample is not None:
                # The scheduling state is static until next_time, so
                # the sample holds for the whole skipped interval.
                if next_time is _INFINITY:
                    duration = 1
                else:
                    duration = max(1, int(next_time) - time)
                esw_weighted += sample * duration
                esw_cycles += duration
                if sample > esw_peak:
                    esw_peak = sample

        if all_done:
            break
        if next_time is _INFINITY:
            if any_progress:
                time += 1
                continue
            outstanding = sum(
                len(s.gids) - s.ptr + s.occ for s in states
            )
            raise SimulationDeadlockError(
                f"no unit can make progress at cycle {time} with "
                f"{outstanding} instructions outstanding"
            )
        if max_cycles is not None and next_time > max_cycles:
            raise SimulationError(
                f"simulation exceeded max_cycles={max_cycles}"
            )
        time = int(next_time)

    cycles = max(avail_arr) if avail_arr else 0
    unit_stats = {
        state.unit: UnitStats(
            unit=state.unit,
            instructions=state.issued,
            last_issue=state.last,
            issue_cycles=state.icyc,
        )
        for state in states
    }
    occupancy = occupancy_from_intervals(intervals) if probe_buffers else None
    issue_times = None
    if collect_issue_times and issue_time is not None:
        issue_times = {gid: issue_time[gid] for gid in range(total)}
    return _result(
        low,
        program,
        memory,
        cycles,
        unit_stats,
        occupancy,
        esw_peak,
        esw_weighted / esw_cycles if esw_cycles else 0.0,
        issue_times,
    )


def _esw_sample(au_state, du_state, issued_flag, orig_index):
    """Effective-single-window sample (paper section 3).

    The minimum single window that would hold everything from the
    oldest not-yet-issued DU instruction to the youngest dispatched AU
    instruction, measured in architectural instructions.
    """
    du_gids = du_state.gids
    position = du_state.oldest
    du_len = len(du_gids)
    while position < du_len and issued_flag[du_gids[position]]:
        position += 1
    du_state.oldest = position
    if position >= du_len or au_state.ptr == 0:
        return None
    youngest_au = orig_index[au_state.gids[au_state.ptr - 1]]
    oldest_du = orig_index[du_gids[position]]
    if youngest_au < oldest_du:
        return None
    return youngest_au - oldest_du + 1
