"""The machine registry: pluggable machine models for the experiment layer.

The experiment API (:mod:`repro.api`) never names a machine class
directly; it looks the machine up here by the ``machine`` field of a
:class:`repro.api.Point`. A machine model is anything satisfying
:class:`MachineModel`:

* ``canonical(point)`` zeroes the point fields the machine ignores, so
  that e.g. a DM run at ``swsm_width=7`` and one at ``swsm_width=9``
  share a single cache entry;
* ``compile(program, point, latencies)`` lowers an architectural
  program once per (program, partition, expansion) — compilation is
  window-independent, so one compile serves every window size;
* ``simulate(compiled, point, window, memory, latencies)`` runs one
  operating point and returns a cycle-exact
  :class:`~repro.machines.engine.SimulationResult`.

New machines plug in without touching the experiment layer::

    from repro.machines import register_machine

    class MyMachine:
        name = "mine"
        ...

    register_machine(MyMachine())

after which ``Point(program="trfd", machine="mine", ...)`` evaluates
through any :class:`~repro.api.Session`, including sweeps and the disk
cache. Process-pool workers see runtime registrations through fork
inheritance; on platforms without fork, sessions transparently keep
non-builtin machines on the local executor.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from ..config import DMConfig, LatencyModel, SWSMConfig, UnitConfig
from ..errors import ConfigError
from ..ir import Program
from ..partition import MachineProgram
from ..partition.machine_program import Unit
from ..obs.telemetry import RunTelemetry
from ..partition.strategies import partition_with_strategy
from .dm import DecoupledMachine
from .engine import SimulationResult
from .serial import SerialMachine
from .swsm import SuperscalarMachine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..api.spec import Point
    from ..memory import MemorySystem

__all__ = [
    "MachineModel",
    "register_machine",
    "get_machine",
    "list_machines",
]

#: The paper's per-unit issue widths (AU=4, DU=5, combined 9); used to
#: canonicalise away width fields a machine does not read.
_DEFAULT_AU_WIDTH = 4
_DEFAULT_DU_WIDTH = 5
_DEFAULT_SWSM_WIDTH = 9
_DEFAULT_PARTITION = "slice"


@runtime_checkable
class MachineModel(Protocol):
    """What a machine must provide to plug into the experiment layer."""

    name: str

    def canonical(self, point: "Point") -> "Point":
        """Clear the point fields this machine ignores (cache folding)."""

    def compile(
        self, program: Program, point: "Point", latencies: LatencyModel
    ) -> Any:
        """Lower ``program`` once; reused across windows/differentials."""

    def simulate(
        self,
        compiled: Any,
        point: "Point",
        window: int,
        memory: "MemorySystem",
        latencies: LatencyModel,
    ) -> SimulationResult:
        """Run one operating point, cycle-exactly."""


class DecoupledModel:
    """The access decoupled machine (paper sections 2-3)."""

    name = "dm"

    def canonical(self, point: "Point") -> "Point":
        return replace(point, swsm_width=_DEFAULT_SWSM_WIDTH)

    def compile(
        self, program: Program, point: "Point", latencies: LatencyModel
    ) -> MachineProgram:
        compiled = partition_with_strategy(program, point.partition, latencies)
        compiled.lowered()  # build the SoA form once, not per simulation
        return compiled

    def simulate(
        self,
        compiled: MachineProgram,
        point: "Point",
        window: int,
        memory: "MemorySystem",
        latencies: LatencyModel,
    ) -> SimulationResult:
        machine = DecoupledMachine(
            DMConfig.symmetric(
                window,
                au_width=point.au_width,
                du_width=point.du_width,
                latencies=latencies,
            )
        )
        return machine.run(compiled, memory=memory, probe_esw=point.probe_esw)

    def batch_configs(
        self, point: "Point", window: int, latencies: LatencyModel
    ) -> dict:
        """Per-unit configs for one batch lane (the batched-sweep hook).

        A machine model exposing this hook opts into the batched sweep
        engine: the session groups points by
        :func:`repro.api.spec.point_batch_key` and stacks their lanes
        into one vectorized run (:mod:`repro.machines.batch`), which
        must produce exactly the schedule :meth:`simulate` would.
        """
        config = DMConfig.symmetric(
            window,
            au_width=point.au_width,
            du_width=point.du_width,
            latencies=latencies,
        )
        return {Unit.AU: config.au, Unit.DU: config.du}


class SuperscalarModel:
    """The single-window superscalar machine (paper section 4)."""

    name = "swsm"

    def canonical(self, point: "Point") -> "Point":
        return replace(
            point,
            au_width=_DEFAULT_AU_WIDTH,
            du_width=_DEFAULT_DU_WIDTH,
            partition=_DEFAULT_PARTITION,
            probe_esw=False,
        )

    def compile(
        self, program: Program, point: "Point", latencies: LatencyModel
    ) -> MachineProgram:
        compiled = SuperscalarMachine.compile(program, latencies)
        compiled.lowered()  # build the SoA form once, not per simulation
        return compiled

    def simulate(
        self,
        compiled: MachineProgram,
        point: "Point",
        window: int,
        memory: "MemorySystem",
        latencies: LatencyModel,
    ) -> SimulationResult:
        machine = SuperscalarMachine(
            SWSMConfig(
                window=window, width=point.swsm_width, latencies=latencies
            )
        )
        return machine.run(compiled, memory=memory)

    def batch_configs(
        self, point: "Point", window: int, latencies: LatencyModel
    ) -> dict:
        """Per-unit configs for one batch lane (see DecoupledModel)."""
        return {
            Unit.SINGLE: UnitConfig(
                window=window, width=point.swsm_width, name="SWSM"
            )
        }


class SerialModel:
    """The non-overlapped serial reference (the speedup denominator).

    Analytic, so it ignores the window, the widths, the partition and
    the memory-system variant: only the program and the memory
    differential matter, and ``canonical`` folds everything else away.
    """

    name = "serial"

    def canonical(self, point: "Point") -> "Point":
        return replace(
            point,
            window=None,
            au_width=_DEFAULT_AU_WIDTH,
            du_width=_DEFAULT_DU_WIDTH,
            swsm_width=_DEFAULT_SWSM_WIDTH,
            partition=_DEFAULT_PARTITION,
            probe_esw=False,
            memory=type(point.memory)(),
        )

    def compile(
        self, program: Program, point: "Point", latencies: LatencyModel
    ) -> Program:
        return program

    def simulate(
        self,
        compiled: Program,
        point: "Point",
        window: int,
        memory: "MemorySystem",
        latencies: LatencyModel,
    ) -> SimulationResult:
        serial = SerialMachine(latencies).run(
            compiled, point.memory_differential
        )
        return SimulationResult(
            name=serial.name,
            cycles=serial.cycles,
            instructions=serial.instructions,
            unit_stats={},
            telemetry=RunTelemetry(
                strategy="serial", sim_cycles=serial.cycles
            ),
        )


_MACHINES: dict[str, MachineModel] = {}


def register_machine(model: MachineModel, name: str | None = None) -> None:
    """Register a machine model under ``name`` (default: ``model.name``).

    Re-registering a name replaces the previous model — deliberate, so
    a study can swap in an instrumented variant of a stock machine.
    """
    key = name if name is not None else getattr(model, "name", None)
    if not key or not isinstance(key, str):
        raise ConfigError(
            f"machine model {model!r} needs a non-empty string name"
        )
    _MACHINES[key] = model


def get_machine(name: str) -> MachineModel:
    """Look up a registered machine model by name."""
    try:
        return _MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(_MACHINES))
        raise ConfigError(
            f"unknown machine {name!r}; registered machines: {known}"
        ) from None


def list_machines() -> list[str]:
    """Names of all registered machine models, sorted."""
    return sorted(_MACHINES)


register_machine(DecoupledModel())
register_machine(SuperscalarModel())
register_machine(SerialModel())
