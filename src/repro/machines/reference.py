"""A deliberately naive cycle-by-cycle simulator for differential testing.

This implements the docs/timing.md semantics as directly as
possible — scanning every window every cycle, no heaps, no event
skipping — so the test-suite can check that the optimised event-driven
engine produces the *identical* schedule. It is orders of magnitude
slower and must only be used on small programs.
"""

from __future__ import annotations

from ..config import DEFAULT_LATENCIES, LatencyModel, UnitConfig
from ..errors import SimulationError
from ..memory import FixedLatencyMemory, MemorySystem
from ..partition.machine_program import MachineProgram, MemKind, Unit

__all__ = ["simulate_naive"]

_DEFAULT_CYCLE_BOUND = 2_000_000


def simulate_naive(
    program: MachineProgram,
    unit_configs: dict[Unit, UnitConfig],
    memory: MemorySystem | None = None,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    cycle_bound: int = _DEFAULT_CYCLE_BOUND,
) -> tuple[int, dict[int, int]]:
    """Run cycle by cycle; returns (total cycles, issue time per gid)."""
    if memory is None:
        memory = FixedLatencyMemory(0)
    memory.reset()

    instructions = program.by_gid
    avail: dict[int, int] = {}
    issue_at: dict[int, int] = {}
    dispatch_at: dict[int, int] = {}
    windows: dict[Unit, list[int]] = {unit: [] for unit in program.units}
    pointers: dict[Unit, int] = {unit: 0 for unit in program.units}

    def finished() -> bool:
        return all(
            not windows[unit] and pointers[unit] >= len(program.stream(unit))
            for unit in program.units
        )

    time = 0
    while not finished():
        if time > cycle_bound:
            raise SimulationError(
                f"naive simulation exceeded {cycle_bound} cycles"
            )
        for unit in program.units:
            config = unit_configs[unit]
            window = windows[unit]
            # Issue phase: oldest-first among ready instructions that
            # were dispatched in an *earlier* cycle with all operands
            # available by now.
            ready = [
                gid
                for gid in window
                if dispatch_at[gid] < time
                and all(avail.get(dep, None) is not None and avail[dep] <= time
                        for dep in instructions[gid].srcs)
            ]
            ready.sort()
            for gid in ready[: config.width]:
                inst = instructions[gid]
                issue_at[gid] = time
                if inst.mem_kind in (
                    MemKind.LOAD_ISSUE,
                    MemKind.SELF_LOAD,
                    MemKind.PREFETCH_LOAD,
                ):
                    addr = inst.addr if inst.addr is not None else 0
                    avail[gid] = (
                        time + latencies.mem_base + memory.extra_latency(addr, time)
                    )
                elif inst.mem_kind is MemKind.PREFETCH_STORE:
                    avail[gid] = time + 1
                else:
                    avail[gid] = time + inst.latency
                window.remove(gid)
            # Dispatch phase: in order, up to width, into free slots.
            stream = program.stream(unit)
            dispatched = 0
            while (
                dispatched < config.width
                and len(window) < config.window
                and pointers[unit] < len(stream)
            ):
                inst = stream[pointers[unit]]
                window.append(inst.gid)
                dispatch_at[inst.gid] = time
                pointers[unit] += 1
                dispatched += 1
        time += 1

    total = max(avail.values()) if avail else 0
    return total, issue_at
