"""The pre-SoA object-walking engine, preserved for comparison.

This is the engine as it stood before the struct-of-arrays rewrite
(:mod:`repro.machines.engine`): it re-derives its scheduling arrays
from the per-instruction dataclasses on every call and drives issue
through tuple heaps. It is kept verbatim for two jobs:

* **benchmarking** — ``benchmarks/bench_engine_soa.py`` times it
  against the SoA engine at every scale tier and records the ratio in
  ``BENCH_engine.json``;
* **differential testing** — it is a second, independent
  implementation of the docs/timing.md semantics, much faster than the
  naive cycle-by-cycle reference (:mod:`repro.machines.reference`), so
  the parity suite can compare whole kernels at the ``small`` and
  ``paper`` scales.

Do not use it for new work; ``simulate`` in
:mod:`repro.machines.engine` is the supported entry point.
"""


from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter

from ..config import DEFAULT_LATENCIES, LatencyModel, UnitConfig
from ..errors import SimulationDeadlockError, SimulationError
from ..memory import (
    FixedLatencyMemory,
    MemorySystem,
    occupancy_from_intervals,
)
from ..obs.telemetry import RunTelemetry
from ..partition.machine_program import (
    MachineProgram,
    MemKind,
    Unit,
)

from .engine import SimulationResult, UnitStats

__all__ = ["simulate_objects"]

_INFINITY = float("inf")

# Availability rules, precomputed per instruction for the hot loop.
_MODE_LATENCY = 0  # avail = issue + latency
_MODE_MEMORY = 1  # avail = issue + mem_base + memory.extra_latency(addr)
_MODE_ESTABLISH = 2  # avail = issue + 1 (store prefetch: entry established)

_KIND_MODE = {
    MemKind.NONE: _MODE_LATENCY,
    MemKind.COPY: _MODE_LATENCY,
    MemKind.RECEIVE: _MODE_LATENCY,
    MemKind.STORE_ADDR: _MODE_LATENCY,
    MemKind.STORE_DATA: _MODE_LATENCY,
    MemKind.ACCESS_LOAD: _MODE_LATENCY,
    MemKind.ACCESS_STORE: _MODE_LATENCY,
    MemKind.LOAD_ISSUE: _MODE_MEMORY,
    MemKind.SELF_LOAD: _MODE_MEMORY,
    MemKind.PREFETCH_LOAD: _MODE_MEMORY,
    MemKind.PREFETCH_STORE: _MODE_ESTABLISH,
}

# Kinds whose issue consumes a buffered datum delivered by srcs[0].
_CONSUMER_KINDS = frozenset({MemKind.RECEIVE, MemKind.ACCESS_LOAD})


class _UnitState:
    """Mutable scheduling state of one out-of-order unit."""

    __slots__ = (
        "unit",
        "stream",
        "window",
        "width",
        "dispatch_ptr",
        "occupancy",
        "ready",
        "wakeup",
        "oldest_unissued",
        "issued",
        "issue_cycles",
        "last_issue",
    )

    def __init__(self, unit: Unit, stream, window: int, width: int) -> None:
        self.unit = unit
        self.stream = stream
        self.window = window
        self.width = width
        self.dispatch_ptr = 0
        self.occupancy = 0
        self.ready: list[int] = []  # heap of gids (oldest-first priority)
        self.wakeup: list[tuple[int, int]] = []  # heap of (ready_at, gid)
        self.oldest_unissued = 0  # stream position, for ESW probing
        self.issued = 0
        self.issue_cycles = 0
        self.last_issue = 0

    def done(self) -> bool:
        return self.occupancy == 0 and self.dispatch_ptr >= len(self.stream)


def simulate_objects(
    program: MachineProgram,
    unit_configs: dict[Unit, UnitConfig],
    memory: MemorySystem | None = None,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    probe_buffers: bool = False,
    probe_esw: bool = False,
    collect_issue_times: bool = False,
    max_cycles: int | None = None,
) -> SimulationResult:
    """Run a machine program to completion and return timing results.

    Args:
        program: lowered machine program (one stream per unit).
        unit_configs: window/width per unit; must cover every stream.
        memory: memory-system model; defaults to a zero-differential
            fixed model.
        latencies: operation latencies (only ``mem_base`` is read here;
            per-instruction latencies were baked in during lowering).
        probe_buffers: record decoupled-memory / prefetch-buffer
            residency intervals and report occupancy statistics.
        probe_esw: track the effective single window (only meaningful
            for two-unit programs with AU and DU streams).
        collect_issue_times: return the issue time of every gid (for
            tests and debugging; costs memory).
        max_cycles: abort with :class:`SimulationError` if the clock
            passes this bound (guards against configuration mistakes).
    """
    if memory is None:
        memory = FixedLatencyMemory(0)
    memory.reset()
    started = perf_counter()

    for unit in program.units:
        if unit not in unit_configs:
            raise SimulationError(f"no unit configuration for {unit.value}")

    units = [
        _UnitState(
            unit,
            program.stream(unit),
            unit_configs[unit].window,
            unit_configs[unit].width,
        )
        for unit in program.units
    ]

    # Dense per-gid scheduling arrays. Gids are assigned contiguously by
    # the lowering passes, so lists indexed by gid are exact.
    total = program.num_instructions
    pending = [0] * total
    opmax = [0] * total
    dispatched = bytearray(total)
    issued_flag = bytearray(total)
    issue_time = [0] * total if collect_issue_times or probe_esw else None
    avail_arr = [0] * total
    mode_arr = [0] * total
    lat_arr = [0] * total
    addr_arr: list[int] = [0] * total
    consumers: list[list[int]] = [[] for _ in range(total)]
    unit_of: list[_UnitState] = [units[0]] * total
    dispatch_time = [0] * total

    by_unit = {state.unit: state for state in units}
    for state in units:
        for inst in state.stream:
            gid = inst.gid
            if gid >= total:
                raise SimulationError(
                    f"gid {gid} out of range; lowering must assign contiguous gids"
                )
            pending[gid] = len(inst.srcs)
            mode_arr[gid] = _KIND_MODE[inst.mem_kind]
            lat_arr[gid] = inst.latency
            addr_arr[gid] = inst.addr if inst.addr is not None else 0
            unit_of[gid] = by_unit[inst.unit]
            for dep in inst.srcs:
                consumers[dep].append(gid)

    mem_base = latencies.mem_base
    extra_latency = memory.extra_latency

    # Buffer residency probe: arrival time of each delivering gid, and
    # (arrival, consume) intervals closed when the consumer issues.
    # ``pair_arr[gid]`` is the delivering load-issue/prefetch of a
    # receive/access (always srcs[0] by lowering convention).
    arrivals: dict[int, int] = {}
    intervals: list[tuple[int, int]] = []
    pair_arr = [-1] * total
    delivers = bytearray(total)
    if probe_buffers:
        for state in units:
            for inst in state.stream:
                if inst.mem_kind in _CONSUMER_KINDS:
                    if not inst.srcs:
                        raise SimulationError(
                            f"{inst.mem_kind.value} gid={inst.gid} has no "
                            "paired memory operation"
                        )
                    pair_arr[inst.gid] = inst.srcs[0]
                if inst.mem_kind in (MemKind.LOAD_ISSUE, MemKind.PREFETCH_LOAD):
                    delivers[inst.gid] = 1

    esw_enabled = probe_esw and Unit.AU in by_unit and Unit.DU in by_unit
    au_state = by_unit.get(Unit.AU)
    du_state = by_unit.get(Unit.DU)
    esw_peak = 0
    esw_weighted = 0
    esw_cycles = 0

    time = 0
    while True:
        all_done = True
        any_progress = False
        width_blocked: list[_UnitState] = []
        for state in units:
            if state.done():
                continue
            all_done = False
            ready = state.ready
            wakeup = state.wakeup
            # Mature wakeups whose ready time has come.
            while wakeup and wakeup[0][0] <= time:
                heappush(ready, heappop(wakeup)[1])
            # Issue phase: oldest-first, up to width.
            budget = state.width
            issued_this_cycle = 0
            while budget and ready:
                gid = heappop(ready)
                budget -= 1
                issued_this_cycle += 1
                issued_flag[gid] = 1
                if issue_time is not None:
                    issue_time[gid] = time
                mode = mode_arr[gid]
                if mode == _MODE_LATENCY:
                    avail = time + lat_arr[gid]
                elif mode == _MODE_MEMORY:
                    avail = time + mem_base + extra_latency(addr_arr[gid], time)
                    if probe_buffers and delivers[gid]:
                        arrivals[gid] = avail
                else:  # _MODE_ESTABLISH
                    avail = time + 1
                avail_arr[gid] = avail
                state.occupancy -= 1
                if probe_buffers and pair_arr[gid] >= 0:
                    arrival = arrivals.pop(pair_arr[gid], None)
                    if arrival is not None:
                        intervals.append((arrival, time))
                for consumer in consumers[gid]:
                    remaining = pending[consumer] - 1
                    pending[consumer] = remaining
                    if opmax[consumer] < avail:
                        opmax[consumer] = avail
                    if remaining == 0 and dispatched[consumer]:
                        ready_at = opmax[consumer]
                        floor = dispatch_time[consumer] + 1
                        if ready_at < floor:
                            ready_at = floor
                        heappush(unit_of[consumer].wakeup, (ready_at, consumer))
            if issued_this_cycle:
                any_progress = True
                state.issued += issued_this_cycle
                state.issue_cycles += 1
                state.last_issue = time
            # Dispatch phase: in order, up to width, into freed slots.
            dispatch_budget = state.width
            stream = state.stream
            stream_len = len(stream)
            while (
                dispatch_budget
                and state.occupancy < state.window
                and state.dispatch_ptr < stream_len
            ):
                inst = stream[state.dispatch_ptr]
                gid = inst.gid
                dispatched[gid] = 1
                dispatch_time[gid] = time
                state.occupancy += 1
                state.dispatch_ptr += 1
                dispatch_budget -= 1
                any_progress = True
                if pending[gid] == 0:
                    ready_at = opmax[gid]
                    if ready_at <= time:
                        ready_at = time + 1
                    heappush(wakeup, (ready_at, gid))
            if (
                state.dispatch_ptr < stream_len
                and state.occupancy < state.window
                and dispatch_budget == 0
            ):
                width_blocked.append(state)

        # Earliest future activity across all units. Computed *after*
        # every unit has processed this cycle, because a later unit's
        # issues may have pushed wakeups into an earlier unit's heap.
        next_time = _INFINITY
        for state in units:
            if state.done():
                continue
            candidate = _INFINITY
            if state.ready:
                candidate = time + 1
            elif state.wakeup:
                candidate = state.wakeup[0][0]
            next_time = min(next_time, candidate)
        if width_blocked:
            next_time = min(next_time, time + 1)

        if esw_enabled and au_state is not None and du_state is not None:
            sample = _esw_sample(au_state, du_state, issued_flag)
            if sample is not None:
                # The scheduling state is static until next_time, so the
                # sample holds for the whole skipped interval.
                if next_time is _INFINITY:
                    duration = 1
                else:
                    duration = max(1, int(next_time) - time)
                esw_weighted += sample * duration
                esw_cycles += duration
                if sample > esw_peak:
                    esw_peak = sample

        if all_done:
            break
        if next_time is _INFINITY:
            if any_progress:
                # Progress happened this cycle but nothing is scheduled:
                # re-scan next cycle (cross-unit wakeups land in heaps,
                # so this is only reachable through dispatch races).
                time += 1
                continue
            raise SimulationDeadlockError(
                f"no unit can make progress at cycle {time} with "
                f"{sum(len(s.stream) - s.dispatch_ptr + s.occupancy for s in units)}"
                " instructions outstanding"
            )
        if max_cycles is not None and next_time > max_cycles:
            raise SimulationError(
                f"simulation exceeded max_cycles={max_cycles}"
            )
        time = int(next_time)

    cycles = max(avail_arr) if avail_arr else 0
    unit_stats = {
        state.unit: UnitStats(
            unit=state.unit,
            instructions=state.issued,
            last_issue=state.last_issue,
            issue_cycles=state.issue_cycles,
        )
        for state in units
    }
    occupancy = occupancy_from_intervals(intervals) if probe_buffers else None
    issue_times = None
    if collect_issue_times and issue_time is not None:
        issue_times = {gid: issue_time[gid] for gid in range(total)}
    return SimulationResult(
        name=program.name,
        cycles=cycles,
        instructions=total,
        unit_stats=unit_stats,
        buffer_occupancy=occupancy,
        esw_peak=esw_peak,
        esw_mean=esw_weighted / esw_cycles if esw_cycles else 0.0,
        issue_times=issue_times,
        meta={"memory": memory.describe(), **program.meta},
        telemetry=RunTelemetry(
            strategy="objects",
            memory_stats=dict(memory.stats()),
            wall_seconds=perf_counter() - started,
            sim_cycles=cycles,
        ),
    )


def _esw_sample(
    au_state: _UnitState, du_state: _UnitState, issued_flag: bytearray
) -> int | None:
    """Effective-single-window sample (paper §3).

    The minimum single window that would hold everything from the
    oldest not-yet-issued DU instruction to the youngest dispatched AU
    instruction, measured in architectural instructions.
    """
    du_stream = du_state.stream
    position = du_state.oldest_unissued
    while position < len(du_stream) and issued_flag[du_stream[position].gid]:
        position += 1
    du_state.oldest_unissued = position
    if position >= len(du_stream) or au_state.dispatch_ptr == 0:
        return None
    youngest_au = au_state.stream[au_state.dispatch_ptr - 1].orig_index
    oldest_du = du_stream[position].orig_index
    if youngest_au < oldest_du:
        return None
    return youngest_au - oldest_du + 1
