"""Machine models: the DM, the SWSM, the serial reference, and the engine."""

from .dm import DecoupledMachine
from .engine import SimulationResult, UnitStats, simulate
from .reference import simulate_naive
from .serial import SerialMachine, SerialResult
from .swsm import SuperscalarMachine

__all__ = [
    "DecoupledMachine",
    "SuperscalarMachine",
    "SerialMachine",
    "SerialResult",
    "SimulationResult",
    "UnitStats",
    "simulate",
    "simulate_naive",
]
