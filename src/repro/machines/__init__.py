"""Machine models: the DM, the SWSM, the serial reference, the engine,
and the registry that makes new machines pluggable."""

from .dm import DecoupledMachine
from .engine import SimulationResult, UnitStats, simulate
from .reference import simulate_naive
from .registry import (
    MachineModel,
    get_machine,
    list_machines,
    register_machine,
)
from .serial import SerialMachine, SerialResult
from .swsm import SuperscalarMachine

__all__ = [
    "DecoupledMachine",
    "MachineModel",
    "SuperscalarMachine",
    "SerialMachine",
    "SerialResult",
    "SimulationResult",
    "UnitStats",
    "get_machine",
    "list_machines",
    "register_machine",
    "simulate",
    "simulate_naive",
]
