"""Machine models: the DM, the SWSM, the serial reference, the engine
(struct-of-arrays core plus the preserved object-walking baseline), and
the registry that makes new machines pluggable."""

from .dm import DecoupledMachine
from .engine import SimulationResult, UnitStats, simulate
from .engine_objects import simulate_objects
from .lowered import LoweredProgram, lower_program
from .reference import simulate_naive
from .registry import (
    MachineModel,
    get_machine,
    list_machines,
    register_machine,
)
from .serial import SerialMachine, SerialResult
from .swsm import SuperscalarMachine

__all__ = [
    "DecoupledMachine",
    "LoweredProgram",
    "MachineModel",
    "SuperscalarMachine",
    "SerialMachine",
    "SerialResult",
    "SimulationResult",
    "UnitStats",
    "get_machine",
    "list_machines",
    "lower_program",
    "register_machine",
    "simulate",
    "simulate_naive",
    "simulate_objects",
]
