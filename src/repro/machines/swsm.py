"""The single-window superscalar machine (SWSM).

One out-of-order unit whose issue width equals the DM's combined issue
width, using hybrid prefetching: each memory operation is a prefetch
instruction plus an access instruction sharing the single window —
so when accesses stall on a large memory differential they occupy
window slots and throttle the dispatch of later prefetches.
"""

from __future__ import annotations

from ..config import DEFAULT_LATENCIES, LatencyModel, SWSMConfig, UnitConfig
from ..ir import Program
from ..memory import FixedLatencyMemory, MemorySystem
from ..partition import MachineProgram, Unit, lower_swsm
from .engine import SimulationResult, simulate

__all__ = ["SuperscalarMachine"]


class SuperscalarMachine:
    """Simulates SWSM executions of lowered programs."""

    def __init__(self, config: SWSMConfig) -> None:
        self.config = config

    @staticmethod
    def compile(
        program: Program, latencies: LatencyModel = DEFAULT_LATENCIES
    ) -> MachineProgram:
        """Lower an architectural program to prefetch/access form."""
        return lower_swsm(program, latencies)

    def run(
        self,
        machine_program: MachineProgram,
        memory: MemorySystem | None = None,
        memory_differential: int | None = None,
        probe_buffers: bool = False,
        collect_issue_times: bool = False,
    ) -> SimulationResult:
        """Simulate a lowered program on this SWSM configuration."""
        if memory is not None and memory_differential is not None:
            raise ValueError(
                "pass either a memory model or a memory differential, not both"
            )
        if memory is None:
            memory = FixedLatencyMemory(memory_differential or 0)
        unit = UnitConfig(
            window=self.config.window, width=self.config.width, name="SWSM"
        )
        return simulate(
            machine_program,
            unit_configs={Unit.SINGLE: unit},
            memory=memory,
            latencies=self.config.latencies,
            probe_buffers=probe_buffers,
            collect_issue_times=collect_issue_times,
        )

    def run_program(
        self,
        program: Program,
        memory: MemorySystem | None = None,
        memory_differential: int | None = None,
        **probe_kwargs: bool,
    ) -> SimulationResult:
        """Compile and run an architectural program in one step."""
        compiled = self.compile(program, self.config.latencies)
        return self.run(
            compiled,
            memory=memory,
            memory_differential=memory_differential,
            **probe_kwargs,
        )
