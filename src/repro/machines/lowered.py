"""Struct-of-arrays lowering of machine programs for the engine.

:class:`~repro.partition.machine_program.MachineProgram` stores one
dataclass object per instruction — convenient to build, validate and
inspect, but slow to walk millions of times. :func:`lower_program`
flattens a program *once* into parallel integer arrays (the
struct-of-arrays form): timing mode, latency, memory address,
dependency counts, a consumer adjacency table and per-unit gid
streams. The engine (:mod:`repro.machines.engine`) schedules directly
over these arrays; the lowered form is cached on the program
(:meth:`MachineProgram.lowered`), so one compile serves every window
size and memory differential of a sweep.

Lowering also computes two engine accelerator inputs:

* a per-``(mem_base + extra)`` **effective latency table**
  (:meth:`LoweredProgram.addlat_for`), which batches the memory
  system's per-access lookup into one precomputed array when the
  model declares a uniform differential (see
  :meth:`repro.memory.MemorySystem.uniform_extra_latency`); for
  non-uniform models the engine instead combines ``base_addlat``,
  ``memory_gids``/``is_mem`` and the batched
  :meth:`repro.memory.MemorySystem.latencies` protocol;
* the **steady-state signature** (:meth:`LoweredProgram.steady`): if
  the instruction stream is structurally periodic — as every loop-nest
  trace is — the engine can detect a repeating scheduler state and
  skip whole iterations while staying cycle-exact (docs/timing.md,
  "Periodic steady state").

For the event-heap scheduler (docs/timing.md, "Event scheduling")
lowering additionally records *event metadata*: ``mem_units`` — the
units that own memory accesses — drives the engine's strategy
selection (the event heap pays off exactly when a memory-owning unit
faces long, irregular stateful latencies), and the per-gid
``unit_index``/``cons`` tables double as the wakeup-routing tables the
event loop uses to deliver completion and memory-arrival events to the
right unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from array import array

from ..errors import SimulationError
from ..partition.machine_program import MachineProgram, MemKind

__all__ = [
    "MODE_LATENCY",
    "MODE_MEMORY",
    "MODE_ESTABLISH",
    "KIND_MODE",
    "SteadyState",
    "LoweredProgram",
    "lower_program",
]

# Availability rules, precomputed per instruction for the hot loop.
MODE_LATENCY = 0  # avail = issue + latency
MODE_MEMORY = 1  # avail = issue + mem_base + memory.extra_latency(addr)
MODE_ESTABLISH = 2  # avail = issue + 1 (store prefetch: entry established)

KIND_MODE = {
    MemKind.NONE: MODE_LATENCY,
    MemKind.COPY: MODE_LATENCY,
    MemKind.RECEIVE: MODE_LATENCY,
    MemKind.STORE_ADDR: MODE_LATENCY,
    MemKind.STORE_DATA: MODE_LATENCY,
    MemKind.ACCESS_LOAD: MODE_LATENCY,
    MemKind.ACCESS_STORE: MODE_LATENCY,
    MemKind.LOAD_ISSUE: MODE_MEMORY,
    MemKind.SELF_LOAD: MODE_MEMORY,
    MemKind.PREFETCH_LOAD: MODE_MEMORY,
    MemKind.PREFETCH_STORE: MODE_ESTABLISH,
}

#: Kinds whose issue consumes a buffered datum delivered by srcs[0].
CONSUMER_KINDS = frozenset({MemKind.RECEIVE, MemKind.ACCESS_LOAD})

#: Kinds that deliver a datum into the decoupled/prefetch buffer.
DELIVERING_KINDS = frozenset({MemKind.LOAD_ISSUE, MemKind.PREFETCH_LOAD})

#: Boundary stride floor for steady-state checkpoints, in gids. Very
#: short loop bodies are checked at a multiple of their period so the
#: dispatch frontier cannot cross two checkpoints in one cycle.
_MIN_STRIDE = 48

_UNSET = object()


@dataclass(frozen=True)
class SteadyState:
    """A verified structural period of the instruction stream.

    Attributes:
        start: first gid of the verified periodic region; the stream's
            structure repeats with shift ``period`` from here to the
            end of the program.
        period: gid shift per period (a multiple of the minimal
            structural period, raised to at least ``_MIN_STRIDE``).
        unit_counts: per-unit stream advance per period, indexed like
            ``LoweredProgram.units``.
        dep_span: maximum ``consumer - producer`` gid distance in the
            whole program (bounds how far scheduler state can reach
            past the dispatch frontier).
    """

    start: int
    period: int
    unit_counts: tuple[int, ...]
    dep_span: int


class LoweredProgram:
    """Flat parallel arrays describing one machine program.

    All lists are indexed by gid except ``stream_gids`` (per-unit
    dispatch order). Instances are immutable by convention: the engine
    treats every array, including the tables returned by
    :meth:`addlat_for`, as read-only.
    """

    __slots__ = (
        "total",
        "units",
        "stream_gids",
        "n_srcs",
        "src_off",
        "cons",
        "mode",
        "lat",
        "addr",
        "unit_index",
        "orig_index",
        "base_addlat",
        "memory_gids",
        "mem_units",
        "is_mem",
        "min_latency",
        "min_dep_offset",
        "dep_span",
        "pair",
        "delivers",
        "pair_missing",
        "_addlat_cache",
        "_steady",
        "_np_cache",
    )

    def __init__(self) -> None:
        self._addlat_cache: dict[int, list[int]] = {}
        self._steady = _UNSET
        self._np_cache = None  # NumPy views for the batch engine

    def __getstate__(self):
        """Pickle the flat arrays; drop caches, keep a computed steady.

        ``_steady`` uses a module-level sentinel for "not computed yet"
        that cannot survive a pickle round-trip by identity, so it is
        mapped out of the state (the digest-keyed lowering cache pickles
        programs with ``steady()`` already materialised, which this
        preserves — including a computed ``None``).
        """
        state = {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_addlat_cache", "_np_cache")
        }
        if state["_steady"] is _UNSET:
            del state["_steady"]
        return state

    def __setstate__(self, state) -> None:
        self.__init__()
        for slot, value in state.items():
            setattr(self, slot, value)

    def addlat_for(self, mem_latency: int) -> list[int]:
        """Effective added latency per gid for a uniform memory model.

        ``mem_latency`` is ``mem_base + uniform_extra``; the table
        folds the three availability modes into a single per-gid add,
        so the hot loop computes ``avail = issue + addlat[gid]`` with
        no branching and no per-access memory-system call. Tables are
        cached per ``mem_latency`` and must not be mutated.
        """
        table = self._addlat_cache.get(mem_latency)
        if table is None:
            table = self.base_addlat.copy()
            for gid in self.memory_gids:
                table[gid] = mem_latency
            self._addlat_cache[mem_latency] = table
        return table

    def single_memory_unit(self) -> bool:
        """Whether every memory access lives on one unit.

        The speculative fixed point replays chunked model queries from
        the recorded access schedule; with a single issuing unit the
        replay's per-cycle chunks provably match the live engine's
        per-unit-per-cycle chunks (true for the DM — all accesses are
        AU work — and trivially for the SWSM). Reads ``mem_units``,
        the memory-owning-units table computed during lowering.
        """
        return len(self.mem_units) <= 1

    def steady(self) -> SteadyState | None:
        """The verified structural period, or None (cached)."""
        state = self._steady
        if state is _UNSET:
            state = self._find_steady()
            self._steady = state
        return state

    def _find_steady(self) -> SteadyState | None:
        total = self.total
        # Forward or self dependencies (malformed programs) break the
        # locality bounds the accelerator relies on.
        if total < 512 or self.min_dep_offset < 1:
            return None
        # Intern the per-gid structural signature: everything the
        # engine reads about an instruction except its address (with a
        # uniform memory model the address never affects timing).
        intern: dict[tuple, int] = {}
        sig = [0] * total
        unit_index = self.unit_index
        mode = self.mode
        lat = self.lat
        src_off = self.src_off
        for gid in range(total):
            key = (unit_index[gid], mode[gid], lat[gid], src_off[gid])
            code = intern.get(key)
            if code is None:
                code = len(intern)
                intern[key] = code
            sig[gid] = code
        buf = array("i", sig).tobytes()
        start = total // 4
        for probe_len in (64, 256, 1024):
            if start + 2 * probe_len >= total:
                break
            probe = buf[4 * start: 4 * (start + probe_len)]
            pos = buf.find(probe, 4 * start + 4)
            while pos != -1 and pos % 4:
                pos = buf.find(probe, pos + (4 - pos % 4))
            if pos == -1:
                continue
            period = pos // 4 - start
            if sig[start: total - period] != sig[start + period: total]:
                continue  # local echo, not a global period; widen probe
            # Extend the verified region backward past the prologue so
            # the engine can start skipping as early as possible.
            while start > 0 and sig[start - 1] == sig[start - 1 + period]:
                start -= 1
            repeats = max(1, -(-_MIN_STRIDE // period))
            stride = period * repeats
            if total - start < 3 * stride + self.dep_span + 64:
                return None
            counts = [0] * len(self.units)
            for gid in range(start, start + stride):
                counts[unit_index[gid]] += 1
            return SteadyState(
                start=start,
                period=stride,
                unit_counts=tuple(counts),
                dep_span=self.dep_span,
            )
        return None


def lower_program(program: MachineProgram) -> LoweredProgram:
    """Flatten ``program`` into its struct-of-arrays form.

    Prefer :meth:`MachineProgram.lowered`, which caches the result on
    the program; this function always builds a fresh instance.
    """
    total = program.num_instructions
    units = program.units
    low = LoweredProgram()
    low.total = total
    low.units = units
    low.n_srcs = [0] * total
    low.src_off = [()] * total
    low.mode = [0] * total
    low.lat = [0] * total
    low.addr = [0] * total
    low.unit_index = [0] * total
    low.orig_index = [-1] * total
    low.pair = [-1] * total
    low.delivers = bytearray(total)
    stream_gids: list[list[int]] = []
    pair_missing: list[tuple[int, str]] = []
    consumers: list[list[int]] = [[] for _ in range(total)]
    seen = bytearray(total)
    min_latency = 1
    min_dep_offset = total or 1
    dep_span = 0
    for ui, unit in enumerate(units):
        gids: list[int] = []
        for inst in program.stream(unit):
            gid = inst.gid
            if not 0 <= gid < total:
                raise SimulationError(
                    f"gid {gid} out of range; lowering must assign "
                    "contiguous gids"
                )
            if seen[gid]:
                raise SimulationError(f"duplicate gid {gid} in streams")
            seen[gid] = 1
            gids.append(gid)
            srcs = inst.srcs
            mode = KIND_MODE[inst.mem_kind]
            low.n_srcs[gid] = len(srcs)
            low.src_off[gid] = tuple(gid - dep for dep in srcs)
            low.mode[gid] = mode
            low.lat[gid] = inst.latency
            low.addr[gid] = inst.addr if inst.addr is not None else 0
            low.unit_index[gid] = ui
            low.orig_index[gid] = inst.orig_index
            if mode == MODE_LATENCY and inst.latency < min_latency:
                min_latency = inst.latency
            for dep in srcs:
                consumers[dep].append(gid)
                offset = gid - dep
                if offset < min_dep_offset:
                    min_dep_offset = offset
                if offset > dep_span:
                    dep_span = offset
            if inst.mem_kind in CONSUMER_KINDS:
                if srcs:
                    low.pair[gid] = srcs[0]
                else:
                    pair_missing.append((gid, inst.mem_kind.value))
            if inst.mem_kind in DELIVERING_KINDS:
                low.delivers[gid] = 1
        stream_gids.append(gids)
    low.stream_gids = stream_gids
    low.cons = [tuple(c) for c in consumers]
    low.base_addlat = [
        1 if m == MODE_ESTABLISH else v for m, v in zip(low.mode, low.lat)
    ]
    low.memory_gids = [g for g in range(total) if low.mode[g] == MODE_MEMORY]
    low.mem_units = tuple(
        sorted({low.unit_index[g] for g in low.memory_gids})
    )
    low.is_mem = bytearray(total)
    for g in low.memory_gids:
        low.is_mem[g] = 1
    low.min_latency = min_latency
    low.min_dep_offset = min_dep_offset
    low.dep_span = dep_span
    low.pair_missing = tuple(pair_missing)
    return low
