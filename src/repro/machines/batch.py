"""Batched sweep engine: N lanes of one program in one stepping loop.

A sweep varies *operating-point* knobs — window size, memory
differential, issue widths, memory-model variant — over one compiled
program. The scalar engine (:mod:`repro.machines.engine`) simulates
those points one at a time, paying the full Python dispatch/issue loop
per point. This module stacks N such variants (*lanes*) of the same
:class:`~repro.machines.lowered.LoweredProgram` into 2-D NumPy arrays
(``lane x gid`` and ``lane x window-slot``) and advances every lane in
one vectorized stepping loop:

* **per-lane cycle counters** — lanes are independent simulations, so
  there is no global clock: each step advances every live lane
  straight to its own next event time, exactly like the scalar
  event-driven loops skip idle cycles;
* **masked completion** — finished lanes drop out of every mask and
  stop costing work while the rest drain;
* **lane-wise steady-state skip arming** — each lane checkpoints its
  own scheduler fingerprint at the shared structural period
  boundaries (:meth:`LoweredProgram.steady`) and, on a match, shifts
  its remaining full periods in O(window + dep span) row operations —
  the same accelerator the scalar fast loop carries, per lane
  (docs/timing.md, "Periodic steady state");
* **batched memory queries** — uniform models fold into per-lane
  latency table rows; stateless models are answered by the same one
  up-front :meth:`~repro.memory.MemorySystem.latencies` call per lane
  the scalar path makes (so model-side counters stay bit-exact).

Stateful models, probe runs, unlimited windows and degenerate batches
fall back to the scalar :func:`~repro.machines.engine.simulate` per
lane — for stateful models that lands in the existing speculative
fixed point / chunked paths, so a mixed batch still produces exactly
the per-point results, just grouped.

Within a cycle the scalar engine issues oldest-first and its
within-cycle issue order only reaches a memory model through chunked
(stateful) queries; uniform/stateless lanes therefore schedule
identically whether slots are walked heap-ordered or selected by gid
rank, which is what makes the slot-matrix formulation below exact.
The parity suite (tests/test_engine_batch.py) and the differential
fuzzer (tools/engine_fuzz.py) hold every field of every lane's
:class:`~repro.machines.engine.SimulationResult` bit-equal to the
scalar engines.

NumPy is an optional dependency: without it every lane takes the
scalar fallback and results are unchanged — only the vectorized
throughput is lost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter

try:  # pragma: no cover - exercised implicitly by both branches
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback
    _np = None

from ..config import DEFAULT_LATENCIES, LatencyModel, UnitConfig
from ..errors import SimulationDeadlockError
from ..memory import CAP_STATELESS, MemorySystem
from ..obs.telemetry import RunTelemetry, add_counters, zero_counters
from ..partition.machine_program import MachineProgram, Unit
from . import engine as _engine
from .engine import SimulationResult, UnitStats
from .lowered import LoweredProgram

__all__ = ["BatchLane", "simulate_batch", "vector_eligible"]

#: Lanes per vectorized run; larger batches are chunked. Bounds the
#: lane-major array footprint together with `_ELEM_BUDGET`. Wide
#: chunks are what make the loop pay: the per-step numpy dispatch
#: overhead is fixed, so throughput grows with the sweep-axis width —
#: and the step count is set by the slowest lane, not the lane count,
#: so doubling the chunk width costs well under 2x wall clock.
_MAX_BATCH_LANES = 256

#: Upper bound on ``lanes x total`` elements per vectorized run (the
#: big per-gid arrays are int64: 16M elements ~ 128 MB each).
_ELEM_BUDGET = 16_000_000

#: Windows past this size stop paying for slot-matrix vectorization
#: (and unlimited windows would allocate program-sized slot arrays).
_MAX_BATCH_WINDOW = 1024

#: Sentinel "never" ready time; far above any reachable cycle count
#: yet small enough that ``INF + d_t`` cannot overflow int64.
_NEVER = 1 << 60

#: Checkpoint budget before a uniform-memory lane is evicted to the
#: scalar fallback. Lanes that settle into the steady state match
#: within one to three period boundaries across the corpus; one that
#: has not matched at twice that is almost certainly aperiodic at this
#: operating point and would step cycle-by-cycle to the end —
#: serializing every other lane behind the shared loop. Rerunning it
#: scalar from scratch is bit-exact (that is the fallback contract)
#: and strictly faster. Stateless-model lanes are never evicted (their
#: one up-front table query must not repeat); they keep the scalar
#: engine's ``_MAX_CHECKPOINTS`` budget instead.
_EVICT_CHECKPOINTS = 6


@dataclass(frozen=True)
class BatchLane:
    """One operating point of a batch: unit configs plus a memory model.

    The program, the latency model and the probe switches are shared
    by the whole batch; everything point-specific lives here. Each
    lane's ``memory`` must be a distinct model instance — lanes are
    independent simulations and the engine resets and queries each
    lane's model exactly as a scalar run would.
    """

    unit_configs: dict[Unit, UnitConfig]
    memory: MemorySystem


def simulate_batch(
    program: MachineProgram,
    lanes: list[BatchLane],
    latencies: LatencyModel = DEFAULT_LATENCIES,
    collect_issue_times: bool = False,
) -> list[SimulationResult]:
    """Simulate every lane of ``lanes`` over one program, bit-exactly.

    Returns one :class:`SimulationResult` per lane, positionally
    aligned, each identical to
    ``simulate(program, lane.unit_configs, lane.memory, latencies)``.
    Vectorizable lanes (uniform or stateless memory, bounded windows)
    run stacked in the 2-D stepping loop; the rest fall back to the
    scalar engine one lane at a time (counted in
    ``PERF_COUNTERS["batch_fallback_lanes"]``).
    """
    low = program.lowered()
    results: list[SimulationResult | None] = [None] * len(lanes)
    vector = [
        index for index, lane in enumerate(lanes)
        if _vectorizable(low, lane, latencies)
    ]
    if len(vector) < 2:
        vector = []
    cap = _lane_cap(low.total)
    ran_vector = False
    for start in range(0, len(vector), cap):
        chunk = vector[start: start + cap]
        if len(chunk) < 2:
            continue  # trailing singleton: scalar fallback below
        chunk_results = _run_vector(
            low, program, [lanes[i] for i in chunk], latencies,
            collect_issue_times,
        )
        for index, result in zip(chunk, chunk_results):
            results[index] = result
            if result is not None and result.telemetry is not None:
                # Per-lane telemetry is the source of truth; summing
                # the lane records reproduces the old chunk-level
                # global bumps exactly (batch_runs / batch_steps ride
                # on each chunk's first surviving lane).
                _engine.record_counters(result.telemetry.counters)
        ran_vector = True
    for index, lane in enumerate(lanes):
        if results[index] is None:
            result = _engine.simulate(
                program, lane.unit_configs, lane.memory, latencies,
                collect_issue_times=collect_issue_times,
            )
            if result.telemetry is not None:
                # The scalar run published its own counters; only the
                # fallback marker is new.
                counters = dict(result.telemetry.counters)
                counters["batch_fallback_lanes"] = (
                    counters.get("batch_fallback_lanes", 0) + 1
                )
                result = replace(
                    result,
                    telemetry=replace(result.telemetry, counters=counters),
                )
            results[index] = result
            _engine.record_counters({"batch_fallback_lanes": 1})
    if ran_vector:
        _engine.record_strategy("batch")
    return results  # type: ignore[return-value]


def vector_eligible(memory: MemorySystem, window: int | None) -> bool:
    """Cheap planner predicate: would a lane with this shape vectorize?

    The session's batch planner calls this *before* compiling anything:
    lanes that would only fall back to the scalar engine (stateful
    memory, unlimited or oversized windows, no NumPy) are better left
    on the per-point path, where a process pool can still spread them —
    grouping them into one batch job would serialize them on a single
    worker for no vectorization win. Conservative by design: a False
    here costs nothing but the old dispatch; the authoritative check is
    :func:`_vectorizable` at simulation time.
    """
    if _np is None or window is None or window > _MAX_BATCH_WINDOW:
        return False
    if memory.uniform_extra_latency() is not None:
        return True
    return memory.capability() == CAP_STATELESS


def _lane_cap(total: int) -> int:
    if total <= 0:
        return _MAX_BATCH_LANES
    return max(2, min(_MAX_BATCH_LANES, _ELEM_BUDGET // total))


def _vectorizable(
    low: LoweredProgram, lane: BatchLane, latencies: LatencyModel
) -> bool:
    """Whether a lane may join the 2-D loop (else: scalar fallback)."""
    if _np is None or low.total == 0 or low.min_latency < 1:
        return False
    for unit in low.units:
        config = lane.unit_configs.get(unit)
        if config is None or config.window > _MAX_BATCH_WINDOW:
            return False
    memory = lane.memory
    if memory.uniform_extra_latency() is not None:
        return True
    if not low.memory_gids:
        return True  # no accesses: any model degenerates to uniform
    return memory.capability() == CAP_STATELESS


def _np_tables(low: LoweredProgram):
    """NumPy views of the lowered arrays (cached on the program)."""
    tables = low._np_cache
    if tables is None:
        cons_cnt = _np.fromiter(
            (len(c) for c in low.cons), count=low.total, dtype=_np.int64
        )
        cons_off = _np.zeros(low.total + 1, dtype=_np.int64)
        _np.cumsum(cons_cnt, out=cons_off[1:])
        cons_flat = _np.fromiter(
            (c for row in low.cons for c in row),
            count=int(cons_off[-1]), dtype=_np.int64,
        )
        tables = {
            # Narrow dtypes: operand counts are tiny and per-access
            # latencies fit comfortably in 32 bits; the lane-major
            # tiles of these tables dominate the setup footprint, so
            # halving them halves the page-faulted setup cost.
            "n_srcs": _np.asarray(low.n_srcs, dtype=_np.int16),
            "base_addlat": _np.asarray(low.base_addlat, dtype=_np.int32),
            "memory_gids": _np.asarray(low.memory_gids, dtype=_np.int64),
            "unit_index": _np.asarray(low.unit_index, dtype=_np.int16),
            "cons_cnt": cons_cnt,
            "cons_off": cons_off,
            "cons_flat": cons_flat,
            "streams": [
                _np.asarray(gids, dtype=_np.int64)
                for gids in low.stream_gids
            ],
        }
        low._np_cache = tables
    return tables


def _lane_tables(low, lanes, latencies, tables):
    """Per-lane effective added-latency rows (lane x gid)."""
    n_lanes = len(lanes)
    mem_base = latencies.mem_base
    tab = _np.tile(tables["base_addlat"], (n_lanes, 1))
    memory_gids = tables["memory_gids"]
    uniform_rows: list[int] = []
    uniform_vals: list[int] = []
    for index, lane in enumerate(lanes):
        lane.memory.reset()
        if not len(memory_gids):
            continue
        uniform = lane.memory.uniform_extra_latency()
        if uniform is not None:
            uniform_rows.append(index)
            uniform_vals.append(mem_base + uniform)
        else:
            # Same single up-front query the scalar stateless path
            # makes, so model-side stats stay bit-identical.
            addr = low.addr
            extras = lane.memory.latencies_array(
                [addr[gid] for gid in low.memory_gids], 0
            )
            tab[index, memory_gids] = mem_base + _np.asarray(
                extras, dtype=_np.int64
            )
    if uniform_rows:
        # One 2-D scatter for every uniform lane at once.
        rows = _np.asarray(uniform_rows, dtype=_np.int64)
        vals = _np.asarray(uniform_vals, dtype=_np.int64)
        tab[rows[:, None], memory_gids] = vals[:, None]
    return tab


class _LaneSkip:
    """Per-lane steady-state checkpoint state (mirrors the scalar skip)."""

    __slots__ = (
        "start", "next_boundary", "prev_fp", "prev_boundary", "prev_t",
        "prev_icyc", "prev_issued", "checkpoints",
    )

    def __init__(self, start: int, period: int) -> None:
        self.start = start
        self.next_boundary = start + period
        self.prev_fp = None
        self.prev_boundary = -1
        self.prev_t = -1
        self.prev_icyc: tuple[int, ...] = ()
        self.prev_issued: tuple[int, ...] = ()
        self.checkpoints = 0


def _lane_steady_starts(low, tab, steady):
    """Verified per-lane skip starts, or None per lane (table check).

    The structural period ignores addresses, so each lane's latency
    table must itself repeat for that lane's skip to stay cycle-exact
    — the same verified-start raise the scalar fast loop applies,
    vectorized over the table row (uniform rows pass trivially).
    """
    total = low.total
    period = steady.period
    floor = 3 * period + steady.dep_span + 64
    starts: list[int | None] = []
    for row in tab:
        head = row[steady.start: total - period]
        tail = row[steady.start + period: total]
        mismatch = _np.nonzero(head != tail)[0]
        if mismatch.size:
            ok_from = steady.start + int(mismatch[-1]) + 1
        else:
            ok_from = steady.start
        starts.append(ok_from if total - ok_from >= floor else None)
    return starts


def _run_vector(
    low: LoweredProgram,
    program: MachineProgram,
    lanes: list[BatchLane],
    latencies: LatencyModel,
    collect_issue_times: bool,
) -> list["SimulationResult | None"]:
    """The 2-D stepping loop over one chunk of vectorizable lanes.

    ``None`` entries mark lanes evicted to the scalar fallback (their
    steady-state fingerprint never matched within the batch budget);
    the caller re-simulates those whole.
    """
    np = _np
    started = perf_counter()
    total = low.total
    units = low.units
    nu = len(units)
    n_lanes = len(lanes)
    tables = _np_tables(low)
    tab = _lane_tables(low, lanes, latencies, tables)
    cons_cnt = tables["cons_cnt"]
    cons_off = tables["cons_off"]
    cons_flat = tables["cons_flat"]
    unit_index = tables["unit_index"]
    streams = tables["streams"]
    slen = [int(s.size) for s in streams]

    # Lane-major per-gid state, flat views for integer-key scatters.
    pending = np.tile(tables["n_srcs"], (n_lanes, 1))
    pend_flat = pending.ravel()
    opmax = np.zeros((n_lanes, total), dtype=np.int64)
    opmax_flat = opmax.ravel()
    slot_of = np.full((n_lanes, total), -1, dtype=np.int32)
    slot_flat = slot_of.ravel()
    dispatched = np.zeros((n_lanes, total), dtype=bool)
    disp_flat = dispatched.ravel()
    issue_t = None
    if collect_issue_times:
        issue_t = np.full((n_lanes, total), -1, dtype=np.int64)
        issue_flat = issue_t.ravel()

    # Per-unit slot matrices: gid and ready time per window slot. A
    # slot is free when its gid is -1; a held slot with pending
    # operands keeps ready time _NEVER until its last operand lands.
    widths = [
        np.asarray(
            [lane.unit_configs[units[u]].width for lane in lanes],
            dtype=np.int64,
        )
        for u in range(nu)
    ]
    windows = [
        np.asarray(
            [lane.unit_configs[units[u]].window for lane in lanes],
            dtype=np.int64,
        )
        for u in range(nu)
    ]
    uniform_width = [
        int(widths[u].min()) == int(widths[u].max()) for u in range(nu)
    ]
    slots = [int(windows[u].max()) for u in range(nu)]
    sgid = [np.full((n_lanes, slots[u]), -1, dtype=np.int64) for u in range(nu)]
    sready = [
        np.full((n_lanes, slots[u]), _NEVER, dtype=np.int64)
        for u in range(nu)
    ]
    ptr = [np.zeros(n_lanes, dtype=np.int64) for _ in range(nu)]
    occ = [np.zeros(n_lanes, dtype=np.int64) for _ in range(nu)]
    issued_cnt = [np.zeros(n_lanes, dtype=np.int64) for _ in range(nu)]
    icyc = [np.zeros(n_lanes, dtype=np.int64) for _ in range(nu)]
    last_issue = [np.zeros(n_lanes, dtype=np.int64) for _ in range(nu)]

    t = np.zeros(n_lanes, dtype=np.int64)
    horizon = np.zeros(n_lanes, dtype=np.int64)
    fmax = np.full(n_lanes, -1, dtype=np.int64)
    lane_fill: list[tuple[int, int] | None] = [None] * n_lanes
    # Per-lane steady-skip contributions (skips, skipped instructions)
    # for the lane telemetry records; merged into the global view by
    # the caller, lane by lane.
    lane_skip: list[tuple[int, int]] = [(0, 0)] * n_lanes
    evicted: set[int] = set()
    memory_gids = tables["memory_gids"]
    uniform_lane = [
        not len(memory_gids)
        or lane.memory.uniform_extra_latency() is not None
        for lane in lanes
    ]

    # Lane-wise steady-state skip arming.
    steady = None
    if (
        total >= _engine._SKIP_MIN_TOTAL
        and _engine._period_skip_enabled()
    ):
        steady = low.steady()
    skip: list[_LaneSkip | None] = [None] * n_lanes
    # Next checkpoint boundary per lane (_NEVER once disarmed): one
    # vector compare per step finds the lanes whose dispatch frontier
    # crossed a period boundary, however many lanes are armed.
    nb_arr = np.full(n_lanes, _NEVER, dtype=np.int64)
    armed = 0
    if steady is not None:
        for index, start in enumerate(
            _lane_steady_starts(low, tab, steady)
        ):
            if start is not None:
                skip[index] = _LaneSkip(start, steady.period)
                nb_arr[index] = start + steady.period
                armed += 1

    def lane_fingerprint(lane: int, boundary: int):
        """Scheduler state of one lane relative to (boundary, t).

        The batch twin of the scalar ``_fast_fingerprint``: per-unit
        stream positions, occupancies and live (gid, ready) slot pairs
        — sorted by gid so slot indices, which are allocation
        artefacts, never enter the fingerprint — plus the relative
        pending/opmax/in-window state of every gid between the oldest
        live instruction and the dispatch frontier plus the dependence
        span.
        """
        tl = int(t[lane])
        lo = total
        for u in range(nu):
            live = sgid[u][lane][sgid[u][lane] >= 0]
            if live.size:
                lo = min(lo, int(live.min()))
            position = int(ptr[u][lane])
            if position < slen[u]:
                lo = min(lo, int(streams[u][position]))
        if lo == total:
            return None, lo, lo - 1
        hi = int(fmax[lane]) + steady.dep_span
        if hi >= total:
            return None, lo, hi
        unit_part = []
        for u in range(nu):
            position = int(ptr[u][lane])
            next_gid = (
                int(streams[u][position]) - boundary
                if position < slen[u] else -total
            )
            g_row = sgid[u][lane]
            r_row = sready[u][lane]
            live = np.nonzero(g_row >= 0)[0]
            g = g_row[live]
            r = r_row[live]
            order = np.argsort(g)  # gids are unique per lane
            rel_g = g[order] - boundary
            # Held (operand-pending) slots keep the _NEVER sentinel;
            # matured leftovers may sit below t, so times stay signed.
            rel_r = r[order]
            rel_r = np.where(rel_r < _NEVER, rel_r - tl, _NEVER)
            unit_part.append((
                next_gid, int(occ[u][lane]),
                rel_g.tobytes(), rel_r.tobytes(),
            ))
        region = slice(lo, hi + 1)
        om = opmax[lane, region]
        rel_om = np.where(om > 0, om - tl, _NEVER)
        in_window = slot_of[lane, region] >= 0
        fp = (
            lo - boundary,
            tuple(unit_part),
            pending[lane, region].tobytes(),
            rel_om.tobytes(),
            in_window.tobytes(),
        )
        return fp, lo, hi

    def lane_checkpoint(lane: int) -> str:
        """Fingerprint one lane at a crossed boundary; maybe shift it.

        Returns ``"armed"`` to keep checkpointing, ``"disarm"`` once
        the lane skipped (or ran out of scalar-budget checkpoints),
        and ``"evict"`` when a uniform lane blew the batch checkpoint
        budget and should finish on the scalar engine instead.
        """
        sk = skip[lane]
        boundary = sk.next_boundary
        period = steady.period
        while sk.next_boundary <= fmax[lane]:
            sk.next_boundary += period
        nb_arr[lane] = sk.next_boundary
        fp, lo, hi = lane_fingerprint(lane, boundary)
        matched = (
            fp is not None
            and fp == sk.prev_fp
            and boundary - sk.prev_boundary == period
            and t[lane] > sk.prev_t
            and lo >= sk.start
            and all(
                int(issued_cnt[u][lane]) - sk.prev_issued[u]
                == steady.unit_counts[u]
                for u in range(nu)
            )
        )
        if matched:
            dt = int(t[lane]) - sk.prev_t
            margin = 2 * period + steady.dep_span + 8
            k = (total - 1 - int(fmax[lane]) - margin) // period
            if k >= 1:
                d_gid = k * period
                d_t = k * dt
                for u in range(nu):
                    g_row = sgid[u][lane]
                    r_row = sready[u][lane]
                    live = g_row >= 0
                    g_row[live] += d_gid
                    r_row[live & (r_row < _NEVER)] += d_t
                    advance = k * steady.unit_counts[u]
                    ptr[u][lane] += advance
                    issued_cnt[u][lane] += advance
                    icyc[u][lane] += k * (
                        int(icyc[u][lane]) - sk.prev_icyc[u]
                    )
                source = slice(lo, hi + 1)
                target = slice(lo + d_gid, hi + 1 + d_gid)
                pending[lane, target] = pending[lane, source].copy()
                om = opmax[lane, source].copy()
                opmax[lane, target] = np.where(om > 0, om + d_t, 0)
                dispatched[lane, target] = dispatched[lane, source].copy()
                slot_of[lane, target] = slot_of[lane, source].copy()
                t[lane] += d_t
                fmax[lane] += d_gid
                # Fill telescopes by ONE period (every still-unissued
                # instruction issues ``dt`` after its one-period-earlier
                # counterpart), matching the scalar fast loop.
                lane_fill[lane] = (period, dt)
                lane_skip[lane] = (1, d_gid)
            return "disarm"
        sk.prev_fp = fp
        sk.prev_boundary = boundary
        sk.prev_t = int(t[lane])
        sk.prev_icyc = tuple(int(icyc[u][lane]) for u in range(nu))
        sk.prev_issued = tuple(int(issued_cnt[u][lane]) for u in range(nu))
        sk.checkpoints += 1
        if uniform_lane[lane]:
            if sk.checkpoints >= _EVICT_CHECKPOINTS:
                return "evict"
        elif sk.checkpoints >= _engine._MAX_CHECKPOINTS:
            return "disarm"
        return "armed"

    # Scratch buffers reused across steps; the arange cache serves the
    # segment bookkeeping of both scatter phases (read-only slices).
    force_next = np.zeros(n_lanes, dtype=bool)
    progress = np.zeros(n_lanes, dtype=bool)
    arange_buf = np.arange(1024, dtype=np.int64)

    def arange(n: int):
        nonlocal arange_buf
        if n > arange_buf.size:
            arange_buf = np.arange(
                max(n, 2 * arange_buf.size), dtype=np.int64
            )
        return arange_buf[:n]

    steps = 0
    while True:
        steps += 1
        force_next.fill(False)
        progress.fill(False)
        tcol = t[:, None]
        for u in range(nu):
            su_gid = sgid[u]
            su_ready = sready[u]
            wid = widths[u]
            # Issue phase: every slot whose ready time has matured, cut
            # to the per-lane width by gid rank (oldest first). The
            # common case — every matured batch fits its lane's width —
            # needs no ranking at all.
            mask = su_ready <= tcol
            counts = mask.sum(axis=1)
            over = counts > wid
            if over.any():
                force_next |= over
                rows = np.nonzero(over)[0]
                key = np.where(
                    mask[rows], su_gid[rows], np.int64(1 << 62)
                )
                issue = mask.copy()
                # Keep the `w` smallest gids per over-width row
                # (oldest first; gids are unique, so the w-th order
                # statistic is an exact cutoff). Rows group by their
                # width so each partition call uses one scalar kth —
                # with one shared width (the common sweep shape) that
                # is a single partition over all over-width rows.
                wids_r = wid[rows]
                if uniform_width[u]:
                    w = int(wids_r[0])
                    kth = np.partition(key, w - 1, axis=1)[:, w - 1: w]
                    issue[rows] = mask[rows] & (key <= kth)
                else:
                    for w in np.unique(wids_r):
                        sel = wids_r == w
                        kth = np.partition(key[sel], w - 1, axis=1)[
                            :, w - 1: w
                        ]
                        issue[rows[sel]] = mask[rows[sel]] & (
                            key[sel] <= kth
                        )
            else:
                issue = mask
            li, si = np.nonzero(issue)
            if li.size:
                gids = su_gid[li, si]
                tl = t[li]
                avail = tl + tab[li, gids]
                np.maximum.at(horizon, li, avail)
                if issue_t is not None:
                    issue_flat[li * total + gids] = tl
                su_gid[li, si] = -1
                su_ready[li, si] = _NEVER
                slot_flat[li * total + gids] = -1
                lane_counts = np.bincount(li, minlength=n_lanes)
                active = lane_counts > 0
                issued_cnt[u] += lane_counts
                icyc[u][active] += 1
                last_issue[u][active] = t[active]
                occ[u] -= lane_counts
                progress |= active
                # Consumer updates: decrement pending operand counts
                # and raise operand-availability maxima through the
                # CSR consumer table, then wake every consumer that
                # became ready inside a window.
                counts_e = cons_cnt[gids]
                n_edges = int(counts_e.sum())
                if n_edges:
                    seg = arange(gids.size).repeat(counts_e)
                    starts = counts_e.cumsum() - counts_e
                    e_cons = cons_flat[
                        (cons_off[gids] - starts).repeat(counts_e)
                        + arange(n_edges)
                    ]
                    e_lane = li[seg]
                    e_key = e_lane * total + e_cons
                    np.subtract.at(pend_flat, e_key, 1)
                    np.maximum.at(opmax_flat, e_key, avail[seg])
                    e_slot = slot_flat[e_key]
                    wake = (pend_flat[e_key] == 0) & (e_slot >= 0)
                    if wake.any():
                        w_lane = e_lane[wake]
                        w_slot = e_slot[wake]
                        w_time = opmax_flat[e_key[wake]]
                        if nu == 1:
                            sready[0][w_lane, w_slot] = w_time
                        else:
                            w_unit = unit_index[e_cons[wake]]
                            for uu in range(nu):
                                m = w_unit == uu
                                if m.any():
                                    sready[uu][w_lane[m], w_slot[m]] = (
                                        w_time[m]
                                    )
            # Dispatch phase: in order, up to width, into freed slots.
            room = windows[u] - occ[u]
            n = np.minimum(np.minimum(wid, room), slen[u] - ptr[u])
            dl = np.nonzero(n > 0)[0]
            if dl.size:
                nd = n[dl]
                n_disp = int(nd.sum())
                ends = nd.cumsum()
                d_gids = streams[u][
                    (ptr[u][dl] - (ends - nd)).repeat(nd)
                    + arange(n_disp)
                ]
                # Allocate the first nd[l] free slots of each lane;
                # nonzero walks rows in order, so the (lane, slot)
                # pairs align with the (lane, gid) pairs above.
                free = su_gid[dl] == -1
                free_rank = free.cumsum(axis=1)
                take = free & (free_rank <= nd[:, None])
                fl, fs = np.nonzero(take)
                d_lane = dl[fl]
                d_key = d_lane * total + d_gids
                su_gid[d_lane, fs] = d_gids
                disp_flat[d_key] = True
                slot_flat[d_key] = fs
                ready_at = np.where(
                    pend_flat[d_key] == 0,
                    np.maximum(opmax_flat[d_key], t[d_lane] + 1),
                    _NEVER,
                )
                su_ready[d_lane, fs] = ready_at
                ptr[u][dl] += nd
                occ[u][dl] += nd
                progress[dl] = True
                fmax[dl] = np.maximum(fmax[dl], d_gids[ends - 1])
                blocked = (
                    (nd == wid[dl])
                    & (ptr[u][dl] < slen[u])
                    & (occ[u][dl] < windows[u][dl])
                )
                force_next[dl[blocked]] = True

        # Steady-state checkpoints for lanes whose dispatch frontier
        # crossed a period boundary this step.
        if armed:
            for lane in np.nonzero(fmax >= nb_arr)[0]:
                lane = int(lane)
                verdict = lane_checkpoint(lane)
                if verdict == "armed":
                    continue
                skip[lane] = None
                nb_arr[lane] = _NEVER
                armed -= 1
                if verdict == "evict":
                    # Retire the lane from every mask; the scalar
                    # fallback in simulate_batch re-runs it whole.
                    evicted.add(lane)
                    for u in range(nu):
                        ptr[u][lane] = slen[u]
                        occ[u][lane] = 0
                        sgid[u][lane] = -1
                        sready[u][lane] = _NEVER

        # Per-lane clock advance: straight to each lane's next event.
        outstanding = occ[0] + (slen[0] - ptr[0])
        nxt = sready[0].min(axis=1)
        for u in range(1, nu):
            outstanding = outstanding + occ[u] + (slen[u] - ptr[u])
            np.minimum(nxt, sready[u].min(axis=1), out=nxt)
        alive = outstanding > 0
        if not alive.any():
            break
        # Lanes with leftover matured slots (over-width) or blocked
        # width re-scan next cycle; their stale ready times would
        # otherwise hold the clock in the past. Everything scheduled
        # this step lies at >= t + 1, so t + 1 is exact, not a floor.
        nxt = np.where(force_next, t + 1, nxt)
        stuck = alive & (nxt >= _NEVER)
        if stuck.any():
            dead = stuck & ~progress
            if dead.any():
                lane = int(np.nonzero(dead)[0][0])
                raise SimulationDeadlockError(
                    f"no unit can make progress at cycle {int(t[lane])} "
                    f"with {int(outstanding[lane])} instructions "
                    f"outstanding (batch lane {lane})"
                )
            # Progress happened but nothing is scheduled: re-scan next
            # cycle (only reachable through dispatch races).
            nxt = np.where(stuck, t + 1, nxt)
        t = np.where(alive, nxt, t)

    elapsed = perf_counter() - started
    survivors = n_lanes - len(evicted)
    # Counter attribution: each surviving lane carries batch_lanes=1
    # plus its own steady-skip contribution; the chunk-level
    # batch_runs/batch_steps ride on the chunk's first surviving lane,
    # so summing lane records reproduces the chunk totals exactly.
    chunk_counters_pending = True
    results = []
    for index, lane in enumerate(lanes):
        if index in evicted:
            results.append(None)
            continue
        issue_times = None
        if issue_t is not None:
            row = issue_t[index]
            if lane_fill[index] is not None:
                # Fill the issue times of the skipped iterations by
                # telescoping, exactly like the scalar fast loop.
                d_gid, d_t = lane_fill[index]
                values = row.tolist()
                for gid in range(total):
                    if values[gid] < 0:
                        values[gid] = values[gid - d_gid] + d_t
                issue_times = {gid: values[gid] for gid in range(total)}
            else:
                issue_times = {
                    gid: int(row[gid]) for gid in range(total)
                }
        unit_stats = {
            units[u]: UnitStats(
                unit=units[u],
                instructions=int(issued_cnt[u][index]),
                last_issue=int(last_issue[u][index]),
                issue_cycles=int(icyc[u][index]),
            )
            for u in range(nu)
        }
        counters = zero_counters()
        counters["batch_lanes"] = 1
        skips, skipped = lane_skip[index]
        add_counters(
            counters,
            {"steady_skips": skips, "skipped_instructions": skipped},
        )
        if chunk_counters_pending:
            add_counters(counters, {"batch_runs": 1, "batch_steps": steps})
            chunk_counters_pending = False
        results.append(SimulationResult(
            name=program.name,
            cycles=int(horizon[index]),
            instructions=total,
            unit_stats=unit_stats,
            issue_times=issue_times,
            meta={"memory": lane.memory.describe(), **program.meta},
            telemetry=RunTelemetry(
                strategy="batch",
                counters=counters,
                memory_stats=dict(lane.memory.stats()),
                wall_seconds=elapsed / survivors if survivors else 0.0,
                sim_cycles=int(horizon[index]),
            ),
        ))
    return results
