"""The access decoupled machine (DM).

Two loosely-coupled out-of-order units — the address unit (AU) and the
data unit (DU) — joined by the decoupled memory. The AU executes the
access stream (address arithmetic, load issues, store addresses) and
slips dynamically ahead of the DU, which is what makes the DM an
aggressive data prefetcher.
"""

from __future__ import annotations

from ..config import DEFAULT_LATENCIES, DMConfig, LatencyModel
from ..ir import Program
from ..memory import FixedLatencyMemory, MemorySystem
from ..partition import MachineProgram, Unit, partition_dm
from .engine import SimulationResult, simulate

__all__ = ["DecoupledMachine"]


class DecoupledMachine:
    """Simulates DM executions of compiled (partitioned) programs."""

    def __init__(self, config: DMConfig) -> None:
        self.config = config

    @staticmethod
    def compile(
        program: Program, latencies: LatencyModel = DEFAULT_LATENCIES
    ) -> MachineProgram:
        """Partition an architectural program into AU/DU streams.

        Compilation is window-independent: compile once, then simulate
        across window sizes and memory differentials.
        """
        return partition_dm(program, latencies)

    def run(
        self,
        machine_program: MachineProgram,
        memory: MemorySystem | None = None,
        memory_differential: int | None = None,
        probe_buffers: bool = False,
        probe_esw: bool = False,
        collect_issue_times: bool = False,
    ) -> SimulationResult:
        """Simulate a compiled program on this DM configuration.

        Exactly one of ``memory`` (a full memory model) or
        ``memory_differential`` (the paper's fixed-cost model) may be
        given; with neither, the differential defaults to zero.
        """
        if memory is not None and memory_differential is not None:
            raise ValueError(
                "pass either a memory model or a memory differential, not both"
            )
        if memory is None:
            memory = FixedLatencyMemory(memory_differential or 0)
        return simulate(
            machine_program,
            unit_configs={Unit.AU: self.config.au, Unit.DU: self.config.du},
            memory=memory,
            latencies=self.config.latencies,
            probe_buffers=probe_buffers,
            probe_esw=probe_esw,
            collect_issue_times=collect_issue_times,
        )

    def run_program(
        self,
        program: Program,
        memory: MemorySystem | None = None,
        memory_differential: int | None = None,
        **probe_kwargs: bool,
    ) -> SimulationResult:
        """Compile and run an architectural program in one step."""
        compiled = self.compile(program, self.config.latencies)
        return self.run(
            compiled,
            memory=memory,
            memory_differential=memory_differential,
            **probe_kwargs,
        )
