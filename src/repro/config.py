"""Machine configurations and the operation latency model.

The paper (Jones & Topham, MICRO-30 1997) studies two machines:

* the access decoupled machine (**DM**): two out-of-order units, the
  address unit (AU) and the data unit (DU), each with its own
  instruction window and issue width;
* the single-window superscalar machine (**SWSM**): one out-of-order
  unit whose issue width equals the DM's *combined* issue width.

Figure captions in the paper give the combined issue width as ``CIW=9``.
The per-unit split is not legible in the source text; following the
authors' companion study on restricted instruction issue we default to
an AU width of 4 and a DU width of 5 (see README.md, documented
substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

__all__ = [
    "LatencyModel",
    "DEFAULT_LATENCIES",
    "DMConfig",
    "SWSMConfig",
    "UnitConfig",
    "DEFAULT_MEMORY_DIFFERENTIAL",
    "MEMORY_DIFFERENTIALS",
]

#: The paper's headline memory differential; the text motivates it as
#: comparable to a Pentium Pro second-level cache miss (~60 cycles).
DEFAULT_MEMORY_DIFFERENTIAL = 60

#: The sweep of memory differentials used by the equivalent-window-ratio
#: figures (legends read md=0, md=10, ..., md=60).
MEMORY_DIFFERENTIALS = (0, 10, 20, 30, 40, 50, 60)


@dataclass(frozen=True)
class LatencyModel:
    """Operation latencies in cycles.

    The paper states that integer and address computations cost one
    cycle, floating-point operations complete in a few cycles (we use
    three), and that divides/intrinsics are excluded from that range
    (we model them with a longer configurable latency). A request that
    hits the decoupled memory or the prefetch buffer takes one cycle.
    """

    int_op: int = 1
    fp_op: int = 3
    fp_div: int = 12
    copy: int = 1
    receive: int = 1
    access: int = 1
    store: int = 1
    #: Base memory-system access cost; the memory differential is added
    #: on top of this, so a load issued at cycle ``s`` delivers at
    #: ``s + mem_base + md``.
    mem_base: int = 1

    def __post_init__(self) -> None:
        for name in (
            "int_op",
            "fp_op",
            "fp_div",
            "copy",
            "receive",
            "access",
            "store",
            "mem_base",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(
                    f"latency {name!r} must be a positive integer, got {value!r}"
                )


DEFAULT_LATENCIES = LatencyModel()


@dataclass(frozen=True)
class UnitConfig:
    """One out-of-order unit: an instruction window plus an issue width.

    ``window`` is the number of reservation slots available for
    re-ordering; ``width`` bounds both dispatch and issue per cycle.
    """

    window: int
    width: int
    name: str = "unit"

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.width < 1:
            raise ConfigError(f"issue width must be >= 1, got {self.width}")


@dataclass(frozen=True)
class DMConfig:
    """Configuration of the access decoupled machine.

    The paper's x-axis "window size" for the DM is the size of *each*
    unit's window (the machine has two windows of that size); use
    :meth:`symmetric` to build that standard configuration.
    """

    au: UnitConfig
    du: UnitConfig
    latencies: LatencyModel = field(default=DEFAULT_LATENCIES)

    @classmethod
    def symmetric(
        cls,
        window: int,
        au_width: int = 4,
        du_width: int = 5,
        latencies: LatencyModel = DEFAULT_LATENCIES,
    ) -> "DMConfig":
        """Both units get the same window size (the paper's convention)."""
        return cls(
            au=UnitConfig(window=window, width=au_width, name="AU"),
            du=UnitConfig(window=window, width=du_width, name="DU"),
            latencies=latencies,
        )

    @property
    def combined_issue_width(self) -> int:
        return self.au.width + self.du.width

    def with_window(self, window: int) -> "DMConfig":
        """Return a copy with both windows resized to ``window``."""
        return replace(
            self,
            au=replace(self.au, window=window),
            du=replace(self.du, window=window),
        )


@dataclass(frozen=True)
class SWSMConfig:
    """Configuration of the single-window superscalar machine."""

    window: int
    width: int = 9
    latencies: LatencyModel = field(default=DEFAULT_LATENCIES)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.width < 1:
            raise ConfigError(f"issue width must be >= 1, got {self.width}")

    def with_window(self, window: int) -> "SWSMConfig":
        return replace(self, window=window)
