"""The HTTP face of the service: submit → poll → fetch over plain JSON.

Built entirely on the stdlib (:class:`http.server.ThreadingHTTPServer`)
— no new runtime dependencies. The endpoints:

==========================================  =====================================
``GET  /``                                  endpoint index
``GET  /health``                            liveness + queue occupancy
``POST /v1/jobs``                           submit ``{"kind", "spec", "priority"}``
``GET  /v1/jobs``                           list jobs (submission order)
``GET  /v1/jobs/<id>``                      poll one job's state
``GET  /v1/jobs/<id>/result``               fetch a finished job's rows
``DELETE /v1/jobs/<id>``                    cancel a still-queued job
``GET  /v1/results``                        rows straight from the result store
``GET  /v1/artifacts/<path>``               pages of a built ``repro report`` site
``GET  /v1/metrics``                        Prometheus text: jobs, queue, requests
==========================================  =====================================

Status mapping: a malformed spec (anything raising from the library's
error hierarchy at submit time) is a 400; an unknown job id is a 404;
fetching a result that is still queued/running is a 202 with
``Retry-After``; a saturated queue — or a draining server — is a 503
with ``Retry-After`` (explicit backpressure, never unbounded
queueing); a failed job's result is a 500 carrying the job error; a
cancelled job's result is a 410.

Shutdown: SIGTERM and SIGINT both trigger a graceful drain (stop
accepting, cancel queued jobs, wait for running jobs up to the drain
timeout) before the listener closes. See docs/service.md for the
protocol walkthrough and a curl quickstart.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from ..errors import QueueFullError, ReproError, StoreError
from ..machines.engine import counters_snapshot
from ..obs.metrics import MetricsRegistry
from ..report.store import ResultStore
from .jobs import DONE, FAILED, JOB_STATES, JobScheduler, ServiceConfig

__all__ = ["ReproServer", "serve", "start_server", "stop_server"]

_MAX_BODY_BYTES = 4 << 20  # a spec, not a dataset

_CONTENT_TYPES = {
    ".html": "text/html; charset=utf-8",
    ".md": "text/markdown; charset=utf-8",
    ".svg": "image/svg+xml",
    ".json": "application/json",
    ".css": "text/css; charset=utf-8",
    ".txt": "text/plain; charset=utf-8",
}

_INDEX = {
    "service": "repro simulation-as-a-service",
    "endpoints": [
        "GET /health",
        "POST /v1/jobs",
        "GET /v1/jobs",
        "GET /v1/jobs/<id>",
        "GET /v1/jobs/<id>/result",
        "DELETE /v1/jobs/<id>",
        "GET /v1/results",
        "GET /v1/artifacts/<path>",
        "GET /v1/metrics",
    ],
    "states": list(JOB_STATES),
}


def _endpoint_label(method: str, parts: tuple[str, ...]) -> str:
    """Collapse a request path to its route pattern for metric labels.

    Ids and artefact paths are unbounded, so labelling by the raw path
    would make the request-counter cardinality unbounded too.
    """
    if parts == ():
        route = "/"
    elif parts in (("health",), ("v1", "health")):
        route = "/health"
    elif parts == ("v1", "jobs"):
        route = "/v1/jobs"
    elif len(parts) == 3 and parts[:2] == ("v1", "jobs"):
        route = "/v1/jobs/<id>"
    elif (
        len(parts) == 4
        and parts[:2] == ("v1", "jobs")
        and parts[3] == "result"
    ):
        route = "/v1/jobs/<id>/result"
    elif parts == ("v1", "results"):
        route = "/v1/results"
    elif len(parts) >= 2 and parts[:2] == ("v1", "artifacts"):
        route = "/v1/artifacts/<path>"
    elif parts == ("v1", "metrics"):
        route = "/v1/metrics"
    else:
        route = "<other>"
    return f"{method} {route}"


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a scheduler and its config."""

    daemon_threads = True

    def __init__(self, config: ServiceConfig, scheduler: JobScheduler):
        self.config = config
        self.scheduler = scheduler
        handler = _make_handler(config, scheduler)
        super().__init__((config.host, config.port), handler)


def _make_handler(config: ServiceConfig, scheduler: JobScheduler):
    site_dir = (
        Path(config.site_dir).resolve() if config.site_dir else None
    )
    metrics = MetricsRegistry()

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve"
        protocol_version = "HTTP/1.1"
        timeout = config.request_timeout  # per-connection socket timeout

        # -- plumbing -------------------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # requests are not worth a stderr line each

        def send_response(self, code, message=None):
            self._observed_status = code
            super().send_response(code, message)

        def _timed(self, handler) -> None:
            """Run one verb handler, recording latency + final status."""
            started = perf_counter()
            self._observed_status = 0
            try:
                handler()
            finally:
                parts, _ = self._route()
                metrics.observe_request(
                    _endpoint_label(self.command, parts),
                    self._observed_status,
                    perf_counter() - started,
                )

        def _send_json(
            self, status: int, payload: dict, headers: dict | None = None
        ) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, str(value))
            self.end_headers()
            self.wfile.write(body)

        def _error(
            self,
            status: int,
            message: str,
            kind: str = "ServiceError",
            headers: dict | None = None,
        ) -> None:
            self._send_json(
                status, {"error": message, "type": kind}, headers
            )

        def _route(self) -> tuple[tuple[str, ...], dict]:
            split = urlsplit(self.path)
            parts = tuple(p for p in split.path.split("/") if p)
            query = {
                key: values[-1]
                for key, values in parse_qs(split.query).items()
            }
            return parts, query

        # -- verbs ----------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            self._timed(self._get)

        def do_POST(self) -> None:  # noqa: N802 - stdlib casing
            self._timed(self._post)

        def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
            self._timed(self._delete)

        def _get(self) -> None:
            parts, query = self._route()
            if parts == ():
                self._send_json(200, _INDEX)
            elif parts in (("health",), ("v1", "health")):
                self._send_json(200, self._health())
            elif parts == ("v1", "jobs"):
                self._send_json(
                    200,
                    {"jobs": [j.describe() for j in scheduler.jobs()]},
                )
            elif len(parts) == 3 and parts[:2] == ("v1", "jobs"):
                self._job_status(parts[2])
            elif (
                len(parts) == 4
                and parts[:2] == ("v1", "jobs")
                and parts[3] == "result"
            ):
                self._job_result(parts[2])
            elif parts == ("v1", "results"):
                self._results(query)
            elif len(parts) >= 2 and parts[:2] == ("v1", "artifacts"):
                self._artifact(parts[2:])
            elif parts == ("v1", "metrics"):
                self._metrics()
            else:
                self._error(404, f"no such endpoint: {self.path}")

        def _post(self) -> None:
            parts, _ = self._route()
            if parts != ("v1", "jobs"):
                self._error(404, f"no such endpoint: {self.path}")
                return
            try:
                doc = self._read_json()
                kind = doc.get("kind", "point")
                spec = doc.get("spec")
                priority = int(doc.get("priority", 0))
                job, coalesced = scheduler.submit(kind, spec, priority)
            except QueueFullError as exc:
                self._error(
                    503,
                    str(exc),
                    type(exc).__name__,
                    {"Retry-After": exc.retry_after or config.retry_after},
                )
                return
            except ReproError as exc:
                self._error(400, str(exc), type(exc).__name__)
                return
            except (ValueError, TypeError, AttributeError) as exc:
                self._error(400, f"malformed request body: {exc}")
                return
            self._send_json(
                202 if not coalesced else 200,
                {**job.describe(), "coalesced": coalesced},
            )

        def _delete(self) -> None:
            parts, _ = self._route()
            if len(parts) == 3 and parts[:2] == ("v1", "jobs"):
                job = scheduler.job(parts[2])
                if job is None:
                    self._error(404, f"unknown job {parts[2]}")
                elif scheduler.cancel(parts[2]):
                    self._send_json(200, job.describe())
                else:
                    self._error(
                        409,
                        f"job {parts[2]} is {job.state}; only queued "
                        f"jobs can be cancelled",
                    )
            else:
                self._error(404, f"no such endpoint: {self.path}")

        # -- endpoint bodies ------------------------------------------------------

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            if length > _MAX_BODY_BYTES:
                raise ValueError(
                    f"request body of {length} bytes exceeds the "
                    f"{_MAX_BODY_BYTES}-byte limit"
                )
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ValueError("empty request body; expected JSON")
            doc = json.loads(raw)
            if not isinstance(doc, dict):
                raise ValueError("request body must be a JSON object")
            return doc

        def _health(self) -> dict:
            counts = scheduler.counts()
            return {
                "status": "ok" if counts.pop("accepting") else "draining",
                "scale": config.scale,
                **counts,
            }

        def _job_status(self, job_id: str) -> None:
            job = scheduler.job(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id}")
            else:
                self._send_json(200, job.describe())

        def _job_result(self, job_id: str) -> None:
            job = scheduler.job(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id}")
            elif job.state == DONE:
                self._send_json(
                    200,
                    {
                        **job.describe(),
                        "rows": job.rows,
                        "telemetry": job.telemetry,
                    },
                )
            elif job.state == FAILED:
                self._error(500, job.error or "job failed", "JobFailed")
            elif job.state in ("queued", "running"):
                self._send_json(
                    202,
                    job.describe(),
                    {"Retry-After": config.retry_after},
                )
            else:  # cancelled
                self._error(410, f"job {job_id} was cancelled")

        def _results(self, query: dict) -> None:
            if not config.store_path:
                self._error(
                    404, "server is running without a results store"
                )
                return
            try:
                limit = query.get("limit")
                # One short-lived read connection per request: sqlite3
                # connections are thread-bound, and WAL mode makes
                # concurrent readers free.
                with ResultStore(config.store_path) as store:
                    rows = store.rows(
                        program=query.get("program"),
                        machine=query.get("machine"),
                        limit=int(limit) if limit else None,
                    )
                    summary = store.summary()
            except (StoreError, ValueError) as exc:
                self._error(400, str(exc), type(exc).__name__)
                return
            self._send_json(200, {
                "store": config.store_path,
                "summary": summary,
                "rows": [
                    {
                        "key": row.key,
                        "program": row.program,
                        "machine": row.machine,
                        "window": row.window,
                        "memory_differential": row.memory_differential,
                        "memory": row.memory,
                        "scale": row.scale,
                        "cycles": row.cycles,
                        "instructions": row.instructions,
                        "ipc": row.ipc,
                        "meta": row.meta,
                        "telemetry": row.telemetry,
                    }
                    for row in rows
                ],
            })

        def _metrics(self) -> None:
            counts = scheduler.counts()
            body = metrics.render(
                gauges={
                    "repro_queue_depth": counts["queue_depth"],
                    "repro_queue_limit": counts["queue_limit"],
                    "repro_workers": counts["workers"],
                    "repro_accepting": int(counts["accepting"]),
                },
                job_states={
                    state: counts[state] for state in JOB_STATES
                },
                engine_counters=counters_snapshot(),
            ).encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type",
                "text/plain; version=0.0.4; charset=utf-8",
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _artifact(self, rest: tuple[str, ...]) -> None:
            if site_dir is None:
                self._error(
                    404,
                    "server is running without a report site "
                    "(start with --site <dir>)",
                )
                return
            target = (site_dir / Path(*rest)).resolve() if rest else (
                site_dir / "index.html"
            )
            if not target.is_relative_to(site_dir):
                self._error(403, "path escapes the site directory")
                return
            if not target.is_file():
                self._error(404, f"no such artefact page: {'/'.join(rest)}")
                return
            body = target.read_bytes()
            self.send_response(200)
            self.send_header(
                "Content-Type",
                _CONTENT_TYPES.get(
                    target.suffix.lower(), "application/octet-stream"
                ),
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    return Handler


def start_server(
    config: ServiceConfig,
) -> tuple[ReproServer, JobScheduler, threading.Thread]:
    """Boot the service in-process; returns (server, scheduler, thread).

    The listener runs on a daemon thread — this is the entry point
    tests, benchmarks and the CI smoke check use. Pass ``port=0`` for
    an ephemeral port and read the bound one back from
    ``server.server_address``.
    """
    scheduler = JobScheduler(config)
    server = ReproServer(config, scheduler)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, scheduler, thread


def stop_server(
    server: ReproServer, timeout: float | None = None
) -> bool:
    """Drain the scheduler, then stop the listener. True if drained."""
    settled = server.scheduler.drain(timeout)
    server.shutdown()
    server.server_close()
    return settled


def serve(config: ServiceConfig) -> int:
    """Run the server in the foreground until SIGTERM/SIGINT.

    Both signals trigger the same graceful drain; the second Ctrl-C
    falls through to the default handler (hard exit).
    """
    scheduler = JobScheduler(config)
    server = ReproServer(config, scheduler)
    host, port = server.server_address[:2]
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(workers={config.workers}, queue={config.queue_limit}, "
        f"scale={config.scale})",
        flush=True,
    )

    def _shutdown(signum, frame):
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        print(
            f"repro serve: draining "
            f"(waiting up to {config.drain_timeout:.0f}s for running "
            f"jobs)",
            flush=True,
        )
        # shutdown() blocks until serve_forever returns, so it must
        # run off the signal-interrupted (main) thread.
        def _stop():
            scheduler.drain()
            server.shutdown()

        threading.Thread(target=_stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    try:
        server.serve_forever()
    finally:
        server.server_close()
    print("repro serve: stopped", flush=True)
    return 0
