"""A small typed client for the service API (stdlib ``urllib`` only).

Used by the tests, the load benchmark and the CI smoke check — and
handy interactively::

    from repro.api import Sweep
    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8077")
    job = client.submit_sweep(Sweep.grid(program="mdg",
                                         machine=("dm", "swsm"),
                                         window=(16, 64)))
    payload = client.fetch(job, timeout=120)   # submit -> poll -> fetch
    for row in payload["rows"]:
        print(row["point"]["machine"], row["cycles"])

Every non-2xx response raises :class:`~repro.errors.ServiceError`
carrying the HTTP status (and, for 503 backpressure, the server's
``Retry-After`` hint); queue saturation specifically raises
:class:`~repro.errors.QueueFullError` so callers can implement
retry-with-backoff by catching one type.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from ..api.spec import Point, Sweep, point_to_dict
from ..errors import QueueFullError, ServiceError

__all__ = ["ServiceClient"]

#: Job states that end a wait().
_TERMINAL = ("done", "failed", "cancelled")


class ServiceClient:
    """Thin JSON-over-HTTP client for one ``repro serve`` endpoint."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                payload = json.loads(response.read() or b"{}")
                payload["_status"] = response.status
                retry_after = response.headers.get("Retry-After")
                if retry_after is not None:
                    payload["_retry_after"] = float(retry_after)
                return payload
        except urllib.error.HTTPError as error:
            raise self._to_error(error) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None

    @staticmethod
    def _to_error(error: urllib.error.HTTPError) -> ServiceError:
        try:
            doc = json.loads(error.read() or b"{}")
            message = doc.get("error", f"HTTP {error.code}")
        except (ValueError, OSError):
            message = f"HTTP {error.code}"
        retry_after = error.headers.get("Retry-After")
        retry = float(retry_after) if retry_after else None
        cls = QueueFullError if error.code == 503 else ServiceError
        return cls(message, status=error.code, retry_after=retry)

    # -- submission ---------------------------------------------------------------

    def submit(
        self, kind: str, spec: dict, priority: int = 0
    ) -> dict:
        """Low-level submit; returns the job description (with id)."""
        return self._request(
            "POST",
            "/v1/jobs",
            {"kind": kind, "spec": spec, "priority": priority},
        )

    def submit_point(self, point: Point, priority: int = 0) -> str:
        """Submit one operating point; returns the job id."""
        return self.submit("point", point_to_dict(point), priority)["id"]

    def submit_sweep(self, sweep: Sweep, priority: int = 0) -> str:
        """Submit a whole sweep grid; returns the job id."""
        return self.submit("sweep", sweep.to_dict(), priority)["id"]

    # -- poll / fetch -------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/health")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """Poll one job's state."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.05
    ) -> dict:
        """Poll until the job reaches a terminal state (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in _TERMINAL:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout:.1f}s"
                )
            time.sleep(poll)

    def result(self, job_id: str) -> dict:
        """Fetch a finished job's rows (raises unless state is done)."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        if payload["_status"] == 202:
            raise ServiceError(
                f"job {job_id} is still {payload.get('state')}",
                status=202,
                retry_after=payload.get("_retry_after"),
            )
        return payload

    def fetch(self, job_id: str, timeout: float = 60.0) -> dict:
        """Wait for the job, then fetch its rows; raises on fail/cancel."""
        job = self.wait(job_id, timeout=timeout)
        if job["state"] != "done":
            raise ServiceError(
                f"job {job_id} ended {job['state']}: "
                f"{job.get('error') or 'no result'}"
            )
        return self.result(job_id)

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def results(
        self,
        program: str | None = None,
        machine: str | None = None,
        limit: int | None = None,
    ) -> dict:
        """Rows straight from the server's result store."""
        params = []
        for name, value in (
            ("program", program), ("machine", machine), ("limit", limit)
        ):
            if value is not None:
                params.append(f"{name}={value}")
        query = f"?{'&'.join(params)}" if params else ""
        return self._request("GET", f"/v1/results{query}")

    def metrics(self) -> str:
        """The ``/v1/metrics`` Prometheus exposition text, verbatim."""
        url = f"{self.base_url}/v1/metrics"
        request = urllib.request.Request(
            url, headers={"Accept": "text/plain"}, method="GET"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise self._to_error(error) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None

    def artifact(self, path: str) -> bytes:
        """One page of the served report site, as raw bytes."""
        url = f"{self.base_url}/v1/artifacts/{path.lstrip('/')}"
        request = urllib.request.Request(
            url, headers={"Accept": "*/*"}, method="GET"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            raise self._to_error(error) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None
