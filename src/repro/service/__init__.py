"""Simulation-as-a-service: an async job-queue HTTP server over
:class:`~repro.api.Session` + :class:`~repro.report.ResultStore`.

Three layers (see docs/service.md):

* :mod:`repro.service.jobs` — the scheduling core: content-addressed
  :class:`Job` identities (duplicate submissions coalesce onto one
  in-flight job), a bounded priority queue with explicit backpressure,
  and worker threads whose sessions share one disk cache and one
  WAL-mode result store;
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer``
  front end (``repro serve``): submit → poll → fetch, result-store
  reads, report-site pages, graceful drain on SIGTERM;
* :mod:`repro.service.client` — a small typed ``urllib`` client used
  by the tests, the load benchmark and the CI smoke check.
"""

from .client import ServiceClient
from .jobs import JOB_STATES, Job, JobScheduler, ServiceConfig, result_rows
from .server import ReproServer, serve, start_server, stop_server

__all__ = [
    "JOB_STATES",
    "Job",
    "JobScheduler",
    "ReproServer",
    "ServiceClient",
    "ServiceConfig",
    "result_rows",
    "serve",
    "start_server",
    "stop_server",
]
