"""The service scheduling core: jobs, the priority queue, the workers.

A :class:`Job` is one submitted unit of work — a single operating
point or a whole sweep — identified by a **content address** derived
from the same cache keys the :class:`~repro.api.Session` disk cache
and the :class:`~repro.report.ResultStore` use. Identity does the
heavy lifting:

* two submissions of the same work (however spelled — a sweep and the
  equivalent point list hash identically) **coalesce** onto one job:
  the second submitter gets the first job's id and, once it finishes,
  the same result rows;
* a finished job's rows are exactly what the result store warehouses,
  so a restarted server serves previously-computed answers from the
  store without re-simulating (the worker sessions' store-resident
  lookup short-circuits the engine).

The :class:`JobScheduler` owns a bounded priority queue (lower
``priority`` value runs first, FIFO within a priority) drained by a
small pool of worker threads, each with its own :class:`Session`
sharing one disk cache directory and one WAL-mode result store. The
queue bound is the backpressure contract: a full queue raises
:class:`~repro.errors.QueueFullError`, which the HTTP layer maps to
503 + ``Retry-After`` instead of queueing without limit.

Job state machine::

    queued -> running -> done
           |          -> failed
           -> cancelled          (cancel, or drain while still queued)

:meth:`JobScheduler.drain` is the graceful-shutdown path (SIGTERM):
stop accepting, cancel everything still queued, wait for running jobs
up to a deadline.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import threading
import time
from dataclasses import dataclass, field

from ..api.session import Session
from ..api.spec import (
    Point,
    Sweep,
    point_digest,
    point_from_dict,
    point_to_dict,
)
from ..config import LatencyModel
from ..errors import ConfigError, QueueFullError, ReproError
from ..kernels import get_kernel
from ..machines.registry import get_machine
from ..obs.trace import tracer_from_env

__all__ = [
    "JOB_STATES",
    "Job",
    "JobScheduler",
    "ServiceConfig",
    "result_rows",
]

#: The job state machine's vocabulary, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

QUEUED, RUNNING, DONE, FAILED, CANCELLED = JOB_STATES

#: States a duplicate submission can coalesce onto (a failed or
#: cancelled job is re-enqueued instead: the earlier outcome is not an
#: answer).
_COALESCABLE = (QUEUED, RUNNING, DONE)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the service needs to run, in one frozen bundle."""

    scale: int = 12_000
    workers: int = 2
    queue_limit: int = 64
    cache_dir: str | None = None
    store_path: str | None = None
    site_dir: str | None = None
    host: str = "127.0.0.1"
    port: int = 8077
    drain_timeout: float = 10.0
    request_timeout: float = 30.0
    retry_after: int = 1
    latencies: LatencyModel = field(default_factory=LatencyModel)


@dataclass
class Job:
    """One submitted unit of work and its lifecycle so far."""

    id: str
    kind: str  # "point" | "sweep"
    spec: dict  # normalised plain-dict spec, as admitted
    priority: int = 0
    state: str = QUEUED
    hits: int = 0  # coalesced duplicate submissions
    submitted: float = 0.0
    started: float | None = None
    finished: float | None = None
    points: int = 0
    rows: list[dict] | None = None
    error: str | None = None
    #: Session-telemetry deltas attributable to this job's execution
    #: (runs, engine counters, strategy histogram, cache hits).
    telemetry: dict | None = None

    def describe(self) -> dict:
        """The poll-endpoint view: everything but the result rows."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "hits": self.hits,
            "points": self.points,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "url": f"/v1/jobs/{self.id}",
        }


def result_rows(points, results, scale: int, latencies) -> list[dict]:
    """The JSON rows of a finished job, in evaluation order.

    Shared by the server and by anything that wants to compare a
    service answer against a direct :class:`Session` run byte-for-byte
    (the CI smoke check does exactly that).
    """
    rows = []
    for point, result in zip(points, results):
        canonical = get_machine(point.machine).canonical(point)
        telemetry = result.telemetry
        rows.append({
            "point": point_to_dict(point),
            # The row's store key: the canonical point's content
            # address, i.e. exactly what the ResultStore is keyed by.
            "key": point_digest(canonical, scale, latencies),
            "cycles": result.cycles,
            "instructions": result.instructions,
            "ipc": result.ipc,
            "meta": dict(result.meta),
            # Only the deterministic slice (strategy + nonzero
            # counters): the row must serialize identically whether the
            # result came from the engine, the disk cache or the store.
            "telemetry": (
                telemetry.row_view() if telemetry is not None else None
            ),
        })
    return rows


def _telemetry_delta(before: dict, after: dict) -> dict:
    """What one job did, as session-telemetry deltas."""
    counters = {
        key: value - before["counters"].get(key, 0)
        for key, value in after["counters"].items()
        if value - before["counters"].get(key, 0)
    }
    strategies = {
        key: count
        for key, count in (
            (key, value - before["strategies"].get(key, 0))
            for key, value in after["strategies"].items()
        )
        if count
    }
    hits = {
        key: after["stats"][key] - before["stats"][key]
        for key in (
            "evaluated", "memory_hits", "disk_hits", "store_hits",
            "batch_groups", "batch_points",
        )
        if key in after["stats"]
    }
    return {
        "runs": after["runs"] - before["runs"],
        "counters": counters,
        "strategies": strategies,
        **hits,
    }


def _parse_spec(kind: str, spec: object) -> tuple[object, tuple[Point, ...]]:
    """Validate a submitted spec; returns (parsed spec, its points).

    Raises :class:`~repro.errors.ConfigError` for anything malformed —
    the HTTP layer maps that (and the rest of the library's error
    hierarchy) to a 400.
    """
    if kind == "point":
        point = point_from_dict(spec)
        points: tuple[Point, ...] = (point,)
        parsed: object = point
    elif kind == "sweep":
        if not isinstance(spec, dict):
            raise ConfigError(
                f"sweep spec must be a table/object, got {spec!r}"
            )
        sweep = Sweep.from_dict(spec)
        parsed, points = sweep, tuple(sweep.points())
    else:
        raise ConfigError(
            f"unknown job kind {kind!r}; known kinds: point, sweep"
        )
    # Resolve every program up front so an unknown kernel is a 400 at
    # submit time, not a failed job discovered only on poll.
    for program in {point.program for point in points}:
        get_kernel(program)
    return parsed, points


class JobScheduler:
    """Bounded priority job queue drained by session-owning workers."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)  # queue activity
        self._idle = threading.Condition(self._lock)  # drain waiting
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []  # submission order, for listings
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._queued = 0
        self._running = 0
        self._accepting = True
        self._stop = False
        self._local = threading.local()
        # Job-lifecycle spans land in the same REPRO_TRACE file the
        # worker sessions write to, so one trace shows the whole story.
        self._tracer = tracer_from_env()
        self._threads = [
            threading.Thread(
                target=self._work, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(max(1, config.workers))
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ---------------------------------------------------------------

    def submit(
        self, kind: str, spec: object, priority: int = 0
    ) -> tuple[Job, bool]:
        """Admit (or coalesce) one job; returns ``(job, coalesced)``.

        Raises :class:`~repro.errors.ConfigError` for a malformed spec
        and :class:`~repro.errors.QueueFullError` when the queue is
        saturated or the scheduler is draining.
        """
        parsed, points = _parse_spec(kind, spec)
        job_id, canonical_spec = self._identify(kind, parsed, points)
        with self._lock:
            if not self._accepting:
                raise QueueFullError(
                    "service is draining; not accepting new jobs",
                    retry_after=self.config.retry_after,
                )
            job = self._jobs.get(job_id)
            if job is not None and job.state in _COALESCABLE:
                job.hits += 1
                return job, True
            if self._queued >= self.config.queue_limit:
                raise QueueFullError(
                    f"job queue is full "
                    f"({self._queued}/{self.config.queue_limit} queued); "
                    f"retry later",
                    retry_after=self.config.retry_after,
                )
            if job is None:
                job = Job(
                    id=job_id,
                    kind=kind,
                    spec=canonical_spec,
                    priority=priority,
                    submitted=time.time(),
                    points=len(points),
                )
                self._jobs[job_id] = job
                self._order.append(job_id)
            else:
                # Failed or cancelled earlier: re-enqueue the same id.
                job.state = QUEUED
                job.priority = priority
                job.submitted = time.time()
                job.started = job.finished = None
                job.rows = None
                job.error = None
                job.telemetry = None
            self._queued += 1
            heapq.heappush(
                self._heap, (priority, next(self._seq), job_id)
            )
            self._wake.notify()
        if self._tracer is not None:
            self._tracer.event(
                "job.queued", job=job_id, kind=kind, points=len(points)
            )
        return job, False

    def _identify(
        self, kind: str, parsed: object, points: tuple[Point, ...]
    ) -> tuple[str, dict]:
        """Content-address a submission via its points' cache keys.

        The job id hashes the *canonical* per-point digests, so any two
        spellings of the same work — including a sweep whose grid
        enumerates the same points — coalesce onto the same job.
        """
        keys = [
            point_digest(
                get_machine(point.machine).canonical(point),
                self.config.scale,
                self.config.latencies,
            )
            for point in points
        ]
        doc = json.dumps(
            {"kind": kind, "keys": keys},
            sort_keys=True,
            separators=(",", ":"),
        )
        job_id = hashlib.sha256(doc.encode("utf-8")).hexdigest()
        if kind == "point":
            canonical_spec = point_to_dict(parsed)
        else:
            canonical_spec = parsed.to_dict()
        return job_id, canonical_spec

    # -- inspection ---------------------------------------------------------------

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All jobs, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> dict[str, int]:
        """Jobs per state plus queue occupancy, for ``/health``."""
        with self._lock:
            by_state = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            return {
                **by_state,
                "queue_depth": self._queued,
                "queue_limit": self.config.queue_limit,
                "workers": len(self._threads),
                "accepting": self._accepting,
            }

    # -- cancellation and shutdown ------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; running/finished jobs stay put."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != QUEUED:
                return False
            job.state = CANCELLED
            job.finished = time.time()
            self._queued -= 1
            return True

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: refuse new work, finish what's running.

        Queued-but-unstarted jobs are cancelled; running jobs get up to
        ``timeout`` seconds (default: the config's drain timeout) to
        finish. Returns True when everything settled in time.
        """
        deadline = time.monotonic() + (
            self.config.drain_timeout if timeout is None else timeout
        )
        with self._lock:
            self._accepting = False
            for job in self._jobs.values():
                if job.state == QUEUED:
                    job.state = CANCELLED
                    job.finished = time.time()
            self._queued = 0
            self._heap.clear()
            while self._running:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._idle.wait(remaining):
                    break
            settled = self._running == 0
            self._stop = True
            self._wake.notify_all()
        for thread in self._threads:
            thread.join(timeout=0.5)
        return settled

    # -- workers ------------------------------------------------------------------

    def _session(self) -> Session:
        """This worker thread's session (created lazily, kept forever).

        Workers share the disk cache directory and the WAL-mode result
        store, so one worker's simulation is every worker's cache hit;
        SQLite connections stay per-thread, as sqlite3 requires.
        """
        session = getattr(self._local, "session", None)
        if session is None:
            session = Session(
                scale=self.config.scale,
                latencies=self.config.latencies,
                cache_dir=self.config.cache_dir,
                jobs=1,
            )
            if self.config.store_path:
                session.store(self.config.store_path)
            self._local.session = session
        return session

    def _work(self) -> None:
        while True:
            with self._wake:
                while not self._stop and not self._heap:
                    self._wake.wait()
                if self._stop:
                    return
                _, _, job_id = heapq.heappop(self._heap)
                job = self._jobs[job_id]
                if job.state != QUEUED:
                    continue  # cancelled while waiting in the heap
                job.state = RUNNING
                job.started = time.time()
                self._queued -= 1
                self._running += 1
            rows, error = None, None
            try:
                if self._tracer is not None:
                    with self._tracer.span(
                        "job.run", job=job.id, kind=job.kind
                    ):
                        rows = self._execute(job)
                else:
                    rows = self._execute(job)
            except ReproError as exc:
                error = f"{type(exc).__name__}: {exc}"
            except Exception as exc:  # noqa: BLE001 - jobs must not kill workers
                error = f"{type(exc).__name__}: {exc!r}"
            with self._lock:
                job.finished = time.time()
                if error is None:
                    job.state = DONE
                    job.rows = rows
                else:
                    job.state = FAILED
                    job.error = error
                self._running -= 1
                self._idle.notify_all()
            if self._tracer is not None:
                self._tracer.event(
                    "job.finished", job=job.id, state=job.state
                )

    def _execute(self, job: Job) -> list[dict]:
        session = self._session()
        parsed, points = _parse_spec(job.kind, job.spec)
        before = session.telemetry()
        if job.kind == "point":
            results = (session.evaluate(parsed),)
        else:
            outcome = session.run(parsed)
            points, results = outcome.points, outcome.results
        job.telemetry = _telemetry_delta(before, session.telemetry())
        return result_rows(
            points, results, self.config.scale, self.config.latencies
        )
