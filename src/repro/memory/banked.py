"""Interleaved memory banks with bank-conflict queuing.

The paper's fixed differential models a memory system with unlimited
concurrency: every access costs the same no matter how many are in
flight. Real decoupled machines stream requests at banked DRAM, where
two accesses mapping to the same bank serialise. This model charges the
fixed differential plus the time an access spends queued behind earlier
accesses to its bank — so heavily strided kernels whose addresses
collide in a few banks lose part of the latency-hiding the decoupled
queue would otherwise provide.

Bank state is a single "free at cycle" clock per bank, advanced in
issue order, which keeps the model deterministic and cheap to batch.
"""

from __future__ import annotations

from ..errors import ConfigError
from .base import CAP_STATEFUL, MemorySystem

__all__ = ["BankedMemory"]


class BankedMemory(MemorySystem):
    """Fixed extra cost plus queuing behind a finite set of banks.

    Addresses interleave across ``banks`` at ``interleave_bytes``
    granularity. Each access occupies its bank for ``busy`` cycles; an
    access arriving while its bank is busy waits for the bank to free
    and pays that wait on top of ``extra`` (the memory differential of
    the backing store). ``busy=0`` collapses to the paper's fixed
    model.
    """

    def __init__(
        self,
        extra: int = 60,
        banks: int = 8,
        interleave_bytes: int = 32,
        busy: int = 4,
    ) -> None:
        if extra < 0:
            raise ConfigError(f"extra must be >= 0, got {extra}")
        if banks < 1:
            raise ConfigError(f"need >= 1 bank, got {banks}")
        if interleave_bytes < 1:
            raise ConfigError(
                f"interleave_bytes must be >= 1, got {interleave_bytes}"
            )
        if busy < 0:
            raise ConfigError(f"busy must be >= 0, got {busy}")
        self.extra = extra
        self.banks = banks
        self.interleave_bytes = interleave_bytes
        self.busy = busy
        self._free_at = [0] * banks
        self.accesses = 0
        self.conflicts = 0
        self.total_wait = 0

    def extra_latency(self, addr: int, now: int) -> int:
        bank = (addr // self.interleave_bytes) % self.banks
        start = self._free_at[bank]
        if start < now:
            start = now
        self._free_at[bank] = start + self.busy
        wait = start - now
        self.accesses += 1
        if wait:
            self.conflicts += 1
            self.total_wait += wait
        return self.extra + wait

    def latencies(self, addrs, now: int) -> list[int]:
        free_at = self._free_at
        banks = self.banks
        interleave = self.interleave_bytes
        busy = self.busy
        extra = self.extra
        out = []
        append = out.append
        conflicts = 0
        total_wait = 0
        for addr in addrs:
            bank = (addr // interleave) % banks
            start = free_at[bank]
            if start < now:
                start = now
            free_at[bank] = start + busy
            wait = start - now
            if wait:
                conflicts += 1
                total_wait += wait
            append(extra + wait)
        self.accesses += len(addrs)
        self.conflicts += conflicts
        self.total_wait += total_wait
        return out

    def capability(self) -> str:
        return CAP_STATEFUL

    def typical_extra_latency(self) -> int:
        return self.extra

    def speculation_friendly(self) -> bool:
        # Queuing couples extras to issue timing tightly enough that
        # the speculative fixed point oscillates instead of settling;
        # go straight to the chunked live path.
        return False

    def reset(self) -> None:
        self._free_at = [0] * self.banks
        self.accesses = 0
        self.conflicts = 0
        self.total_wait = 0

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / self.accesses if self.accesses else 0.0

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.accesses if self.accesses else 0.0

    def stats(self) -> dict[str, object]:
        return {
            "bank_conflict_rate": self.conflict_rate,
            "bank_mean_wait": self.mean_wait,
        }

    def describe(self) -> str:
        return (
            f"banked({self.banks}x{self.interleave_bytes}B, "
            f"busy={self.busy}, extra={self.extra})"
        )
