"""Memory-system interface used by the machine models.

The paper abstracts the memory system to a fixed per-access cost: the
*memory differential* (MD), the difference between a register access
and a memory-system access. The machine models only ask one question —
"how many extra cycles beyond the one-cycle base does this access
take?" — so the interface is a single method. Stateful models (caches,
bypass buffers) update themselves inside that call; the simulator
guarantees calls happen in issue order, which is deterministic.
"""

from __future__ import annotations

import abc

__all__ = ["MemorySystem"]


class MemorySystem(abc.ABC):
    """Answers access-latency queries in issue order."""

    @abc.abstractmethod
    def extra_latency(self, addr: int, now: int) -> int:
        """Extra cycles (beyond the base cost) for a read of ``addr``.

        Args:
            addr: effective address of the access.
            now: current cycle (lets models reason about timing, e.g.
                an in-flight line that will arrive before it is needed).
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all state so the model can be reused across runs."""

    def uniform_extra_latency(self) -> int | None:
        """The extra latency if it is address- and time-independent.

        Models whose answer never depends on the access (the paper's
        fixed-differential model) return it here, which lets the engine
        batch the per-access lookup into one precomputed latency table
        and take its fast path (docs/timing.md, "Memory accesses").
        Stateful models (caches, bypass buffers) return None — the
        default — and are queried access by access in issue order.
        """
        return None

    def describe(self) -> str:
        """One-line human-readable description for experiment records."""
        return type(self).__name__
