"""Memory-system interface used by the machine models.

The paper abstracts the memory system to a per-access cost: the
*memory differential* (MD), the difference between a register access
and a memory-system access. The machine models ask one question — "how
many extra cycles beyond the one-cycle base does each access take?" —
and since the struct-of-arrays engine issues accesses in batches, the
question is batched too: :meth:`MemorySystem.latencies` answers for a
whole issue-order chunk in one call.

Every model also reports a *capability*, which tells the engine how
aggressively it may batch:

* :data:`CAP_UNIFORM` — the answer never depends on the access (the
  paper's fixed-differential model). The engine folds the cost into
  one precomputed per-gid latency table and may skip whole loop
  iterations (docs/timing.md, "Periodic steady state").
* :data:`CAP_STATELESS` — the answer is a pure function of the address
  (no history, no clock). The engine precomputes the whole program's
  extra latencies in a single up-front :meth:`~MemorySystem.latencies`
  call and never queries the model again.
* :data:`CAP_STATEFUL` — the answer depends on access history (caches,
  bypass buffers, bank queues). The engine queries once per unit per
  cycle with the chunk of accesses issued that cycle, in issue order,
  which is deterministic.

Chunks arrive in issue order, but the ``now`` timestamps they carry
are **not contiguous**: every engine loop skips idle cycles, and the
event-heap scheduler (docs/timing.md, "Event scheduling") jumps the
clock straight from one arrival to the next, so consecutive calls may
be hundreds of cycles apart. Models must therefore derive elapsed time
from ``now`` itself (as the bank-queue drain in
:mod:`repro.memory.banked` and the in-flight arrival check in
:mod:`repro.memory.prefetch` do), never from the number of calls —
``now`` is guaranteed non-decreasing across calls within one run, and
every engine strategy produces the identical call sequence for the
cycles in which accesses are actually issued.
"""

from __future__ import annotations

import abc
from typing import Sequence

__all__ = [
    "CAP_UNIFORM",
    "CAP_STATELESS",
    "CAP_STATEFUL",
    "MemorySystem",
]

#: Extra latency is address- and time-independent (one constant).
CAP_UNIFORM = "uniform"

#: Extra latency is a pure function of the address (batchable up front).
CAP_STATELESS = "stateless"

#: Extra latency depends on access history; must see issue order.
CAP_STATEFUL = "stateful"


class MemorySystem(abc.ABC):
    """Answers access-latency queries, batched, in issue order.

    Subclasses must implement :meth:`extra_latency` (the scalar rule)
    and should override :meth:`latencies` with a native batched loop —
    the engine only ever calls the batched form, and the default
    implementation is a thin scalar shim that pays one Python call per
    access. Stateful models update themselves inside the call; the
    engine guarantees chunks arrive in issue order.
    """

    @abc.abstractmethod
    def extra_latency(self, addr: int, now: int) -> int:
        """Extra cycles (beyond the base cost) for a read of ``addr``.

        Args:
            addr: effective address of the access.
            now: current cycle (lets models reason about timing, e.g.
                an in-flight line that will arrive before it is needed).
        """

    def latencies(self, addrs: Sequence[int], now: int) -> list[int]:
        """Extra cycles for a chunk of accesses issued in cycle ``now``.

        ``addrs`` lists the effective addresses in issue order; the
        result is positionally aligned with it. ``now`` is
        non-decreasing across calls but jumps across idle cycles
        (module docstring) — time-sensitive models must reason from
        the timestamp, not the call count. This default is a scalar
        shim so legacy models that only implement
        :meth:`extra_latency` keep working; every in-repo model
        overrides it with a single tight loop.
        """
        extra = self.extra_latency
        return [extra(addr, now) for addr in addrs]

    def latencies_array(self, addrs: Sequence[int], now: int):
        """Vectorized-query entry for the batch engine.

        Identical contract to :meth:`latencies`; the return value only
        needs to be array-convertible (list or ndarray). The default
        delegates to :meth:`latencies`, so model-side counters advance
        exactly as they would for a scalar run — which is what keeps
        batched lanes bit-exact, stats included. Stateless models with
        a native NumPy rule may override this to answer a whole lane's
        access table without the per-address Python loop.
        """
        return self.latencies(addrs, now)

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all state so the model can be reused across runs."""

    def capability(self) -> str:
        """How the engine may batch this model's queries.

        One of :data:`CAP_UNIFORM`, :data:`CAP_STATELESS` or
        :data:`CAP_STATEFUL`. The default derives uniformity from
        :meth:`uniform_extra_latency` and otherwise assumes the safe
        stateful-ordered contract.
        """
        if self.uniform_extra_latency() is not None:
            return CAP_UNIFORM
        return CAP_STATEFUL

    def typical_extra_latency(self) -> int:
        """A representative extra latency, for speculative first guesses.

        The speculative fixed point seeds its first run with a uniform
        table of this value; a guess near the model's dominant answer
        (usually the miss cost) makes the first access schedule close
        to the real one and the fixed point converge in one
        refinement. Purely a performance hint.
        """
        return 0

    def time_sensitive(self) -> bool:
        """Whether :meth:`latencies` reads its ``now`` argument.

        Time-insensitive models (pure locality: caches, bypass
        buffers over uniform backings) let the engine replay a whole
        access stream in one batched call instead of one call per
        cycle. Defaults to True — the safe assumption.
        """
        return True

    def speculation_friendly(self) -> bool:
        """Whether the engine should try the speculative fixed point.

        The engine can simulate a stateful model by guessing a per-gid
        extras table, running at full table speed, replaying the model
        over the resulting access stream, and verifying the guess (see
        ``_simulate_speculative`` in :mod:`repro.machines.engine`).
        That converges when extras stabilise with the access pattern —
        true for locality models — but oscillates for models whose
        extras are dominated by fine-grained timing feedback (bank
        queuing), which should return False to skip straight to the
        chunked live path. Purely a performance hint: results are
        identical either way.
        """
        return True

    def uniform_extra_latency(self) -> int | None:
        """The extra latency if it is address- and time-independent.

        Models whose answer never depends on the access (the paper's
        fixed-differential model) return it here, which lets the engine
        batch the per-access lookup into one precomputed latency table
        and take its fast path (docs/timing.md, "Memory accesses").
        All other models return None — the default.
        """
        return None

    def stats(self) -> dict[str, object]:
        """Model-specific counters folded into ``SimulationResult.meta``.

        Stateful models report their hit/conflict counters here (e.g.
        ``bypass_hit_rate``); the session merges the dict into the
        result metadata after a simulation. Default: nothing.
        """
        return {}

    def describe(self) -> str:
        """One-line human-readable description for experiment records."""
        return type(self).__name__
