"""The bypass buffer sketched in the paper's future work.

The paper's closing discussion proposes "a bypass mechanism which
captures the temporal locality exposed by decoupling": values recently
delivered to the decoupled memory can satisfy later accesses to the
same address without paying the memory differential again. We model it
as a small fully-associative LRU buffer of recently fetched lines that
fronts any backing memory model.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigError
from .base import CAP_STATEFUL, MemorySystem

__all__ = ["BypassBuffer"]


class BypassBuffer(MemorySystem):
    """LRU buffer of recently fetched lines in front of a backing model.

    A hit costs zero extra cycles (the datum is already buffered beside
    the processor); a miss pays the backing model's cost and allocates.
    """

    def __init__(
        self,
        backing: MemorySystem,
        entries: int = 64,
        line_bytes: int = 32,
    ) -> None:
        if entries < 1:
            raise ConfigError(f"bypass buffer needs >= 1 entry, got {entries}")
        if line_bytes < 1:
            raise ConfigError(f"line_bytes must be >= 1, got {line_bytes}")
        self.backing = backing
        self.entries = entries
        self.line_bytes = line_bytes
        self._lines: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def extra_latency(self, addr: int, now: int) -> int:
        line = addr // self.line_bytes
        if line in self._lines:
            self._lines.move_to_end(line)
            self.hits += 1
            return 0
        self.misses += 1
        if len(self._lines) >= self.entries:
            self._lines.popitem(last=False)
        self._lines[line] = None
        return self.backing.extra_latency(addr, now)

    def latencies(self, addrs, now: int) -> list[int]:
        # Buffer state advances access by access (a miss allocates its
        # line immediately, so a later access in the same chunk hits),
        # while the backing model sees exactly the miss subsequence in
        # one nested batched call — the same query order the scalar
        # path produces.
        lines = self._lines
        line_bytes = self.line_bytes
        entries = self.entries
        move_to_end = lines.move_to_end
        popitem = lines.popitem
        out = []
        append = out.append
        miss_slots: list[int] = []
        miss_addrs: list[int] = []
        hits = misses = 0
        for addr in addrs:
            line = addr // line_bytes
            if line in lines:
                move_to_end(line)
                hits += 1
                append(0)
                continue
            misses += 1
            if len(lines) >= entries:
                popitem(last=False)
            lines[line] = None
            miss_slots.append(len(out))
            miss_addrs.append(addr)
            append(0)
        self.hits += hits
        self.misses += misses
        if miss_addrs:
            extras = self.backing.latencies(miss_addrs, now)
            for slot, extra in zip(miss_slots, extras):
                out[slot] = extra
        return out

    def capability(self) -> str:
        return CAP_STATEFUL

    def typical_extra_latency(self) -> int:
        # Cold misses dominate until the buffer warms up.
        return self.backing.typical_extra_latency()

    def time_sensitive(self) -> bool:
        # The buffer itself never reads the clock; only the backing
        # might (e.g. a banked backing).
        return self.backing.time_sensitive()

    def reset(self) -> None:
        self._lines.clear()
        self.hits = 0
        self.misses = 0
        self.backing.reset()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        return {
            "bypass_hits": self.hits,
            "bypass_misses": self.misses,
            "bypass_hit_rate": self.hit_rate,
        }

    def describe(self) -> str:
        return f"bypass({self.entries}x{self.line_bytes}B -> {self.backing.describe()})"
