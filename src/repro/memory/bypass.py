"""The bypass buffer sketched in the paper's future work.

The paper's closing discussion proposes "a bypass mechanism which
captures the temporal locality exposed by decoupling": values recently
delivered to the decoupled memory can satisfy later accesses to the
same address without paying the memory differential again. We model it
as a small fully-associative LRU buffer of recently fetched lines that
fronts any backing memory model.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigError
from .base import MemorySystem

__all__ = ["BypassBuffer"]


class BypassBuffer(MemorySystem):
    """LRU buffer of recently fetched lines in front of a backing model.

    A hit costs zero extra cycles (the datum is already buffered beside
    the processor); a miss pays the backing model's cost and allocates.
    """

    def __init__(
        self,
        backing: MemorySystem,
        entries: int = 64,
        line_bytes: int = 32,
    ) -> None:
        if entries < 1:
            raise ConfigError(f"bypass buffer needs >= 1 entry, got {entries}")
        if line_bytes < 1:
            raise ConfigError(f"line_bytes must be >= 1, got {line_bytes}")
        self.backing = backing
        self.entries = entries
        self.line_bytes = line_bytes
        self._lines: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def extra_latency(self, addr: int, now: int) -> int:
        line = addr // self.line_bytes
        if line in self._lines:
            self._lines.move_to_end(line)
            self.hits += 1
            return 0
        self.misses += 1
        if len(self._lines) >= self.entries:
            self._lines.popitem(last=False)
        self._lines[line] = None
        return self.backing.extra_latency(addr, now)

    def reset(self) -> None:
        self._lines.clear()
        self.hits = 0
        self.misses = 0
        self.backing.reset()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return f"bypass({self.entries}x{self.line_bytes}B -> {self.backing.describe()})"
