"""Occupancy accounting for the decoupled memory and prefetch buffer.

Both machines buffer in-flight data: the DM's decoupled memory holds
values from arrival until the DU's receive consumes them, and the
SWSM's prefetch buffer holds lines from arrival until the access
instruction reads them. The simulators are timing-based and treat the
buffers as unbounded (the paper's idealisation), so the interesting
question is *how big the buffers would have had to be* — answered
post-hoc from the (arrival, consume) interval of every in-flight datum.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MetricError

__all__ = ["OccupancyStats", "occupancy_from_intervals"]


@dataclass(frozen=True)
class OccupancyStats:
    """Peak and time-weighted mean number of simultaneously buffered items."""

    peak: int
    mean: float
    items: int
    span: int  # cycles between first arrival and last consumption

    @classmethod
    def empty(cls) -> "OccupancyStats":
        return cls(peak=0, mean=0.0, items=0, span=0)


def occupancy_from_intervals(
    intervals: list[tuple[int, int]],
) -> OccupancyStats:
    """Sweep-line occupancy of half-open residency intervals.

    Args:
        intervals: ``(arrival, consume)`` cycle pairs, ``consume`` may
            equal ``arrival`` (the datum was needed the moment it
            arrived and contributes no occupancy).
    """
    if not intervals:
        return OccupancyStats.empty()
    events: list[tuple[int, int]] = []
    for arrival, consume in intervals:
        if consume < arrival:
            raise MetricError(
                f"interval consumes at {consume} before arriving at {arrival}"
            )
        if consume > arrival:
            events.append((arrival, +1))
            events.append((consume, -1))
    if not events:
        first = min(a for a, _ in intervals)
        last = max(c for _, c in intervals)
        return OccupancyStats(peak=0, mean=0.0, items=len(intervals),
                              span=last - first)
    events.sort()
    peak = 0
    current = 0
    weighted = 0
    previous_time = events[0][0]
    start = events[0][0]
    for time, delta in events:
        weighted += current * (time - previous_time)
        previous_time = time
        current += delta
        if current > peak:
            peak = current
    span = previous_time - start
    mean = weighted / span if span else 0.0
    return OccupancyStats(peak=peak, mean=mean, items=len(intervals), span=span)
