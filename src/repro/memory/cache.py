"""A set-associative cache hierarchy memory model.

The paper's footnote observes that a real high-performance memory
system would capture locality with first- and second-level caches; this
model lets the benchmarks quantify how much of the DM/SWSM gap survives
when the average access cost drops. It is an *ablation* substrate, not
part of the paper's main experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ConfigError
from .base import CAP_STATEFUL, MemorySystem

__all__ = [
    "CacheLevelConfig",
    "CacheLevel",
    "CacheMemory",
    "hierarchy_levels",
]


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry and hit cost of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int
    hit_extra: int  # extra cycles beyond mem_base on a hit at this level

    def __post_init__(self) -> None:
        if self.line_bytes < 1 or self.size_bytes < self.line_bytes:
            raise ConfigError(f"invalid cache geometry for {self.name!r}")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ConfigError(
                f"{self.name!r}: size must be a multiple of line * ways"
            )
        if self.hit_extra < 0:
            raise ConfigError(f"{self.name!r}: hit_extra must be >= 0")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


class CacheLevel:
    """One LRU set-associative level."""

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def lookup(self, line: int) -> bool:
        """Probe (and on hit, refresh) ``line``; returns hit/miss."""
        cache_set = self._sets[line % self.config.num_sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line: int) -> None:
        cache_set = self._sets[line % self.config.num_sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            return
        if len(cache_set) >= self.config.associativity:
            cache_set.popitem(last=False)
        cache_set[line] = None

    def reset(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def hierarchy_levels(
    geometries: tuple[tuple[int, int, int, int], ...],
) -> tuple[CacheLevelConfig, ...]:
    """Level configs from plain ``(size, line, assoc, hit_extra)`` rows.

    The declarative :class:`~repro.api.spec.MemorySpec` stores cache
    geometry as nested tuples (TOML/JSON friendly); this turns them
    into validated :class:`CacheLevelConfig` objects named L1, L2, ...
    """
    return tuple(
        CacheLevelConfig(
            name=f"L{depth + 1}",
            size_bytes=size,
            line_bytes=line,
            associativity=assoc,
            hit_extra=extra,
        )
        for depth, (size, line, assoc, extra) in enumerate(geometries)
    )


#: A small L1 + L2 hierarchy loosely shaped like a mid-1990s machine
#: (the paper's Pentium Pro reference point: ~60-cycle L2 miss).
DEFAULT_HIERARCHY = (
    CacheLevelConfig(name="L1", size_bytes=8 * 1024, line_bytes=32,
                     associativity=2, hit_extra=0),
    CacheLevelConfig(name="L2", size_bytes=256 * 1024, line_bytes=32,
                     associativity=4, hit_extra=6),
)


class CacheMemory(MemorySystem):
    """A hierarchy of inclusive LRU levels over a fixed miss penalty.

    An access probes L1, then L2, ...; the first hit determines the
    extra latency. A full miss costs ``miss_extra`` (the memory
    differential of the backing store) and fills every level.
    """

    def __init__(
        self,
        levels: tuple[CacheLevelConfig, ...] = DEFAULT_HIERARCHY,
        miss_extra: int = 60,
    ) -> None:
        if miss_extra < 0:
            raise ConfigError(f"miss_extra must be >= 0, got {miss_extra}")
        if not levels:
            raise ConfigError("at least one cache level is required")
        # Every level is indexed by the same line id, so the hierarchy
        # must share one line size — reject configs that would
        # otherwise be silently mis-modeled (L2 sets computed from its
        # own line size but probed with L1 line ids).
        if len({config.line_bytes for config in levels}) > 1:
            raise ConfigError(
                "all cache levels must share one line_bytes, got "
                + ", ".join(
                    f"{c.name}={c.line_bytes}" for c in levels
                )
            )
        self.levels = [CacheLevel(config) for config in levels]
        self.miss_extra = miss_extra
        self._line_bytes = levels[0].line_bytes

    def extra_latency(self, addr: int, now: int) -> int:
        line = addr // self._line_bytes
        for depth, level in enumerate(self.levels):
            if level.lookup(line):
                for missed in self.levels[:depth]:
                    missed.fill(line)
                return level.config.hit_extra
        for level in self.levels:
            level.fill(line)
        return self.miss_extra

    def latencies(self, addrs, now: int) -> list[int]:
        # The L1-hit case — the hot one on locality-friendly kernels —
        # is inlined with bound locals; deeper probes and full misses
        # reuse the per-level lookup/fill helpers, keeping the counter
        # bookkeeping identical to the scalar path.
        line_bytes = self._line_bytes
        levels = self.levels
        l1 = levels[0]
        l1_sets = l1._sets
        l1_num_sets = l1.config.num_sets
        l1_extra = l1.config.hit_extra
        miss_extra = self.miss_extra
        deeper = levels[1:]
        out = []
        append = out.append
        l1_hits = 0
        for addr in addrs:
            line = addr // line_bytes
            l1_set = l1_sets[line % l1_num_sets]
            if line in l1_set:
                l1_set.move_to_end(line)
                l1_hits += 1
                append(l1_extra)
                continue
            l1.misses += 1
            for depth, level in enumerate(deeper, 1):
                if level.lookup(line):
                    for missed in levels[:depth]:
                        missed.fill(line)
                    append(level.config.hit_extra)
                    break
            else:
                for level in levels:
                    level.fill(line)
                append(miss_extra)
        l1.hits += l1_hits
        return out

    def capability(self) -> str:
        return CAP_STATEFUL

    def typical_extra_latency(self) -> int:
        return self.miss_extra

    def time_sensitive(self) -> bool:
        return False

    def reset(self) -> None:
        for level in self.levels:
            level.reset()

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served by *some* cache level.

        Zero when the run made no accesses at all (division-safe).
        """
        first = self.levels[0]
        accesses = first.hits + first.misses
        if not accesses:
            return 0.0
        full_misses = self.levels[-1].misses
        return (accesses - full_misses) / accesses

    def stats(self) -> dict[str, object]:
        return {
            "cache_hit_rate": self.hit_rate,
            "cache_level_hit_rates": tuple(
                level.hit_rate for level in self.levels
            ),
        }

    def describe(self) -> str:
        names = "+".join(level.config.name for level in self.levels)
        return f"cache({names}, miss={self.miss_extra})"
