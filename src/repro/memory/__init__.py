"""Memory-system models, all speaking the batched engine protocol.

Every model answers :meth:`~repro.memory.base.MemorySystem.latencies`
— the struct-of-arrays engine's batched, issue-ordered query — and
reports a capability (uniform / stateless / stateful) that tells the
engine how aggressively it may batch. Models: the paper's fixed
differential, LRU cache hierarchies, the future-work bypass buffer,
interleaved banks with conflict queuing, and a stride/stream
prefetcher.
"""

from .banked import BankedMemory
from .base import CAP_STATEFUL, CAP_STATELESS, CAP_UNIFORM, MemorySystem
from .buffers import OccupancyStats, occupancy_from_intervals
from .bypass import BypassBuffer
from .cache import (
    DEFAULT_HIERARCHY,
    CacheLevel,
    CacheLevelConfig,
    CacheMemory,
    hierarchy_levels,
)
from .fixed import FixedLatencyMemory
from .prefetch import StreamPrefetcher

__all__ = [
    "CAP_STATEFUL",
    "CAP_STATELESS",
    "CAP_UNIFORM",
    "MemorySystem",
    "FixedLatencyMemory",
    "CacheMemory",
    "CacheLevel",
    "CacheLevelConfig",
    "DEFAULT_HIERARCHY",
    "hierarchy_levels",
    "BankedMemory",
    "BypassBuffer",
    "StreamPrefetcher",
    "OccupancyStats",
    "occupancy_from_intervals",
]
