"""Memory-system models: fixed differential, caches, bypass, buffers."""

from .base import MemorySystem
from .buffers import OccupancyStats, occupancy_from_intervals
from .bypass import BypassBuffer
from .cache import DEFAULT_HIERARCHY, CacheLevel, CacheLevelConfig, CacheMemory
from .fixed import FixedLatencyMemory

__all__ = [
    "MemorySystem",
    "FixedLatencyMemory",
    "CacheMemory",
    "CacheLevel",
    "CacheLevelConfig",
    "DEFAULT_HIERARCHY",
    "BypassBuffer",
    "OccupancyStats",
    "occupancy_from_intervals",
]
