"""A stride/stream prefetcher feeding the processor-side buffer.

The paper's decoupled machine prefetches by *slipping* — the address
unit runs ahead and issues loads early. A hardware stride prefetcher
is the SWSM-era alternative: watch the miss stream, detect constant
line strides, and fetch ahead so later demand accesses find their data
already (or almost) arrived. This model fronts any backing memory
system with a small LRU buffer of prefetched lines plus a table of
tracked streams.

Timing is explicit: a prefetched line is tagged with the cycle its
data arrives (issue cycle plus the backing cost). A demand access to a
line that has fully arrived costs zero extra cycles; one that is still
in flight pays only the remaining wait — partial hiding, exactly what
a late prefetch buys on real hardware.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigError
from .base import CAP_STATEFUL, MemorySystem

__all__ = ["StreamPrefetcher"]


class StreamPrefetcher(MemorySystem):
    """Stride-detecting stream prefetcher over a backing model.

    ``streams`` bounds how many concurrent access streams are tracked
    (LRU replaced); ``degree`` is how many lines ahead a confirmed
    stream fetches per miss. A stream is confirmed when two successive
    misses repeat the same line stride. Demand misses are *not*
    allocated into the buffer (the datum goes straight to the
    processor); only prefetched lines live there.
    """

    #: Maximum line distance at which a miss can train an existing
    #: stream entry; farther misses allocate a fresh stream.
    MAX_TRAIN_STRIDE = 16

    def __init__(
        self,
        backing: MemorySystem,
        entries: int = 64,
        line_bytes: int = 32,
        streams: int = 4,
        degree: int = 2,
    ) -> None:
        if entries < 1:
            raise ConfigError(f"prefetch buffer needs >= 1 entry, got {entries}")
        if line_bytes < 1:
            raise ConfigError(f"line_bytes must be >= 1, got {line_bytes}")
        if streams < 1:
            raise ConfigError(f"need >= 1 stream, got {streams}")
        if degree < 1:
            raise ConfigError(f"prefetch degree must be >= 1, got {degree}")
        self.backing = backing
        self.entries = entries
        self.line_bytes = line_bytes
        self.streams = streams
        self.degree = degree
        #: line -> cycle at which the prefetched data arrives.
        self._buffer: OrderedDict[int, int] = OrderedDict()
        #: tracked streams, LRU order: [last_line, stride, confirmed].
        self._table: list[list[int]] = []
        self.hits = 0
        self.late_hits = 0
        self.misses = 0
        self.prefetches = 0

    # -- scalar and batched access ------------------------------------------------

    def extra_latency(self, addr: int, now: int) -> int:
        return self._access(addr, now)

    def latencies(self, addrs, now: int) -> list[int]:
        access = self._access
        return [access(addr, now) for addr in addrs]

    def _access(self, addr: int, now: int) -> int:
        line = addr // self.line_bytes
        buffer = self._buffer
        arrival = buffer.get(line)
        if arrival is not None:
            buffer.move_to_end(line)
            self.hits += 1
            if arrival > now:
                self.late_hits += 1
                return arrival - now
            return 0
        self.misses += 1
        extra = self.backing.extra_latency(addr, now)
        self._train(line, now)
        return extra

    # -- stride detection and prefetch issue --------------------------------------

    def _train(self, line: int, now: int) -> None:
        table = self._table
        for index, entry in enumerate(table):
            last, stride, confirmed = entry
            delta = line - last
            if delta == 0:
                return
            if stride != 0 and delta == stride:
                entry[0] = line
                entry[2] = 1
                table.append(table.pop(index))  # LRU refresh
                self._prefetch(line, stride, now)
                return
            if -self.MAX_TRAIN_STRIDE <= delta <= self.MAX_TRAIN_STRIDE:
                entry[0] = line
                entry[1] = delta
                entry[2] = 0
                table.append(table.pop(index))
                return
        if len(table) >= self.streams:
            table.pop(0)
        table.append([line, 0, 0])

    def _prefetch(self, line: int, stride: int, now: int) -> None:
        buffer = self._buffer
        uniform = self.backing.uniform_extra_latency()
        for k in range(1, self.degree + 1):
            target = line + k * stride
            if target in buffer:
                continue
            if uniform is not None:
                cost = uniform
            else:
                # Non-uniform backing: probe it for the predicted line
                # (the probe advances the backing state, as a real
                # prefetch request would).
                cost = self.backing.extra_latency(
                    target * self.line_bytes, now
                )
            if len(buffer) >= self.entries:
                buffer.popitem(last=False)
            buffer[target] = now + cost
            self.prefetches += 1

    # -- protocol ----------------------------------------------------------------

    def capability(self) -> str:
        return CAP_STATEFUL

    def typical_extra_latency(self) -> int:
        return self.backing.typical_extra_latency()

    def reset(self) -> None:
        self._buffer.clear()
        self._table.clear()
        self.hits = 0
        self.late_hits = 0
        self.misses = 0
        self.prefetches = 0
        self.backing.reset()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        return {
            "prefetch_hit_rate": self.hit_rate,
            "prefetch_late_hits": self.late_hits,
            "prefetches_issued": self.prefetches,
        }

    def describe(self) -> str:
        return (
            f"prefetch(streams={self.streams}, degree={self.degree}, "
            f"{self.entries}x{self.line_bytes}B -> {self.backing.describe()})"
        )
