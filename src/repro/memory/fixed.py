"""The paper's memory model: a fixed memory differential."""

from __future__ import annotations

from ..errors import ConfigError
from .base import CAP_UNIFORM, MemorySystem

__all__ = ["FixedLatencyMemory"]


class FixedLatencyMemory(MemorySystem):
    """Every access costs ``mem_base + md`` cycles; no state.

    This is the model used for all of the paper's experiments: "we model
    its execution by considering every access to have a fixed cost",
    i.e. a weak memory system capturing no locality.
    """

    def __init__(self, memory_differential: int) -> None:
        if memory_differential < 0:
            raise ConfigError(
                f"memory differential must be >= 0, got {memory_differential}"
            )
        self.memory_differential = memory_differential

    def extra_latency(self, addr: int, now: int) -> int:
        return self.memory_differential

    def latencies(self, addrs, now: int) -> list[int]:
        return [self.memory_differential] * len(addrs)

    def capability(self) -> str:
        return CAP_UNIFORM

    def typical_extra_latency(self) -> int:
        return self.memory_differential

    def time_sensitive(self) -> bool:
        return False

    def uniform_extra_latency(self) -> int:
        # Address-independent by definition: the engine batches the
        # lookup into its precomputed latency table.
        return self.memory_differential

    def reset(self) -> None:  # stateless
        return None

    def describe(self) -> str:
        return f"fixed(md={self.memory_differential})"
