"""Kernel registry: the workload models stand in for the PERFECT club.

The paper traces seven PERFECT Club programs (TRFD, ADM, FLO52Q,
DYFESM, QCD, MDG, TRACK). Neither the Fortran sources' inputs nor the
authors' tracing infrastructure are available, so each program is
modelled by a synthetic kernel that reproduces the *dependence
structure* of its dominant loops — the only property the paper's
experiments observe. Each kernel module documents which structural
features it models and which latency-hiding band the paper puts the
program in.

Kernels are pure functions of ``(scale, seed)`` and produce identical
traces for identical arguments.

Besides the statically registered specs, the registry supports
**dynamic resolvers** — callables that synthesise a spec from a
structured name. The generative workload grammar
(:mod:`repro.workloads`) registers one for ``gen:<family>:<seed>``
names, which makes unbounded families of generated kernels first-class
citizens of every consumer of :func:`get_kernel` (sessions, sweeps,
the disk cache, process-pool workers) without enumerating them.
Resolved specs must honour the same purity contract: the resulting
program is a pure function of ``(name, scale, seed)``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..errors import KernelError
from ..ir import Program

__all__ = [
    "Band",
    "KernelSpec",
    "register",
    "register_resolver",
    "get_kernel",
    "list_kernels",
    "build_kernel",
    "PAPER_ORDER",
]

#: Latency-hiding effectiveness bands from the paper's Table 1.
Band = str
HIGH, MODERATE, POOR = "high", "moderate", "poor"

#: Table 1 lists the programs in this order.
PAPER_ORDER = ("trfd", "adm", "flo52q", "dyfesm", "qcd", "mdg", "track")


@dataclass(frozen=True)
class KernelSpec:
    """A registered workload model.

    Attributes:
        name: registry key (lower-case PERFECT program name).
        title: the PERFECT Club program modelled.
        description: which loops/structures the model captures.
        band: expected latency-hiding band ("high" / "moderate" /
            "poor") from the paper's Table 1 grouping — or a zero-arg
            callable computing it on demand, so dynamically resolved
            specs (whose band prediction needs a probe build) stay
            cheap to resolve. Read through :attr:`resolved_band`.
        build: ``(scale, seed) -> Program``; ``scale`` is the
            approximate architectural instruction count.
        default_seed: seed used when the caller does not pass one.
    """

    name: str
    title: str
    description: str
    band: Band | Callable[[], Band]
    build: Callable[[int, int], Program]
    default_seed: int = 1997

    @property
    def resolved_band(self) -> Band:
        """The band, forcing (and memoising) a lazy prediction."""
        band = self.band
        if callable(band):
            band = band()
            object.__setattr__(self, "band", band)
        return band

    def __call__(self, scale: int, seed: int | None = None) -> Program:
        if scale < 100:
            raise KernelError(
                f"kernel {self.name!r}: scale must be >= 100, got {scale}"
            )
        return self.build(scale, self.default_seed if seed is None else seed)


_REGISTRY: dict[str, KernelSpec] = {}

#: Dynamic resolvers: each maps a name to a spec, or None to decline.
_RESOLVERS: list[Callable[[str], KernelSpec | None]] = []

#: Memoised dynamic resolutions, so a name always yields the same spec.
_RESOLVED: dict[str, KernelSpec] = {}


def register(spec: KernelSpec) -> KernelSpec:
    """Add a kernel to the registry (idempotent for identical specs)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise KernelError(f"kernel {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def register_resolver(
    resolver: Callable[[str], KernelSpec | None],
) -> Callable[[str], KernelSpec | None]:
    """Add a dynamic name resolver (idempotent for the same callable).

    Resolvers are consulted, in registration order, for names that are
    not statically registered. A resolver returns a
    :class:`KernelSpec` for names it owns and ``None`` for the rest;
    successful resolutions are memoised, so repeated lookups of one
    name return one spec object.
    """
    if resolver not in _RESOLVERS:
        _RESOLVERS.append(resolver)
    return resolver


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel by name (case-insensitive).

    Statically registered kernels win; otherwise the dynamic resolvers
    get a chance to synthesise a spec from the name (e.g. generated
    ``gen:<family>:<seed>`` workloads).
    """
    key = name.lower()
    if key in _REGISTRY:
        return _REGISTRY[key]
    if key in _RESOLVED:
        return _RESOLVED[key]
    for resolver in _RESOLVERS:
        spec = resolver(key)
        if spec is not None:
            _RESOLVED[key] = spec
            return spec
    known = ", ".join(sorted(_REGISTRY))
    raise KernelError(f"unknown kernel {name!r}; known kernels: {known}") from None


def list_kernels() -> list[str]:
    """Registered kernel names, paper order first, extras alphabetically."""
    extras = sorted(set(_REGISTRY) - set(PAPER_ORDER))
    return [name for name in PAPER_ORDER if name in _REGISTRY] + extras


def build_kernel(name: str, scale: int, seed: int | None = None) -> Program:
    """Build a registered kernel's trace at the given scale."""
    return get_kernel(name)(scale, seed)
