"""Kernel registry: the workload models stand in for the PERFECT club.

The paper traces seven PERFECT Club programs (TRFD, ADM, FLO52Q,
DYFESM, QCD, MDG, TRACK). Neither the Fortran sources' inputs nor the
authors' tracing infrastructure are available, so each program is
modelled by a synthetic kernel that reproduces the *dependence
structure* of its dominant loops — the only property the paper's
experiments observe. Each kernel module documents which structural
features it models and which latency-hiding band the paper puts the
program in.

Kernels are pure functions of ``(scale, seed)`` and produce identical
traces for identical arguments.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..errors import KernelError
from ..ir import Program

__all__ = [
    "Band",
    "KernelSpec",
    "register",
    "get_kernel",
    "list_kernels",
    "build_kernel",
    "PAPER_ORDER",
]

#: Latency-hiding effectiveness bands from the paper's Table 1.
Band = str
HIGH, MODERATE, POOR = "high", "moderate", "poor"

#: Table 1 lists the programs in this order.
PAPER_ORDER = ("trfd", "adm", "flo52q", "dyfesm", "qcd", "mdg", "track")


@dataclass(frozen=True)
class KernelSpec:
    """A registered workload model.

    Attributes:
        name: registry key (lower-case PERFECT program name).
        title: the PERFECT Club program modelled.
        description: which loops/structures the model captures.
        band: expected latency-hiding band ("high" / "moderate" /
            "poor") from the paper's Table 1 grouping.
        build: ``(scale, seed) -> Program``; ``scale`` is the
            approximate architectural instruction count.
        default_seed: seed used when the caller does not pass one.
    """

    name: str
    title: str
    description: str
    band: Band
    build: Callable[[int, int], Program]
    default_seed: int = 1997

    def __call__(self, scale: int, seed: int | None = None) -> Program:
        if scale < 100:
            raise KernelError(
                f"kernel {self.name!r}: scale must be >= 100, got {scale}"
            )
        return self.build(scale, self.default_seed if seed is None else seed)


_REGISTRY: dict[str, KernelSpec] = {}


def register(spec: KernelSpec) -> KernelSpec:
    """Add a kernel to the registry (idempotent for identical specs)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise KernelError(f"kernel {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel by name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KernelError(f"unknown kernel {name!r}; known kernels: {known}") from None


def list_kernels() -> list[str]:
    """Registered kernel names, paper order first, extras alphabetically."""
    extras = sorted(set(_REGISTRY) - set(PAPER_ORDER))
    return [name for name in PAPER_ORDER if name in _REGISTRY] + extras


def build_kernel(name: str, scale: int, seed: int | None = None) -> Program:
    """Build a registered kernel's trace at the given scale."""
    return get_kernel(name)(scale, seed)
