"""QCD: lattice gauge theory (link updates with acceptance feedback).

QCD evolves SU(3) gauge links on a 4-D lattice with a Metropolis
update: gather the staple matrices around a link, compute the action
change through deep matrix-product chains, and *accept or reject* the
proposal — a decision that feeds back into which lattice site the
sweep touches next (and into the random-number state).

Structural features modelled:

* structured multi-operand gathers per link (six operand loads);
* deep serial FP chains (~9 dependent operations) standing in for the
  3x3 complex matrix products;
* the acceptance test: every ``_ACCEPT_PERIOD`` links a data value is
  converted to an integer and used in the *addressing* of the next
  group — a periodic DU -> AU crossing (loss of decoupling) that is
  exactly the mechanism limiting QCD's latency hiding;
* stores of the updated link.

Paper band: **moderately effective**.
"""

from __future__ import annotations

from ..ir import KernelBuilder, Program
from .base import MODERATE, KernelSpec, register

__all__ = ["build_qcd", "QCD"]

#: Links between acceptance-driven address feedbacks.
_ACCEPT_PERIOD = 12
#: Instructions per link: iv + 6x(addr+load) + 14 FP + 2x(addr+store).
_PER_LINK = 1 + 12 + 14 + 4


def build_qcd(scale: int, seed: int) -> Program:
    """Build a QCD-like link sweep of roughly ``scale`` instructions."""
    links = max(_ACCEPT_PERIOD, scale // _PER_LINK)
    sites = max(64, links // 2)
    builder = KernelBuilder("qcd", seed=seed)
    u = builder.array("u", sites * 4)
    staple = builder.array("staple", sites * 4)
    builder.set_meta(links=links, sites=sites,
                     accept_period=_ACCEPT_PERIOD,
                     model="Metropolis link updates with acceptance feedback")

    iv = None
    accept_gate = None  # integer value from the last acceptance decision
    for link in range(links):
        iv = builder.induction(iv, tag="link")
        base = (link * 4) % (sites * 4 - 8)
        # Only the first link after an acceptance decision has its site
        # selection steered by the decision; the rest of the group
        # follows the regular sweep order (affine).
        gated = accept_gate is not None and link % _ACCEPT_PERIOD == 0
        deps = (iv, accept_gate) if gated else (iv,)
        operands = [
            builder.load(u, base + k, *deps, tag="u") for k in range(3)
        ] + [
            builder.load(staple, base + k, *deps, tag="staple") for k in range(3)
        ]
        # SU(3)-flavoured serial chain (~9 dependent FP operations) ...
        t = builder.fmul(operands[0], operands[3], tag="su3")
        t = builder.fadd(t, operands[1], tag="su3")
        t = builder.fmul(t, operands[4], tag="su3")
        t = builder.fadd(t, operands[2], tag="su3")
        t = builder.fmul(t, operands[5], tag="su3")
        t = builder.fsub(t, operands[0], tag="su3")
        t = builder.fmul(t, t, tag="su3")
        action = builder.fadd(t, operands[3], tag="su3")
        updated = builder.fmul(action, operands[1], tag="su3")
        # ... plus the second staple contraction (independent 5-op chain).
        s = builder.fmul(operands[1], operands[4], tag="staple2")
        s = builder.fadd(s, operands[2], tag="staple2")
        s = builder.fmul(s, operands[5], tag="staple2")
        s = builder.fadd(s, operands[0], tag="staple2")
        reunit = builder.fmul(s, s, tag="staple2")
        builder.store(u, base, updated, iv, tag="out")
        builder.store(u, base + 1, reunit, iv, tag="out")
        if link % _ACCEPT_PERIOD == 0:
            # Metropolis acceptance at the group's lead link: the data
            # result steers the next group's site selection — a
            # DU -> AU loss-of-decoupling event that threads a serial
            # chain through one link per group.
            accept_gate = builder.cvt_f2i(action, tag="accept")
    return builder.build()


QCD = register(
    KernelSpec(
        name="qcd",
        title="QCD (lattice gauge theory, PERFECT Club)",
        description="link updates with structured gathers, deep SU(3) "
        "chains and periodic acceptance-driven address feedback",
        band=MODERATE,
        build=build_qcd,
    )
)
