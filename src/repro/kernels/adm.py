"""ADM: pseudospectral air-pollution model (butterfly transform stages).

ADM (Air pollution, Diffusion Model) spends its time in pseudospectral
transforms: repeated butterfly passes over ping-ponged work arrays
with twiddle-factor scaling. Stage ``s+1`` of a line reads what stage
``s`` wrote, so the trace carries genuine store-to-load dependencies;
many independent mesh *lines* are transformed per stage, which is
where the program's parallelism comes from.

Structural features modelled:

* butterfly pairs — two loads, a short FP combine, two stores — that
  are independent within a (stage, line) and flow between stages
  through memory (perfect-disambiguation store-to-load edges);
* multiple independent lines per stage (the latency of one line's
  stage chain is amortised across the others);
* strided twiddle-factor loads;
* per-block plan descriptors fetched from memory (AU self-loads, as in
  a real transform's precomputed plan).

Paper band: **highly effective**.
"""

from __future__ import annotations

from ..ir import KernelBuilder, Program
from .base import HIGH, KernelSpec, register

__all__ = ["build_adm", "ADM"]

#: Butterfly pairs per plan-descriptor block.
_BLOCK_PAIRS = 8
#: Instructions per pair: iv + 3 addr + 3 loads + 12 FP + 2 addr + 2 stores.
_PER_PAIR = 23
#: Points per transform line (pairs per line-stage = _POINTS // 2).
_POINTS = 32
#: Independent lines transformed in each stage.
_LINES = 4


def build_adm(scale: int, seed: int) -> Program:
    """Build an ADM-like multi-line transform of ~``scale`` instructions."""
    pairs_per_line = _POINTS // 2
    per_line = pairs_per_line * _PER_PAIR + (pairs_per_line // _BLOCK_PAIRS) * 3
    per_stage = _LINES * per_line
    stages = max(2, round(scale / per_stage))
    builder = KernelBuilder("adm", seed=seed)
    ping = builder.array("ping", _LINES * _POINTS)
    pong = builder.array("pong", _LINES * _POINTS)
    twiddle = builder.array("twiddle", pairs_per_line)
    blocks_per_line = pairs_per_line // _BLOCK_PAIRS
    plan = builder.array("plan", stages * _LINES * blocks_per_line)
    builder.set_meta(stages=stages, points=_POINTS, lines=_LINES,
                     block_pairs=_BLOCK_PAIRS,
                     model="pseudospectral butterfly stages")

    src, dst = ping, pong
    descriptor_index = 0
    for s in range(stages):
        stride = 1 << (s % 4)
        for line in range(_LINES):
            base = line * _POINTS
            iv = None
            descriptor = None
            for p in range(pairs_per_line):
                if p % _BLOCK_PAIRS == 0:
                    # Plan descriptor: gates this block's addressing.
                    iv = builder.induction(iv, tag="block")
                    descriptor = builder.load(plan, descriptor_index, iv,
                                              tag="plan")
                    descriptor_index += 1
                assert descriptor is not None
                iv = builder.induction(iv, tag="pair")
                hi = base + (p * 2) % _POINTS
                lo = base + (p * 2 + stride) % _POINTS
                a = builder.load(src, hi, iv, descriptor, tag="a")
                b = builder.load(src, lo, iv, descriptor, tag="b")
                w = builder.load(twiddle, p % pairs_per_line, iv, tag="w")
                # Complex rotation (twiddle multiply, ~5-deep chain)
                # with the independent physics terms computed alongside
                # and joined at the end.
                rot1 = builder.fmul(b, w, tag="bfly")
                rot2 = builder.fmul(rot1, w, tag="bfly")
                scaled = builder.fadd(rot1, rot2, tag="bfly")
                upper = builder.fadd(a, scaled, tag="bfly")
                lower = builder.fsub(a, scaled, tag="bfly")
                damp_a = builder.fmul(a, w, tag="physics")
                damp_b = builder.fmul(b, w, tag="physics")
                emit_term = builder.fadd(damp_a, damp_b, tag="physics")
                decay_term = builder.fmul(a, b, tag="physics")
                source = builder.fadd(emit_term, decay_term, tag="physics")
                settled = builder.fadd(upper, source, tag="physics")
                mixed = builder.fmul(settled, w, tag="physics")
                builder.store(dst, hi, mixed, iv, descriptor, tag="out")
                builder.store(dst, lo, lower, iv, descriptor, tag="out")
        src, dst = dst, src
    return builder.build()


ADM = register(
    KernelSpec(
        name="adm",
        title="ADM (pseudospectral air-pollution model, PERFECT Club)",
        description="multi-line butterfly transform stages with ping-pong "
        "arrays, store-to-load stage coupling and plan-descriptor self-loads",
        band=HIGH,
        build=build_adm,
    )
)
