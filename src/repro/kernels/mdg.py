"""MDG: molecular dynamics of liquid water (stepped pair-force loops).

MDG advances a box of water molecules: every time step evaluates
intermolecular forces over a neighbour pair list (gather positions,
distance with a square root, potential, scatter-accumulate forces) and
then integrates the positions. Step ``t+1`` gathers the positions step
``t`` integrated, so the trace carries a cross-step memory braid over a
fixed-size molecule set — the structural reason MDG hides latency only
moderately well.

Structural features modelled:

* pair-list self-loads: two index loads per pair whose values feed the
  gather addresses (two-deep memory chains on the AU);
* randomised (seeded) pair targets with hot molecules, so the
  scatter-accumulate read-modify-writes serialise irregularly;
* an interaction chain ~9 FP deep including ``fsqrt``;
* energy accumulation into rotating partial sums;
* the position-integration loop closing the cross-step braid.

Paper band: **moderately effective**.
"""

from __future__ import annotations

from ..ir import KernelBuilder, Program, Value
from .base import MODERATE, KernelSpec, register

__all__ = ["build_mdg", "MDG"]

#: Molecules in the (fixed-size) box.
_MOLECULES = 24
#: Interacting pairs evaluated per time step.
_PAIRS_PER_STEP = 40
#: Rotating partial sums for the energy reduction.
_ACCUMULATORS = 4
#: Instructions per pair: iv + 2x(addr+load) list + 2x(addr+load)
#: gather + 12 FP + 1 energy fadd + 2x(addr+load+fadd+addr+store).
_PER_PAIR = 1 + 4 + 4 + 12 + 1 + 10
#: Instructions per molecule integration: iv + (addr+load) force
#: + (addr+load) pos + 3 FP + (addr+store) pos.
_PER_MOLECULE = 1 + 2 + 2 + 3 + 2
_PER_STEP = _PAIRS_PER_STEP * _PER_PAIR + _MOLECULES * _PER_MOLECULE


def build_mdg(scale: int, seed: int) -> Program:
    """Build an MDG-like stepped MD run of roughly ``scale`` instructions."""
    steps = max(2, round(scale / _PER_STEP))
    builder = KernelBuilder("mdg", seed=seed)
    pairlist = builder.array("pairlist", _PAIRS_PER_STEP * 2)
    position = builder.array("position", _MOLECULES)
    force = builder.array("force", _MOLECULES)
    builder.set_meta(steps=steps, molecules=_MOLECULES,
                     pairs_per_step=_PAIRS_PER_STEP,
                     model="stepped neighbour-list water forces")

    accumulators: list[Value | None] = [None] * _ACCUMULATORS
    iv = None
    for _step in range(steps):
        for p in range(_PAIRS_PER_STEP):
            iv = builder.induction(iv, tag="pair")
            mol_i = builder.rng.randrange(_MOLECULES)
            mol_j = builder.rng.randrange(_MOLECULES)
            if mol_j == mol_i:
                mol_j = (mol_i + 1) % _MOLECULES
            # Neighbour-list indices: gating self-loads.
            index_i = builder.load(pairlist, 2 * p, iv, tag="list")
            index_j = builder.load(pairlist, 2 * p + 1, iv, tag="list")
            xi = builder.load(position, mol_i, iv, index_i, tag="gather")
            xj = builder.load(position, mol_j, iv, index_j, tag="gather")
            # Interaction: the distance chain (with its square root) in
            # series, and the polynomial potential terms in parallel,
            # joined into the force magnitude.
            d = builder.fsub(xi, xj, tag="inter")
            d2 = builder.fmul(d, d, tag="inter")
            p1 = builder.fmul(xi, xj, tag="poly")
            p2 = builder.fadd(xi, xj, tag="poly")
            p3 = builder.fmul(p1, p2, tag="poly")
            p4 = builder.fadd(p3, p1, tag="poly")
            p5 = builder.fmul(p2, p2, tag="poly")
            energy = builder.fadd(d2, p4, tag="inter")
            fmag = builder.fadd(energy, p5, tag="inter")
            scaled = builder.fmul(fmag, d, tag="inter")
            # The square-root distance feeds only the (off-critical-path)
            # potential-energy tally, as in the real O-O interaction.
            r = builder.fsqrt(d2, tag="inter")
            inv = builder.fmul(r, r, tag="inter")
            # Energy reduction into rotating partial sums.
            slot = p % _ACCUMULATORS
            previous = accumulators[slot]
            accumulators[slot] = (
                inv if previous is None
                else builder.fadd(previous, inv, tag="energy")
            )
            # Scatter-accumulate forces on both molecules. The force
            # array is indexed by the compacted local index (affine),
            # so only the gathers pay the indirection.
            for mol in (mol_i, mol_j):
                old = builder.load(force, mol, iv, tag="rmw")
                new = builder.fadd(old, scaled, tag="rmw")
                builder.store(force, mol, new, iv, tag="rmw")
        # Integration: advance every molecule from its accumulated force.
        for mol in range(_MOLECULES):
            iv = builder.induction(iv, tag="integrate")
            f = builder.load(force, mol, iv, tag="update")
            x = builder.load(position, mol, iv, tag="update")
            v1 = builder.fmul(f, f, tag="update")
            v2 = builder.fadd(v1, x, tag="update")
            x_new = builder.fadd(v2, f, tag="update")
            builder.store(position, mol, x_new, iv, tag="update")
    return builder.build()


MDG = register(
    KernelSpec(
        name="mdg",
        title="MDG (molecular dynamics of water, PERFECT Club)",
        description="stepped pair-list force loops with double index "
        "self-loads, random gather/scatter and a position-integration braid",
        band=MODERATE,
        build=build_mdg,
    )
)
