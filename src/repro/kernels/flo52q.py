"""FLO52Q: transonic-flow Euler solver (2-D stencil sweeps).

FLO52 computes the inviscid flow past an airfoil with a multigrid
finite-volume scheme. Its dominant loops are five-point stencil flux
sweeps over a 2-D mesh: per cell, load the cell and its four
neighbours, combine them through a moderately deep floating-point flux
chain, and store a residual.

Structural features modelled:

* wide data parallelism — every cell in a sweep is independent, so
  instruction-level parallelism keeps growing with window size (the
  paper calls FLO52Q "highly parallel");
* affine five-point addressing driven by an induction chain (pure
  access-stream work for the AU);
* per-row mesh descriptors loaded from memory — AU *self-loads* that
  gate the addressing of a whole row, which is what bounds how far the
  AU can pipeline accesses with a finite window (multigrid levels and
  row offsets live in memory in the real code);
* a serial flux chain per cell, giving each cell a critical path of a
  few tens of cycles.

Paper band: **highly effective** at hiding latency, and the program
with the largest DM-over-SWSM gap.
"""

from __future__ import annotations

from ..ir import KernelBuilder, Program
from .base import HIGH, KernelSpec, register

__all__ = ["build_flo52q", "FLO52Q"]

#: Cells per mesh row; one descriptor self-load gates each row.
_ROW_CELLS = 8
#: Architectural instructions emitted per cell (see the emitter).
_PER_CELL = 26
#: Per-row overhead: row induction, descriptor address, descriptor load.
_PER_ROW = 3


def build_flo52q(scale: int, seed: int) -> Program:
    """Build a FLO52Q-like stencil sweep of roughly ``scale`` instructions."""
    rows = max(2, round(scale / (_ROW_CELLS * _PER_CELL + _PER_ROW)))
    builder = KernelBuilder("flo52q", seed=seed)
    width = _ROW_CELLS + 2  # interior cells plus halo columns
    w = builder.array("w", (rows + 2) * width)
    r = builder.array("r", (rows + 2) * width)
    rowptr = builder.array("rowptr", rows)
    builder.set_meta(rows=rows, row_cells=_ROW_CELLS, model="5-point flux sweep")

    def cell(i: int, j: int) -> int:
        return i * width + j

    row_iv = None
    for i in range(1, rows + 1):
        # Row descriptor: a self-load that gates the row's addressing.
        row_iv = builder.induction(row_iv, tag="row")
        descriptor = builder.load(rowptr, i - 1, row_iv, tag="rowdesc")
        cell_iv = None
        for j in range(1, _ROW_CELLS + 1):
            cell_iv = builder.induction(cell_iv, tag="cell")
            centre = builder.load(w, cell(i, j), cell_iv, descriptor, tag="c")
            north = builder.load(w, cell(i - 1, j), cell_iv, descriptor, tag="n")
            south = builder.load(w, cell(i + 1, j), cell_iv, descriptor, tag="s")
            east = builder.load(w, cell(i, j + 1), cell_iv, descriptor, tag="e")
            west = builder.load(w, cell(i, j - 1), cell_iv, descriptor, tag="w")
            # Flux evaluation: a ~5-deep serial chain plus parallel
            # dissipation terms joined at the end (the real flux kernel
            # has exactly this split between the convective chain and
            # the independent artificial-dissipation terms).
            t1 = builder.fadd(east, west, tag="flux")
            t2 = builder.fadd(north, south, tag="flux")
            t3 = builder.fmul(t1, centre, tag="flux")
            t4 = builder.fadd(t3, t2, tag="flux")
            t5 = builder.fmul(t4, centre, tag="flux")
            d1 = builder.fsub(east, centre, tag="dissip")
            d2 = builder.fsub(west, centre, tag="dissip")
            d3 = builder.fmul(d1, d1, tag="dissip")
            d4 = builder.fmul(d2, d2, tag="dissip")
            d5 = builder.fadd(d3, d4, tag="dissip")
            d6 = builder.fmul(north, south, tag="dissip")
            joined = builder.fadd(t5, d5, tag="resid")
            result = builder.fadd(joined, d6, tag="resid")
            builder.store(r, cell(i, j), result, cell_iv, descriptor,
                          tag="resid")
    return builder.build()


FLO52Q = register(
    KernelSpec(
        name="flo52q",
        title="FLO52Q (transonic flow, PERFECT Club)",
        description="five-point stencil flux sweeps with per-row mesh "
        "descriptors and a serial flux chain per cell",
        band=HIGH,
        build=build_flo52q,
    )
)
