"""TRACK: missile tracking (data-dependent observation addressing).

TRACK correlates sensor observations with a small set of active tracks
through a predict/match/update filter. The address of the observation
a track examines next depends on where the filter *predicts* the
target will be — i.e. on floating-point state computed in the previous
step. This is the canonical loss-of-decoupling program: address
computation chases data computation every step, and the paper reports
both little parallelism and the smallest DM-over-SWSM gap.

Structural features modelled:

* a handful of concurrent tracks (the only parallelism);
* a per-track recurrence: the filter state of step ``t`` feeds step
  ``t+1`` (serial FP chains across the whole trace);
* data-dependent addressing: the predicted position (FP) is converted
  to an integer and used in the observation-load address — a DU -> AU
  crossing *every step* of every track;
* a small amount of independent smoothing work per step (history
  loads and FP) so the machines have something to overlap.

Paper band: **poorly effective**.
"""

from __future__ import annotations

from ..ir import KernelBuilder, Program, Value
from .base import POOR, KernelSpec, register

__all__ = ["build_track", "TRACK"]

#: Concurrent tracks (the program's total parallelism).
_TRACKS = 4
#: Instructions per (track, step): iv + cvt + 2x(addr+load) obs window
#: + 8 FP filter chain + 6x(addr+load) history + 8 FP smooth
#: + (addr+store) state.
_PER_STEP = 1 + 1 + 4 + 8 + 12 + 8 + 2


def build_track(scale: int, seed: int) -> Program:
    """Build a TRACK-like filter run of roughly ``scale`` instructions."""
    steps = max(4, round(scale / (_PER_STEP * _TRACKS)))
    builder = KernelBuilder("track", seed=seed)
    observations = builder.array("observations", steps * _TRACKS)
    history = builder.array("history", steps * _TRACKS)
    state_out = builder.array("state", steps * _TRACKS)
    builder.set_meta(tracks=_TRACKS, steps=steps,
                     model="predict/match/update tracking filter")

    # Per-track filter state carried across steps (the recurrence).
    states: list[Value | None] = [None] * _TRACKS
    iv = None
    for step in range(steps):
        for track in range(_TRACKS):
            iv = builder.induction(iv, tag="step")
            previous = states[track]
            slot = step * _TRACKS + track
            if previous is None:
                observation = builder.load(observations, slot, iv, tag="obs")
                neighbour = builder.load(
                    observations, (slot + 1) % observations.length, iv,
                    tag="obs",
                )
            else:
                # Predicted position -> integer index -> observation
                # address: the loss-of-decoupling event. The matcher
                # examines a two-wide observation window.
                predicted = builder.cvt_f2i(previous, tag="predict")
                observation = builder.load(
                    observations, slot, iv, predicted, tag="obs"
                )
                neighbour = builder.load(
                    observations, (slot + 1) % observations.length, iv,
                    predicted, tag="obs",
                )
            # Filter update: serial 8-deep FP chain through the state.
            innovation = (
                observation if previous is None
                else builder.fsub(observation, previous, tag="filter")
            )
            g1 = builder.fmul(innovation, innovation, tag="filter")
            g2 = builder.fadd(g1, observation, tag="filter")
            g3 = builder.fmul(g2, innovation, tag="filter")
            g4 = builder.fadd(g3, g1, tag="filter")
            g5 = builder.fmul(g4, g2, tag="filter")
            g6 = builder.fadd(g5, g3, tag="filter")
            new_state = builder.fadd(
                g6, previous if previous is not None else observation,
                tag="filter",
            )
            states[track] = new_state
            # Independent smoothing work: overlappable history loads
            # over a six-deep track-history window.
            history_values = [
                builder.load(
                    history, (slot + k * _TRACKS) % history.length, iv,
                    tag="hist",
                )
                for k in range(6)
            ]
            s1 = builder.fadd(history_values[0], history_values[1],
                              tag="smooth")
            s2 = builder.fadd(history_values[2], history_values[3],
                              tag="smooth")
            s3 = builder.fadd(history_values[4], history_values[5],
                              tag="smooth")
            s4 = builder.fmul(s1, s2, tag="smooth")
            s5 = builder.fadd(s4, s3, tag="smooth")
            s6 = builder.fmul(s5, s1, tag="smooth")
            s7 = builder.fadd(s6, neighbour, tag="smooth")
            builder.fmul(s7, s4, tag="smooth")
            builder.store(state_out, slot, new_state, iv, tag="out")
    return builder.build()


TRACK = register(
    KernelSpec(
        name="track",
        title="TRACK (missile tracking, PERFECT Club)",
        description="predict/match/update filters with per-step "
        "data-dependent observation addressing and per-track recurrences",
        band=POOR,
        build=build_track,
    )
)
