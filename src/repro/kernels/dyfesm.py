"""DYFESM: structural-dynamics finite-element solver (explicit stepping).

DYFESM integrates the dynamics of a structure with an explicit
finite-element scheme. Every time step has two phases: an *element
loop* (fetch node indices from the connectivity table, gather nodal
displacements, evaluate the element force through a moderate FP chain,
scatter-accumulate into the global force vector) and a *node-update
loop* (read the accumulated force, advance the displacement, store it
back). Step ``t+1`` gathers the displacements step ``t`` wrote, so the
trace carries a braid of store-to-load dependencies whose granularity
is one time step over a fixed-size mesh.

Structural features modelled:

* connectivity self-loads gating the gather addresses (two-deep memory
  chains on the AU);
* gather/scatter indirection with shared nodes inside a step;
* the cross-step memory braid: gather(t+1) <- disp-store(t) <-
  force-load(t) <- force-store(t) <- gather(t) — several memory hops
  per step that no window size can collapse, which is what caps the
  achievable latency hiding at a moderate level;
* a serial element-force chain of ~6 FP operations.

Paper band: **moderately effective**.
"""

from __future__ import annotations

from ..ir import KernelBuilder, Program
from .base import MODERATE, KernelSpec, register

__all__ = ["build_dyfesm", "DYFESM"]

#: Elements in the (fixed-size) mesh processed each time step.
_ELEMENTS = 24
#: Nodes per element (rod elements).
_NODES = 2
#: Mesh nodes.
_MESH_NODES = _ELEMENTS + 1
#: Instructions per element: connectivity phase (iv + 2x(addr+load))
#: plus element phase (iv + 2x(addr+load) gather + 13 FP
#: + 2x(addr+load+fadd+addr+store) scatter).
_PER_ELEMENT = 5 + (1 + 4 + 13 + 10)
#: Instructions per node update: iv + (addr+load) force + 2 FP
#: + (addr+store) disp.
_PER_NODE = 1 + 2 + 2 + 2
_PER_STEP = _ELEMENTS * _PER_ELEMENT + _MESH_NODES * _PER_NODE


def build_dyfesm(scale: int, seed: int) -> Program:
    """Build a DYFESM-like stepped FEM run of ~``scale`` instructions."""
    steps = max(2, round(scale / _PER_STEP))
    builder = KernelBuilder("dyfesm", seed=seed)
    conn = builder.array("conn", _ELEMENTS * _NODES)
    disp = builder.array("disp", _MESH_NODES)
    force = builder.array("force", _MESH_NODES)
    builder.set_meta(steps=steps, elements=_ELEMENTS, mesh_nodes=_MESH_NODES,
                     model="explicit FEM time stepping")

    iv = None
    for _step in range(steps):
        # Connectivity phase: fetch the whole step's node indices in one
        # affine burst (real assemblers block the connectivity walk), so
        # one memory round-trip gates a block of gathers rather than
        # serialising element by element.
        step_indices: list[list] = []
        for e in range(_ELEMENTS):
            iv = builder.induction(iv, tag="conn")
            step_indices.append([
                builder.load(conn, e * _NODES + k, iv, tag="conn")
                for k in range(_NODES)
            ])
        # Element loop: gather, force evaluation, scatter-accumulate.
        for e in range(_ELEMENTS):
            iv = builder.induction(iv, tag="elem")
            node_ids = [e, e + 1]  # rod mesh: adjacent elements share a node
            index_values = step_indices[e]
            gathered = []
            for k, node in enumerate(node_ids):
                # The first node of each rod follows the structured
                # numbering (affine); the second goes through the
                # connectivity value (a gated, two-deep memory chain).
                if k == 0:
                    gathered.append(builder.load(disp, node, iv, tag="gather"))
                else:
                    gathered.append(builder.load(disp, node, iv,
                                                 index_values[k],
                                                 tag="gather"))
            # Element force: a ~6-deep strain/stress chain plus parallel
            # mass and damping terms joined at the end.
            t1 = builder.fsub(gathered[0], gathered[1], tag="force")
            t2 = builder.fmul(t1, t1, tag="force")
            t3 = builder.fadd(t2, gathered[0], tag="force")
            t4 = builder.fmul(t3, t1, tag="force")
            t5 = builder.fadd(t4, t2, tag="force")
            t6 = builder.fmul(t5, t3, tag="force")
            m1 = builder.fmul(gathered[0], gathered[0], tag="mass")
            m2 = builder.fmul(gathered[1], gathered[1], tag="mass")
            m3 = builder.fadd(m1, m2, tag="mass")
            damp1 = builder.fadd(gathered[0], gathered[1], tag="damp")
            damp2 = builder.fmul(damp1, damp1, tag="damp")
            joined = builder.fadd(t6, m3, tag="force")
            contribution = builder.fadd(joined, damp2, tag="force")
            for k, node in enumerate(node_ids):
                old = builder.load(force, node, iv, index_values[k], tag="rmw")
                new = builder.fadd(old, contribution, tag="rmw")
                builder.store(force, node, new, iv, index_values[k], tag="rmw")
        # Node-update loop: advance displacements from accumulated force.
        for node in range(_MESH_NODES):
            iv = builder.induction(iv, tag="node")
            f = builder.load(force, node, iv, tag="update")
            a = builder.fmul(f, f, tag="update")
            d = builder.fadd(a, f, tag="update")
            builder.store(disp, node, d, iv, tag="update")
    return builder.build()


DYFESM = register(
    KernelSpec(
        name="dyfesm",
        title="DYFESM (structural dynamics FEM, PERFECT Club)",
        description="explicit time stepping over a fixed mesh: gather / "
        "force-chain / scatter-accumulate, then a node-update sweep",
        band=MODERATE,
        build=build_dyfesm,
    )
)
