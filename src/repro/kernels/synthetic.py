"""Fully parameterised synthetic kernels for tests, studies and examples.

Unlike the seven PERFECT-club models — whose structure is fixed by the
programs they mimic — the synthetic stream exposes every structural
knob directly: memory-operation mix, FP chain depth, self-load gating,
and DU->AU feedback. The test-suite and the ablation benchmarks use it
to isolate one mechanism at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KernelError
from ..ir import KernelBuilder, Program

__all__ = ["SyntheticParams", "build_synthetic_stream"]


@dataclass(frozen=True)
class SyntheticParams:
    """Structure of one synthetic work item (loop iteration).

    Attributes:
        loads: streaming loads per item.
        stores: streaming stores per item.
        chain_depth: length of the serial FP chain per item (0 means
            the item has no FP work).
        parallel_fp: additional independent FP operations per item.
        gate_group: if positive, one self-load is emitted every
            ``gate_group`` items and gates those items' addressing.
        feedback_period: if positive, every ``feedback_period`` items
            the FP result is converted to an integer and steers the
            next items' addressing (a DU -> AU crossing).
    """

    loads: int = 2
    stores: int = 1
    chain_depth: int = 4
    parallel_fp: int = 0
    gate_group: int = 0
    feedback_period: int = 0

    def __post_init__(self) -> None:
        if self.loads < 1:
            raise KernelError("synthetic stream needs at least one load")
        if self.stores < 0 or self.chain_depth < 0 or self.parallel_fp < 0:
            raise KernelError("synthetic stream parameters must be >= 0")
        if self.gate_group < 0 or self.feedback_period < 0:
            raise KernelError("synthetic stream parameters must be >= 0")

    @property
    def per_item(self) -> int:
        """Architectural instructions per work item (without gates)."""
        per = 1  # induction
        per += 2 * self.loads + 2 * self.stores  # address + memory op
        per += max(0, self.chain_depth - 1) + (1 if self.chain_depth else 0)
        per += self.parallel_fp
        return per


def build_synthetic_stream(
    scale: int,
    params: SyntheticParams = SyntheticParams(),
    seed: int = 0,
    name: str = "synthetic",
) -> Program:
    """Build a synthetic streaming kernel of roughly ``scale`` instructions."""
    items = max(2, scale // params.per_item)
    builder = KernelBuilder(name, seed=seed)
    source = builder.array("source", items * params.loads + 1)
    sink = builder.array("sink", items * max(1, params.stores))
    gates = builder.array("gates", max(1, items))
    builder.set_meta(items=items, params=repr(params))

    iv = None
    gate = None
    feedback = None
    for item in range(items):
        if params.gate_group and item % params.gate_group == 0:
            gate = builder.load(gates, item % gates.length, tag="gate")
        iv = builder.induction(iv, tag="item")
        deps = [iv]
        if gate is not None:
            deps.append(gate)
        if feedback is not None:
            deps.append(feedback)
        loaded = [
            builder.load(source, (item * params.loads + k) % source.length,
                         *deps, tag="stream")
            for k in range(params.loads)
        ]
        value = loaded[0]
        for depth in range(params.chain_depth):
            operand = loaded[depth % len(loaded)]
            value = builder.fadd(value, operand, tag="chain")
        for k in range(params.parallel_fp):
            builder.fmul(loaded[k % len(loaded)], loaded[0], tag="parfp")
        for k in range(params.stores):
            builder.store(sink, (item * params.stores + k) % sink.length,
                          value if params.chain_depth else None,
                          *deps, tag="out")
        if params.feedback_period and (item + 1) % params.feedback_period == 0:
            if params.chain_depth:
                feedback = builder.cvt_f2i(value, tag="feedback")
    return builder.build()
