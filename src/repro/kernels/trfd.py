"""TRFD: two-electron integral transformation (tiled matrix products).

TRFD's kernel is a sequence of matrix multiplications over a
triangularly packed index space: the innermost loops are dot products
``acc += X[ia+k] * V[k,j]`` where ``ia`` is a packed-triangle offset
fetched from an index table.

Structural features modelled:

* many independent dot products (high instruction-level parallelism);
* serial accumulation chains of length ``K`` inside each dot product
  (1990s Fortran compilers did not re-associate reductions);
* packed-triangle offsets loaded from an index table — AU self-loads
  that gate the addressing of one dot-product group each;
* unit-stride streaming through both operand matrices.

Paper band: **highly effective** (the best latency hider in Table 1).
"""

from __future__ import annotations

from ..ir import KernelBuilder, Program
from .base import HIGH, KernelSpec, register

__all__ = ["build_trfd", "TRFD"]

#: Dot products per packed-offset group (per self-loaded descriptor).
_DOTS_PER_GROUP = 6
#: Multiply-accumulate steps per dot product.
_K = 4
#: Instructions per dot product: per k (iv + 2 addr + 2 loads + 4 FP)
#: = 9, plus a 2-FP tail and the final store with its address add.
_PER_DOT = _K * 9 + 4
_PER_GROUP = _DOTS_PER_GROUP * _PER_DOT + 3  # descriptor iv + addr + load


def build_trfd(scale: int, seed: int) -> Program:
    """Build a TRFD-like transformation of roughly ``scale`` instructions."""
    groups = max(2, round(scale / _PER_GROUP))
    builder = KernelBuilder("trfd", seed=seed)
    x = builder.array("x", groups * _DOTS_PER_GROUP * _K)
    v = builder.array("v", _DOTS_PER_GROUP * _K * 64)
    xrs = builder.array("xrs", groups * _DOTS_PER_GROUP)
    ia = builder.array("ia", groups)
    builder.set_meta(groups=groups, dots_per_group=_DOTS_PER_GROUP, k=_K,
                     model="packed-triangle matrix products")

    group_iv = None
    for g in range(groups):
        group_iv = builder.induction(group_iv, tag="group")
        # Packed-triangle offset for this group: a gating self-load.
        offset = builder.load(ia, g, group_iv, tag="iaoff")
        for j in range(_DOTS_PER_GROUP):
            acc = None
            sym = None
            iv = None
            for k in range(_K):
                iv = builder.induction(iv, tag="k")
                # X is indexed through the packed offset; V is affine.
                xk = builder.load(
                    x, (g * _DOTS_PER_GROUP + j) * _K + k, iv, offset, tag="x"
                )
                vk = builder.load(v, (j * _K + k) * 64 % v.length, iv, tag="v")
                product = builder.fmul(xk, vk, tag="mac")
                acc = product if acc is None else builder.fadd(acc, product, tag="mac")
                # Symmetrised second contraction (independent FP pair).
                mirrored = builder.fmul(xk, xk, tag="sym")
                sym = (
                    mirrored if sym is None
                    else builder.fadd(sym, mirrored, tag="sym")
                )
            assert acc is not None and sym is not None
            # Tail: join the two contractions (2 FP); the chains
            # themselves ran in parallel.
            folded = builder.fmul(sym, acc, tag="fold")
            result = builder.fadd(folded, acc, tag="fold")
            builder.store(xrs, g * _DOTS_PER_GROUP + j, result, iv, offset,
                          tag="out")
    return builder.build()


TRFD = register(
    KernelSpec(
        name="trfd",
        title="TRFD (two-electron integral transformation, PERFECT Club)",
        description="tiled matrix products with packed-triangle index "
        "self-loads and serial accumulation chains",
        band=HIGH,
        build=build_trfd,
    )
)
