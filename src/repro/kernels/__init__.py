"""Workload models: the seven PERFECT-club kernels plus synthetics.

Importing this package registers the seven paper kernels and installs
the generative-workload resolver, so ``gen:<family>:<seed>`` names
(see :mod:`repro.workloads`) resolve through :func:`get_kernel` —
including inside process-pool workers.
"""

from . import adm, dyfesm, flo52q, mdg, qcd, track, trfd  # noqa: F401 - register
from .base import (
    PAPER_ORDER,
    KernelSpec,
    build_kernel,
    get_kernel,
    list_kernels,
    register,
    register_resolver,
)
from .synthetic import SyntheticParams, build_synthetic_stream

# Installs the gen:<family>:<seed> resolver (import side effect).
from .. import workloads  # noqa: F401,E402  - resolver registration

__all__ = [
    "PAPER_ORDER",
    "KernelSpec",
    "SyntheticParams",
    "build_kernel",
    "build_synthetic_stream",
    "get_kernel",
    "list_kernels",
    "register",
    "register_resolver",
]
