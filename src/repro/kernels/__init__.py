"""Workload models: the seven PERFECT-club kernels plus synthetics.

Importing this package registers the seven paper kernels.
"""

from . import adm, dyfesm, flo52q, mdg, qcd, track, trfd  # noqa: F401 - register
from .base import (
    PAPER_ORDER,
    KernelSpec,
    build_kernel,
    get_kernel,
    list_kernels,
    register,
)
from .synthetic import SyntheticParams, build_synthetic_stream

__all__ = [
    "PAPER_ORDER",
    "KernelSpec",
    "SyntheticParams",
    "build_kernel",
    "build_synthetic_stream",
    "get_kernel",
    "list_kernels",
    "register",
]
