"""Command-line interface: regenerate any paper artefact from a shell.

Examples::

    python -m repro table1
    python -m repro fig4 --scale paper
    python -m repro ewr --program mdg
    python -m repro esw
    python -m repro ablation --study bypass --program flo52q
    python -m repro kernels

Generated workloads (the loop-nest grammar, corpus manifests and the
beyond-the-paper generalization study)::

    python -m repro generate --family gather --seed 7 --count 3
    python -m repro corpus --size 100 --seed 0
    python -m repro corpus --verify corpus/default-100.toml
    python -m repro ablation --study generalization --corpus corpus/default-100.toml
    python -m repro run --program gen:stencil:42 --machine dm

Generic declarative sweeps (any grid, parallel, disk-cached)::

    python -m repro --jobs 4 --cache-dir .repro-cache sweep --preset fig4
    python -m repro sweep --preset bypass --program mdg
    python -m repro sweep --spec my_sweep.toml
    python -m repro run --program trfd --machine swsm --window 64 --md 60

The paper-artifact report (persistent results store + static site)::

    python -m repro report --out docs/report
    python -m repro --scale tiny report --corpus corpus/default-100.toml
    python -m repro results --program mdg --machine dm
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .api import (
    PRESETS_NEEDING_PROGRAM,
    SWEEP_PRESETS,
    MemorySpec,
    Point,
    Session,
    Sweep,
    load_sweep,
)
from .errors import ReproError
from .experiments import PRESETS, active_preset, render_table
from .report import (
    ResultStore,
    build_report,
    emit_ablation,
    emit_esw,
    emit_ewr,
    emit_generate,
    emit_generalization,
    emit_kernels,
    emit_speedup,
    emit_table1,
    render_text,
)
from .workloads import (
    FAMILIES,
    generate_corpus,
    load_manifest,
    verify_corpus,
    write_manifest,
)

__all__ = ["main"]

_FIGURE_BY_COMMAND = {"fig4": "flo52q", "fig5": "mdg", "fig6": "track"}
_EWR_BY_COMMAND = {"fig7": "flo52q", "fig8": "mdg", "fig9": "track"}


def _window_arg(text: str) -> int | None:
    if text.lower() in ("unl", "unlimited", "none"):
        return None
    return int(text)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Jones & Topham (MICRO-30, 1997).",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default=None,
        help="fidelity preset (default: REPRO_SCALE env var or 'small')",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate sweeps on a process pool of N workers",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk result cache (reused across runs)",
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="batched sweep engine: group sweep points sharing a "
        "compiled program and simulate each group in one vectorized "
        "run (bit-exact; default: on, or the REPRO_BATCH_ENGINE "
        "env toggle; --no-batch forces per-point dispatch)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="append a structured JSONL span trace of this invocation "
        "(compiles, cache probes, simulations, sweeps; same format as "
        "the REPRO_TRACE env toggle; see docs/observability.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="LHE of the DM at md=60 (Table 1)")
    for command, program in _FIGURE_BY_COMMAND.items():
        sub.add_parser(command, help=f"speedup vs window for {program}")
    for command, program in _EWR_BY_COMMAND.items():
        sub.add_parser(command, help=f"equivalent window ratio for {program}")
    speedup = sub.add_parser("speedup", help="speedup figure for any kernel")
    speedup.add_argument("--program", default="flo52q")
    ewr = sub.add_parser("ewr", help="EWR figure for any kernel")
    ewr.add_argument("--program", default="flo52q")
    sub.add_parser("esw", help="effective-single-window study (Figure 3)")
    ablation = sub.add_parser("ablation", help="design-choice ablations")
    ablation.add_argument(
        "--study",
        choices=(
            "issue-split", "partition", "bypass", "expansion", "hierarchy",
            "generalization",
        ),
        default="issue-split",
    )
    ablation.add_argument("--program", default="flo52q")
    ablation.add_argument(
        "--corpus",
        default=None,
        metavar="FILE",
        help="corpus manifest for --study generalization "
        "(default: generate one in memory)",
    )
    ablation.add_argument(
        "--size",
        type=int,
        default=100,
        help="generated corpus size when no --corpus manifest is given",
    )
    ablation.add_argument(
        "--seed",
        type=int,
        default=0,
        help="corpus seed when no --corpus manifest is given",
    )
    sub.add_parser("kernels", help="list workload models and their structure")

    report = sub.add_parser(
        "report",
        help="render every paper artefact as a static site "
        "(Markdown/HTML/SVG) backed by the persistent results store",
    )
    report.add_argument(
        "--out",
        default="docs/report",
        metavar="DIR",
        help="site output directory (default: docs/report)",
    )
    report.add_argument(
        "--store",
        default=".repro-results.sqlite",
        metavar="FILE",
        help="persistent results store; grows incrementally across runs; "
        "pass 'none' to disable (default: .repro-results.sqlite)",
    )
    report.add_argument(
        "--program",
        default="flo52q",
        help="program the ablation pages study (default: flo52q)",
    )
    report.add_argument(
        "--corpus",
        default=None,
        metavar="FILE",
        help="corpus manifest for the generalization pages "
        "(default: generate one in memory)",
    )
    report.add_argument(
        "--corpus-size",
        type=int,
        default=12,
        help="generated corpus size when no --corpus manifest is given",
    )
    report.add_argument(
        "--corpus-seed",
        type=int,
        default=0,
        help="corpus seed when no --corpus manifest is given",
    )
    report.add_argument(
        "--bench",
        default="BENCH_engine.json",
        metavar="FILE",
        help="engine benchmark trajectory to fold into the site "
        "(page skipped when the file is missing)",
    )
    report.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default=argparse.SUPPRESS,
        help="fidelity preset (same as the global --scale)",
    )

    results = sub.add_parser(
        "results",
        help="inspect the persistent results store",
    )
    results.add_argument(
        "--store",
        default=".repro-results.sqlite",
        metavar="FILE",
        help="results store to read (default: .repro-results.sqlite)",
    )
    results.add_argument("--program", default=None, help="filter by program")
    results.add_argument("--machine", default=None, help="filter by machine")
    results.add_argument(
        "--limit",
        type=int,
        default=20,
        help="maximum rows to print (0 = all; default: 20)",
    )

    generate = sub.add_parser(
        "generate",
        help="sample kernels from the loop-nest grammar and characterize them",
    )
    generate.add_argument(
        "--family",
        choices=(*FAMILIES, "all"),
        default="all",
        help="access-pattern family to sample (default: one of each)",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--count",
        type=int,
        default=1,
        help="kernels per family, at consecutive seeds",
    )

    corpus = sub.add_parser(
        "corpus",
        help="write or verify a corpus manifest of generated kernels",
    )
    corpus.add_argument(
        "--verify",
        metavar="FILE",
        default=None,
        help="verify that every kernel of a manifest regenerates "
        "bit-identically",
    )
    corpus.add_argument("--size", type=int, default=100)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument(
        "--name", default=None, help="corpus name (default: default-<size>)"
    )
    corpus.add_argument(
        "--families",
        default=None,
        help="comma-separated family subset (default: all six)",
    )
    corpus.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="manifest path, .toml or .json "
        "(default: corpus/<name>.toml)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="evaluate a declarative sweep (named preset or TOML/JSON spec)",
    )
    source = sweep.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--preset",
        choices=sorted(SWEEP_PRESETS),
        help="named sweep reproducing a paper artefact grid",
    )
    source.add_argument(
        "--spec", metavar="FILE", help="sweep spec file (.toml or .json)"
    )
    sweep.add_argument(
        "--program",
        default=None,
        help="program for presets that take one (e.g. bypass, speedup)",
    )
    sweep.add_argument(
        "--timings",
        action="store_true",
        help="print a one-line telemetry summary (points, cache hits, "
        "engine strategies, wall seconds) after the sweep table",
    )

    serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP server "
        "(submit/poll/fetch jobs over HTTP; see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8077)
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads evaluating jobs",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="queued jobs before 503 backpressure",
    )
    serve.add_argument(
        "--store",
        default=".repro-results.sqlite",
        metavar="FILE",
        help="WAL-mode results store shared by the workers "
        "(finished points are served from it without re-simulation); "
        "'none' disables (default: .repro-results.sqlite)",
    )
    serve.add_argument(
        "--site",
        default=None,
        metavar="DIR",
        help="serve a built 'repro report' site under /v1/artifacts/",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="seconds to wait for running jobs on SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="per-connection socket timeout in seconds",
    )
    serve.add_argument(
        "--retry-after",
        type=int,
        default=1,
        metavar="S",
        help="Retry-After seconds sent with 503 backpressure",
    )

    run = sub.add_parser("run", help="evaluate one operating point")
    run.add_argument("--program", required=True)
    run.add_argument("--machine", default="dm")
    run.add_argument(
        "--window",
        type=_window_arg,
        default=32,
        help="instruction window size, or 'unlimited'",
    )
    run.add_argument("--md", type=int, default=60, dest="memory_differential")
    run.add_argument("--au-width", type=int, default=None)
    run.add_argument("--du-width", type=int, default=None)
    run.add_argument("--swsm-width", type=int, default=None)
    run.add_argument("--partition", default="slice")
    run.add_argument("--expansion", type=float, default=0.0)
    run.add_argument(
        "--memory",
        choices=(
            "fixed", "bypass", "cache", "hierarchy", "banked", "prefetch",
        ),
        default="fixed",
    )
    run.add_argument("--entries", type=int, default=64)
    run.add_argument("--line-bytes", type=int, default=32)
    run.add_argument(
        "--timings",
        action="store_true",
        help="print a one-line telemetry summary (engine strategy, "
        "counters, wall seconds) after the result",
    )
    return parser


def _make_session(args: argparse.Namespace):
    preset = PRESETS[args.scale] if args.scale else active_preset()
    session = Session(
        scale=preset.scale,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        batch=args.batch,
        trace=args.trace,
    )
    return session, preset


def _print_table1(session: Session, preset) -> None:
    print(render_text(emit_table1(session, preset)))


def _print_speedup(session: Session, preset, program: str) -> None:
    print(render_text(emit_speedup(session, preset, program)))


def _print_ewr(session: Session, preset, program: str) -> None:
    print(render_text(emit_ewr(session, preset, program)))


def _print_esw(session: Session) -> None:
    print(render_text(emit_esw(session)))


def _print_ablation(session: Session, study: str, program: str) -> None:
    print(render_text(emit_ablation(session, study, program)))


def _print_kernels(session: Session) -> None:
    print(render_text(emit_kernels(session)))


def _print_generalization(session: Session, preset, args) -> None:
    if args.corpus:
        corpus = load_manifest(args.corpus)
    else:
        corpus = generate_corpus(
            args.size, seed=args.seed, scale=preset.scale
        )
    summary, *_families = emit_generalization(session, preset, corpus)
    print(render_text(summary))


def _print_generate(session: Session, args) -> None:
    print(render_text(
        emit_generate(session, args.family, args.seed, args.count)
    ))


def _report_command(session: Session, preset, args) -> int:
    if args.store and args.store.lower() != "none":
        session.store(args.store)
    if args.corpus:
        corpus = load_manifest(args.corpus)
    else:
        corpus = generate_corpus(
            args.corpus_size, seed=args.corpus_seed, scale=preset.scale
        )
    manifest = build_report(
        session,
        preset,
        args.out,
        corpus=corpus,
        ablation_program=args.program,
        bench_path=args.bench,
    )
    charts = sum(1 for page in manifest["pages"] if page.endswith(".svg"))
    print(
        f"report: {len(manifest['artifacts'])} artefacts, "
        f"{len(manifest['pages'])} files ({charts} SVG charts) "
        f"-> {args.out}"
    )
    store = session.store()
    if store is not None:
        print(f"store: {len(store)} results in {args.store}")
    return 0


def _results_command(args) -> int:
    if not Path(args.store).exists():
        print(f"no results yet in {args.store}")
        return 0
    store = ResultStore(args.store)
    rows = store.rows(
        program=args.program,
        machine=args.machine,
        limit=args.limit if args.limit > 0 else None,
    )
    if not rows:
        print(f"no results yet in {args.store}")
        return 0
    table = []
    for row in rows:
        window = "unl" if row.window is None else row.window
        memory = _memory_label(MemorySpec(**row.memory))
        table.append([
            row.program, row.machine, window, row.memory_differential,
            memory, row.scale, row.cycles, f"{row.ipc:.3f}",
        ])
    print(render_table(
        ["program", "machine", "window", "md", "memory", "scale",
         "cycles", "ipc"],
        table,
        title=f"results store {args.store}",
    ))
    summary = store.summary()
    print(
        f"{summary['results']} stored results "
        f"({summary['programs']} programs, {summary['machines']} machines, "
        f"{summary['scales']} scales); showing {len(rows)}"
    )
    return 0


def _corpus_command(session: Session, preset, args) -> int:
    if args.verify:
        corpus = load_manifest(args.verify)
        problems = verify_corpus(corpus)
        if problems:
            for problem in problems:
                print(f"MISMATCH {problem}")
            print(
                f"{corpus.name}: {len(problems)} of {len(corpus)} kernels "
                f"failed to regenerate bit-identically"
            )
            return 1
        print(
            f"{corpus.name}: all {len(corpus)} kernels regenerate "
            f"bit-identically at scale {corpus.scale}"
        )
        return 0
    families = (
        tuple(f.strip() for f in args.families.split(","))
        if args.families else FAMILIES
    )
    corpus = generate_corpus(
        args.size,
        seed=args.seed,
        scale=preset.scale,
        families=families,
        name=args.name or "",
    )
    out = args.out or f"corpus/{corpus.name}.toml"
    if args.out is None and Path(out).exists():
        try:
            existing = load_manifest(out)
        except ReproError:
            # Unreadable or from an incompatible grammar/schema: this
            # command is exactly how such a manifest gets regenerated.
            existing = None
        if existing is not None and (
            existing.seed, existing.scale, existing.families
        ) != (corpus.seed, corpus.scale, corpus.families):
            print(
                f"refusing to overwrite {out}: it pins a different "
                f"corpus (seed {existing.seed}, scale {existing.scale},"
                f" {len(existing.families)} families); pass --out to "
                f"write elsewhere"
            )
            return 1
    path = write_manifest(corpus, out)
    rows = [
        [family, len(entries),
         sum(1 for e in entries if e.predicted_band == "high"),
         sum(1 for e in entries if e.predicted_band == "moderate"),
         sum(1 for e in entries if e.predicted_band == "poor")]
        for family, entries in corpus.by_family().items()
    ]
    print(render_table(
        ["family", "kernels", "pred high", "pred mod", "pred poor"],
        rows,
        title=f"Corpus {corpus.name}: {len(corpus)} kernels at "
              f"scale {corpus.scale} (seed {corpus.seed})",
    ))
    print(f"manifest written to {path}")
    return 0


def _build_sweep(args: argparse.Namespace) -> Sweep:
    if args.spec:
        return load_sweep(args.spec)
    factory = SWEEP_PRESETS[args.preset]
    if args.preset in PRESETS_NEEDING_PROGRAM:
        program = args.program or "flo52q"
        return factory(program)
    if args.program is not None:
        if args.preset in ("table1", "esw"):
            return factory(programs=(args.program,))
        raise SystemExit(
            f"--program does not apply to preset {args.preset!r}"
        )
    return factory()


def _memory_label(memory: MemorySpec) -> str:
    """Short sweep-table label showing the field each kind reads."""
    if memory.kind in ("bypass", "prefetch"):
        return f"{memory.kind}({memory.entries})"
    if memory.kind == "banked":
        return f"banked({memory.banks}x{memory.bank_busy}c)"
    if memory.kind == "hierarchy":
        levels = "stock" if memory.levels is None else len(memory.levels)
        return f"hierarchy({levels})"
    return memory.kind


def _print_sweep(
    session: Session, sweep: Sweep, timings: bool = False
) -> None:
    outcome = session.run(sweep)
    rows = []
    for point, result in outcome:
        window = "unl" if point.window is None else point.window
        memory = _memory_label(point.memory)
        rows.append([
            point.program, point.machine, window, point.memory_differential,
            memory, result.cycles, result.ipc,
        ])
    title = f"sweep {sweep.name or '<unnamed>'}: {len(outcome)} points"
    print(render_table(
        ["program", "machine", "window", "md", "memory", "cycles", "ipc"],
        rows, title=title,
    ))
    stats = session.stats
    print(
        f"cache: {stats['evaluated']} simulated, "
        f"{stats['disk_hits']} disk hits, "
        f"{stats['memory_hits']} memory hits"
    )
    if timings and outcome.telemetry is not None:
        print(_timings_line(outcome.telemetry))


def _timings_line(telemetry: dict) -> str:
    """The opt-in ``--timings`` one-liner for one sweep's rollup."""
    strategies = ",".join(
        f"{name}={count}"
        for name, count in sorted(telemetry["strategies"].items())
    ) or "none"
    counters = telemetry["counters"]
    return (
        f"timings: {telemetry['points']} points "
        f"({telemetry['evaluated']} simulated, "
        f"{telemetry['memory_hits']} memory / "
        f"{telemetry['disk_hits']} disk / "
        f"{telemetry['store_hits']} store hits), "
        f"strategies {strategies}, "
        f"{counters.get('batch_lanes', 0)} batch lanes, "
        f"{counters.get('steady_skips', 0)} steady skips, "
        f"{telemetry['wall_seconds']:.3f}s wall"
    )


def _print_run(session: Session, args: argparse.Namespace) -> None:
    point = Point(
        program=args.program,
        machine=args.machine,
        window=args.window,
        memory_differential=args.memory_differential,
        au_width=args.au_width if args.au_width is not None
        else session.au_width,
        du_width=args.du_width if args.du_width is not None
        else session.du_width,
        swsm_width=args.swsm_width if args.swsm_width is not None
        else session.swsm_width,
        partition=args.partition,
        expansion=args.expansion,
        memory=MemorySpec(
            kind=args.memory,
            entries=args.entries,
            line_bytes=args.line_bytes,
        ),
    )
    result = session.evaluate(point)
    window = "unlimited" if point.window is None else point.window
    print(
        f"{point.program} on {point.machine} "
        f"(window={window}, md={point.memory_differential}, "
        f"memory={point.memory.kind}): "
        f"{result.cycles} cycles, ipc={result.ipc:.3f}"
    )
    if point.machine != "serial":
        print(f"speedup over serial: {session.speedup(point):.3f}")
    if args.timings and result.telemetry is not None:
        telemetry = result.telemetry
        counters = ",".join(
            f"{name}={value}"
            for name, value in sorted(telemetry.counters.items())
            if value
        ) or "none"
        print(
            f"timings: strategy {telemetry.strategy} "
            f"(tier {telemetry.cache_tier}), counters {counters}, "
            f"{telemetry.wall_seconds:.3f}s wall"
        )


def _serve_command(preset, args) -> int:
    from .service import ServiceConfig, serve

    config = ServiceConfig(
        scale=preset.scale,
        workers=args.workers,
        queue_limit=args.queue_limit,
        cache_dir=args.cache_dir,
        store_path=(
            None if not args.store or args.store.lower() == "none"
            else args.store
        ),
        site_dir=args.site,
        host=args.host,
        port=args.port,
        drain_timeout=args.drain_timeout,
        request_timeout=args.request_timeout,
        retry_after=args.retry_after,
    )
    return serve(config)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # A mid-sweep Ctrl-C lands here after the session has already
        # cancelled its pool workers: exit cleanly, no traceback. Work
        # finished before the interrupt is in the caches for a rerun.
        print("repro: interrupted", file=sys.stderr)
        return 130


def _dispatch(args: argparse.Namespace) -> int:
    session, preset = _make_session(args)
    command = args.command
    if command == "table1":
        _print_table1(session, preset)
    elif command in _FIGURE_BY_COMMAND:
        _print_speedup(session, preset, _FIGURE_BY_COMMAND[command])
    elif command in _EWR_BY_COMMAND:
        _print_ewr(session, preset, _EWR_BY_COMMAND[command])
    elif command == "speedup":
        _print_speedup(session, preset, args.program)
    elif command == "ewr":
        _print_ewr(session, preset, args.program)
    elif command == "esw":
        _print_esw(session)
    elif command == "ablation":
        if args.study == "generalization":
            _print_generalization(session, preset, args)
        else:
            _print_ablation(session, args.study, args.program)
    elif command == "kernels":
        _print_kernels(session)
    elif command == "report":
        return _report_command(session, preset, args)
    elif command == "results":
        return _results_command(args)
    elif command == "generate":
        _print_generate(session, args)
    elif command == "corpus":
        return _corpus_command(session, preset, args)
    elif command == "sweep":
        _print_sweep(session, _build_sweep(args), timings=args.timings)
    elif command == "serve":
        return _serve_command(preset, args)
    elif command == "run":
        _print_run(session, args)
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
