"""Command-line interface: regenerate any paper artefact from a shell.

Examples::

    python -m repro table1
    python -m repro fig4 --scale paper
    python -m repro ewr --program mdg
    python -m repro esw
    python -m repro ablation --study bypass --program flo52q
    python -m repro kernels
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    FIGURE_PROGRAMS,
    PRESETS,
    Lab,
    active_preset,
    render_plot,
    render_table,
    run_bypass_ablation,
    run_code_expansion_ablation,
    run_esw_study,
    run_ewr_figure,
    run_issue_split_ablation,
    run_partition_ablation,
    run_speedup_figure,
    run_table1,
)
from .kernels import PAPER_ORDER, get_kernel, list_kernels
from .partition import analyze_decoupling

__all__ = ["main"]

_FIGURE_BY_COMMAND = {"fig4": "flo52q", "fig5": "mdg", "fig6": "track"}
_EWR_BY_COMMAND = {"fig7": "flo52q", "fig8": "mdg", "fig9": "track"}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Jones & Topham (MICRO-30, 1997).",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default=None,
        help="fidelity preset (default: REPRO_SCALE env var or 'small')",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="LHE of the DM at md=60 (Table 1)")
    for command, program in _FIGURE_BY_COMMAND.items():
        sub.add_parser(command, help=f"speedup vs window for {program}")
    for command, program in _EWR_BY_COMMAND.items():
        sub.add_parser(command, help=f"equivalent window ratio for {program}")
    speedup = sub.add_parser("speedup", help="speedup figure for any kernel")
    speedup.add_argument("--program", default="flo52q")
    ewr = sub.add_parser("ewr", help="EWR figure for any kernel")
    ewr.add_argument("--program", default="flo52q")
    sub.add_parser("esw", help="effective-single-window study (Figure 3)")
    ablation = sub.add_parser("ablation", help="design-choice ablations")
    ablation.add_argument(
        "--study",
        choices=("issue-split", "partition", "bypass", "expansion"),
        default="issue-split",
    )
    ablation.add_argument("--program", default="flo52q")
    sub.add_parser("kernels", help="list workload models and their structure")
    return parser


def _make_lab(args: argparse.Namespace):
    preset = PRESETS[args.scale] if args.scale else active_preset()
    return Lab(scale=preset.scale), preset


def _print_table1(lab: Lab, preset) -> None:
    result = run_table1(lab)
    headers = ["Prog"] + [
        "unl" if window is None else str(window) for window in result.windows
    ] + ["band"]
    rows = [
        [row.program]
        + [row.lhe_by_window[window] for window in result.windows]
        + [row.measured_band]
        for row in result.rows
    ]
    print(render_table(
        headers, rows,
        title=f"Table 1: DM latency hiding effectiveness, md="
              f"{result.memory_differential} (scale={preset.name})",
    ))
    print(f"bands matching the paper: {result.bands_correct}/{len(result.rows)}")


def _print_speedup(lab: Lab, preset, program: str) -> None:
    figure = run_speedup_figure(lab, program, windows=preset.speedup_windows)
    series = {
        f"{curve.machine} md={curve.memory_differential}": curve.speedups
        for curve in figure.curves
    }
    print(render_plot(
        figure.windows, series,
        title=f"Speedup vs window size: {program} (CIW=9)",
        x_label="window size",
    ))
    for md in (0, 60):
        crossover = figure.crossover_window(md)
        text = "none (DM wins everywhere)" if crossover is None else str(crossover)
        print(f"md={md}: SWSM overtakes the DM at window {text}")


def _print_ewr(lab: Lab, preset, program: str) -> None:
    figure = run_ewr_figure(
        lab, program,
        dm_windows=preset.ewr_windows,
        differentials=preset.ewr_differentials,
    )
    series = {
        f"md={curve.memory_differential}": curve.ratios
        for curve in figure.curves
    }
    print(render_plot(
        figure.dm_windows, series,
        title=f"Equivalent window ratio: {program}",
        x_label="access decoupled window size",
    ))


def _print_esw(lab: Lab) -> None:
    rows = run_esw_study(lab, FIGURE_PROGRAMS)
    print(render_table(
        ["Prog", "md", "window", "mean ESW", "peak ESW", "amplification"],
        [
            [row.program, row.memory_differential, row.window,
             row.stats.mean, row.stats.peak, row.stats.amplification]
            for row in rows
        ],
        title="Effective single window (vs 2x physical window)",
    ))


def _print_ablation(lab: Lab, study: str, program: str) -> None:
    if study == "issue-split":
        points = run_issue_split_ablation(lab, program)
        print(render_table(
            ["AU", "DU", "cycles"],
            [[p.au_width, p.du_width, p.cycles] for p in points],
            title=f"Issue-width split at CIW=9: {program} (md=60, window=32)",
        ))
        best = min(points, key=lambda p: p.cycles)
        print(f"best split: AU={best.au_width} DU={best.du_width}")
    elif study == "partition":
        points = run_partition_ablation(lab, program)
        print(render_table(
            ["strategy", "cycles", "AU instrs", "DU instrs"],
            [[p.strategy, p.cycles, p.au_instructions, p.du_instructions]
             for p in points],
            title=f"Partition strategies: {program} (md=60, window=32)",
        ))
    elif study == "bypass":
        points = run_bypass_ablation(lab, program)
        print(render_table(
            ["entries", "cycles", "hit rate"],
            [[p.entries, p.cycles, p.hit_rate] for p in points],
            title=f"Bypass buffer: {program} (md=60, window=32)",
        ))
    else:
        points = run_code_expansion_ablation(lab, program)
        print(render_table(
            ["overhead", "DM cycles", "SWSM cycles", "SWSM/DM"],
            [[f"{p.fraction:.0%}", p.dm_cycles, p.swsm_cycles, p.dm_over_swsm]
             for p in points],
            title=f"Code expansion: {program} (md=60, window=32)",
        ))


def _print_kernels(lab: Lab) -> None:
    rows = []
    for name in list_kernels():
        spec = get_kernel(name)
        program = lab.program(name)
        report = analyze_decoupling(program)
        rows.append([
            name, len(program), f"{program.stats.memory_fraction:.2f}",
            f"{report.au_fraction:.2f}", report.self_loads,
            report.lod_events, spec.band,
        ])
    print(render_table(
        ["kernel", "instrs", "mem frac", "AU frac", "self-loads",
         "LOD events", "paper band"],
        rows,
        title="Workload models (PERFECT Club substitutes)",
    ))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    lab, preset = _make_lab(args)
    command = args.command
    if command == "table1":
        _print_table1(lab, preset)
    elif command in _FIGURE_BY_COMMAND:
        _print_speedup(lab, preset, _FIGURE_BY_COMMAND[command])
    elif command in _EWR_BY_COMMAND:
        _print_ewr(lab, preset, _EWR_BY_COMMAND[command])
    elif command == "speedup":
        _print_speedup(lab, preset, args.program)
    elif command == "ewr":
        _print_ewr(lab, preset, args.program)
    elif command == "esw":
        _print_esw(lab)
    elif command == "ablation":
        _print_ablation(lab, args.study, args.program)
    elif command == "kernels":
        _print_kernels(lab)
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
