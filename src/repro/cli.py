"""Command-line interface: regenerate any paper artefact from a shell.

Examples::

    python -m repro table1
    python -m repro fig4 --scale paper
    python -m repro ewr --program mdg
    python -m repro esw
    python -m repro ablation --study bypass --program flo52q
    python -m repro kernels

Generated workloads (the loop-nest grammar, corpus manifests and the
beyond-the-paper generalization study)::

    python -m repro generate --family gather --seed 7 --count 3
    python -m repro corpus --size 100 --seed 0
    python -m repro corpus --verify corpus/default-100.toml
    python -m repro ablation --study generalization --corpus corpus/default-100.toml
    python -m repro run --program gen:stencil:42 --machine dm

Generic declarative sweeps (any grid, parallel, disk-cached)::

    python -m repro --jobs 4 --cache-dir .repro-cache sweep --preset fig4
    python -m repro sweep --preset bypass --program mdg
    python -m repro sweep --spec my_sweep.toml
    python -m repro run --program trfd --machine swsm --window 64 --md 60
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .api import (
    PRESETS_NEEDING_PROGRAM,
    SWEEP_PRESETS,
    MemorySpec,
    Point,
    Session,
    Sweep,
    load_sweep,
)
from .errors import ReproError
from .experiments import (
    FIGURE_PROGRAMS,
    PRESETS,
    active_preset,
    render_plot,
    render_table,
    run_bypass_ablation,
    run_code_expansion_ablation,
    run_esw_study,
    run_ewr_figure,
    run_issue_split_ablation,
    run_memory_hierarchy_ablation,
    run_partition_ablation,
    run_speedup_figure,
    run_table1,
)
from .experiments.generalization import run_generalization_study
from .kernels import get_kernel, list_kernels
from .partition import analyze_decoupling
from .workloads import (
    FAMILIES,
    build_generated,
    characterize,
    generate_corpus,
    generated_name,
    load_manifest,
    verify_corpus,
    write_manifest,
)

__all__ = ["main"]

_FIGURE_BY_COMMAND = {"fig4": "flo52q", "fig5": "mdg", "fig6": "track"}
_EWR_BY_COMMAND = {"fig7": "flo52q", "fig8": "mdg", "fig9": "track"}


def _window_arg(text: str) -> int | None:
    if text.lower() in ("unl", "unlimited", "none"):
        return None
    return int(text)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Jones & Topham (MICRO-30, 1997).",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(PRESETS),
        default=None,
        help="fidelity preset (default: REPRO_SCALE env var or 'small')",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate sweeps on a process pool of N workers",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk result cache (reused across runs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="LHE of the DM at md=60 (Table 1)")
    for command, program in _FIGURE_BY_COMMAND.items():
        sub.add_parser(command, help=f"speedup vs window for {program}")
    for command, program in _EWR_BY_COMMAND.items():
        sub.add_parser(command, help=f"equivalent window ratio for {program}")
    speedup = sub.add_parser("speedup", help="speedup figure for any kernel")
    speedup.add_argument("--program", default="flo52q")
    ewr = sub.add_parser("ewr", help="EWR figure for any kernel")
    ewr.add_argument("--program", default="flo52q")
    sub.add_parser("esw", help="effective-single-window study (Figure 3)")
    ablation = sub.add_parser("ablation", help="design-choice ablations")
    ablation.add_argument(
        "--study",
        choices=(
            "issue-split", "partition", "bypass", "expansion", "hierarchy",
            "generalization",
        ),
        default="issue-split",
    )
    ablation.add_argument("--program", default="flo52q")
    ablation.add_argument(
        "--corpus",
        default=None,
        metavar="FILE",
        help="corpus manifest for --study generalization "
        "(default: generate one in memory)",
    )
    ablation.add_argument(
        "--size",
        type=int,
        default=100,
        help="generated corpus size when no --corpus manifest is given",
    )
    ablation.add_argument(
        "--seed",
        type=int,
        default=0,
        help="corpus seed when no --corpus manifest is given",
    )
    sub.add_parser("kernels", help="list workload models and their structure")

    generate = sub.add_parser(
        "generate",
        help="sample kernels from the loop-nest grammar and characterize them",
    )
    generate.add_argument(
        "--family",
        choices=(*FAMILIES, "all"),
        default="all",
        help="access-pattern family to sample (default: one of each)",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--count",
        type=int,
        default=1,
        help="kernels per family, at consecutive seeds",
    )

    corpus = sub.add_parser(
        "corpus",
        help="write or verify a corpus manifest of generated kernels",
    )
    corpus.add_argument(
        "--verify",
        metavar="FILE",
        default=None,
        help="verify that every kernel of a manifest regenerates "
        "bit-identically",
    )
    corpus.add_argument("--size", type=int, default=100)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument(
        "--name", default=None, help="corpus name (default: default-<size>)"
    )
    corpus.add_argument(
        "--families",
        default=None,
        help="comma-separated family subset (default: all six)",
    )
    corpus.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="manifest path, .toml or .json "
        "(default: corpus/<name>.toml)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="evaluate a declarative sweep (named preset or TOML/JSON spec)",
    )
    source = sweep.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--preset",
        choices=sorted(SWEEP_PRESETS),
        help="named sweep reproducing a paper artefact grid",
    )
    source.add_argument(
        "--spec", metavar="FILE", help="sweep spec file (.toml or .json)"
    )
    sweep.add_argument(
        "--program",
        default=None,
        help="program for presets that take one (e.g. bypass, speedup)",
    )

    run = sub.add_parser("run", help="evaluate one operating point")
    run.add_argument("--program", required=True)
    run.add_argument("--machine", default="dm")
    run.add_argument(
        "--window",
        type=_window_arg,
        default=32,
        help="instruction window size, or 'unlimited'",
    )
    run.add_argument("--md", type=int, default=60, dest="memory_differential")
    run.add_argument("--au-width", type=int, default=None)
    run.add_argument("--du-width", type=int, default=None)
    run.add_argument("--swsm-width", type=int, default=None)
    run.add_argument("--partition", default="slice")
    run.add_argument("--expansion", type=float, default=0.0)
    run.add_argument(
        "--memory",
        choices=(
            "fixed", "bypass", "cache", "hierarchy", "banked", "prefetch",
        ),
        default="fixed",
    )
    run.add_argument("--entries", type=int, default=64)
    run.add_argument("--line-bytes", type=int, default=32)
    return parser


def _make_session(args: argparse.Namespace):
    preset = PRESETS[args.scale] if args.scale else active_preset()
    session = Session(
        scale=preset.scale, cache_dir=args.cache_dir, jobs=args.jobs
    )
    return session, preset


def _print_table1(session: Session, preset) -> None:
    result = run_table1(session)
    headers = ["Prog"] + [
        "unl" if window is None else str(window) for window in result.windows
    ] + ["band"]
    rows = [
        [row.program]
        + [row.lhe_by_window[window] for window in result.windows]
        + [row.measured_band]
        for row in result.rows
    ]
    print(render_table(
        headers, rows,
        title=f"Table 1: DM latency hiding effectiveness, md="
              f"{result.memory_differential} (scale={preset.name})",
    ))
    print(f"bands matching the paper: {result.bands_correct}/{len(result.rows)}")


def _print_speedup(session: Session, preset, program: str) -> None:
    figure = run_speedup_figure(
        session, program, windows=preset.speedup_windows
    )
    series = {
        f"{curve.machine} md={curve.memory_differential}": curve.speedups
        for curve in figure.curves
    }
    print(render_plot(
        figure.windows, series,
        title=f"Speedup vs window size: {program} (CIW=9)",
        x_label="window size",
    ))
    for md in (0, 60):
        crossover = figure.crossover_window(md)
        text = "none (DM wins everywhere)" if crossover is None else str(crossover)
        print(f"md={md}: SWSM overtakes the DM at window {text}")


def _print_ewr(session: Session, preset, program: str) -> None:
    figure = run_ewr_figure(
        session, program,
        dm_windows=preset.ewr_windows,
        differentials=preset.ewr_differentials,
    )
    series = {
        f"md={curve.memory_differential}": curve.ratios
        for curve in figure.curves
    }
    print(render_plot(
        figure.dm_windows, series,
        title=f"Equivalent window ratio: {program}",
        x_label="access decoupled window size",
    ))


def _print_esw(session: Session) -> None:
    rows = run_esw_study(session, FIGURE_PROGRAMS)
    print(render_table(
        ["Prog", "md", "window", "mean ESW", "peak ESW", "amplification"],
        [
            [row.program, row.memory_differential, row.window,
             row.stats.mean, row.stats.peak, row.stats.amplification]
            for row in rows
        ],
        title="Effective single window (vs 2x physical window)",
    ))


def _print_ablation(session: Session, study: str, program: str) -> None:
    if study == "issue-split":
        points = run_issue_split_ablation(session, program)
        print(render_table(
            ["AU", "DU", "cycles"],
            [[p.au_width, p.du_width, p.cycles] for p in points],
            title=f"Issue-width split at CIW=9: {program} (md=60, window=32)",
        ))
        best = min(points, key=lambda p: p.cycles)
        print(f"best split: AU={best.au_width} DU={best.du_width}")
    elif study == "partition":
        points = run_partition_ablation(session, program)
        print(render_table(
            ["strategy", "cycles", "AU instrs", "DU instrs"],
            [[p.strategy, p.cycles, p.au_instructions, p.du_instructions]
             for p in points],
            title=f"Partition strategies: {program} (md=60, window=32)",
        ))
    elif study == "bypass":
        points = run_bypass_ablation(session, program)
        print(render_table(
            ["entries", "cycles", "hit rate"],
            [[p.entries, p.cycles, p.hit_rate] for p in points],
            title=f"Bypass buffer: {program} (md=60, window=32)",
        ))
    elif study == "hierarchy":
        points = run_memory_hierarchy_ablation(session, program)
        print(render_table(
            ["memory", "DM cycles", "SWSM cycles", "DM advantage",
             "DM locality"],
            [[p.memory, p.dm_cycles, p.swsm_cycles, p.dm_advantage,
              p.dm_hit_rate] for p in points],
            title=f"Memory hierarchy: {program} (md=60, window=32)",
        ))
        fixed = points[0]
        best = min(points, key=lambda p: p.dm_cycles)
        print(
            f"DM advantage {fixed.dm_advantage:.2f}x under the paper's "
            f"fixed model; best DM memory system: {best.memory} "
            f"({best.dm_cycles} cycles)"
        )
    else:
        points = run_code_expansion_ablation(session, program)
        print(render_table(
            ["overhead", "DM cycles", "SWSM cycles", "SWSM/DM"],
            [[f"{p.fraction:.0%}", p.dm_cycles, p.swsm_cycles, p.dm_over_swsm]
             for p in points],
            title=f"Code expansion: {program} (md=60, window=32)",
        ))


def _print_kernels(session: Session) -> None:
    rows = []
    for name in list_kernels():
        spec = get_kernel(name)
        program = session.program(name)
        report = analyze_decoupling(program)
        rows.append([
            name, len(program), f"{program.stats.memory_fraction:.2f}",
            f"{report.au_fraction:.2f}", report.self_loads,
            report.lod_events, spec.resolved_band,
        ])
    print(render_table(
        ["kernel", "instrs", "mem frac", "AU frac", "self-loads",
         "LOD events", "paper band"],
        rows,
        title="Workload models (PERFECT Club substitutes)",
    ))


def _print_generalization(session: Session, preset, args) -> None:
    if args.corpus:
        corpus = load_manifest(args.corpus)
    else:
        corpus = generate_corpus(
            args.size, seed=args.seed, scale=preset.scale
        )
    result = run_generalization_study(session, corpus)
    rows = []
    for family in result.families:
        bands = family.band_counts
        rows.append([
            family.family, family.kernels, bands["high"],
            bands["moderate"], bands["poor"],
            f"{family.prediction_hits}/{family.kernels}",
            f"{family.mean_dm_lhe:.3f}", f"{family.mean_swsm_lhe:.3f}",
            f"{family.dm_wins}/{family.kernels}",
            f"{family.holds}/{family.kernels}",
        ])
    print(render_table(
        ["family", "n", "high", "mod", "poor", "pred hit", "DM LHE",
         "SWSM LHE", "DM wins", "holds"],
        rows,
        title=f"Generalization study: {corpus.name} "
              f"({result.kernels} kernels, scale={preset.name}, "
              f"window={result.window}, md={result.memory_differential})",
    ))
    print(
        f"paper crossover structure holds for {result.holds}/"
        f"{result.kernels} kernels ({result.holds_fraction:.0%}); "
        f"characterizer band agreement "
        f"{result.prediction_agreement:.0%}"
    )


def _print_generate(session: Session, args) -> None:
    families = FAMILIES if args.family == "all" else (args.family,)
    rows = []
    for family in families:
        for offset in range(max(1, args.count)):
            seed = args.seed + offset
            program = build_generated(family, seed, session.scale)
            profile = characterize(program)
            rows.append([
                generated_name(family, seed), len(program),
                f"{profile.memory_fraction:.2f}",
                f"{profile.fp_fraction:.2f}",
                f"{profile.lod_rate:.2f}",
                f"{profile.self_load_rate:.2f}",
                f"{profile.load_chain_fraction:.3f}",
                profile.predicted_band,
            ])
    print(render_table(
        ["kernel", "instrs", "mem frac", "fp frac", "LOD/ki",
         "self-ld/ki", "load chain", "pred band"],
        rows,
        title="Generated kernels (loop-nest grammar, static profile)",
    ))


def _corpus_command(session: Session, preset, args) -> int:
    if args.verify:
        corpus = load_manifest(args.verify)
        problems = verify_corpus(corpus)
        if problems:
            for problem in problems:
                print(f"MISMATCH {problem}")
            print(
                f"{corpus.name}: {len(problems)} of {len(corpus)} kernels "
                f"failed to regenerate bit-identically"
            )
            return 1
        print(
            f"{corpus.name}: all {len(corpus)} kernels regenerate "
            f"bit-identically at scale {corpus.scale}"
        )
        return 0
    families = (
        tuple(f.strip() for f in args.families.split(","))
        if args.families else FAMILIES
    )
    corpus = generate_corpus(
        args.size,
        seed=args.seed,
        scale=preset.scale,
        families=families,
        name=args.name or "",
    )
    out = args.out or f"corpus/{corpus.name}.toml"
    if args.out is None and Path(out).exists():
        try:
            existing = load_manifest(out)
        except ReproError:
            # Unreadable or from an incompatible grammar/schema: this
            # command is exactly how such a manifest gets regenerated.
            existing = None
        if existing is not None and (
            existing.seed, existing.scale, existing.families
        ) != (corpus.seed, corpus.scale, corpus.families):
            print(
                f"refusing to overwrite {out}: it pins a different "
                f"corpus (seed {existing.seed}, scale {existing.scale},"
                f" {len(existing.families)} families); pass --out to "
                f"write elsewhere"
            )
            return 1
    path = write_manifest(corpus, out)
    rows = [
        [family, len(entries),
         sum(1 for e in entries if e.predicted_band == "high"),
         sum(1 for e in entries if e.predicted_band == "moderate"),
         sum(1 for e in entries if e.predicted_band == "poor")]
        for family, entries in corpus.by_family().items()
    ]
    print(render_table(
        ["family", "kernels", "pred high", "pred mod", "pred poor"],
        rows,
        title=f"Corpus {corpus.name}: {len(corpus)} kernels at "
              f"scale {corpus.scale} (seed {corpus.seed})",
    ))
    print(f"manifest written to {path}")
    return 0


def _build_sweep(args: argparse.Namespace) -> Sweep:
    if args.spec:
        return load_sweep(args.spec)
    factory = SWEEP_PRESETS[args.preset]
    if args.preset in PRESETS_NEEDING_PROGRAM:
        program = args.program or "flo52q"
        return factory(program)
    if args.program is not None:
        if args.preset in ("table1", "esw"):
            return factory(programs=(args.program,))
        raise SystemExit(
            f"--program does not apply to preset {args.preset!r}"
        )
    return factory()


def _memory_label(memory: MemorySpec) -> str:
    """Short sweep-table label showing the field each kind reads."""
    if memory.kind in ("bypass", "prefetch"):
        return f"{memory.kind}({memory.entries})"
    if memory.kind == "banked":
        return f"banked({memory.banks}x{memory.bank_busy}c)"
    if memory.kind == "hierarchy":
        levels = "stock" if memory.levels is None else len(memory.levels)
        return f"hierarchy({levels})"
    return memory.kind


def _print_sweep(session: Session, sweep: Sweep) -> None:
    outcome = session.run(sweep)
    rows = []
    for point, result in outcome:
        window = "unl" if point.window is None else point.window
        memory = _memory_label(point.memory)
        rows.append([
            point.program, point.machine, window, point.memory_differential,
            memory, result.cycles, result.ipc,
        ])
    title = f"sweep {sweep.name or '<unnamed>'}: {len(outcome)} points"
    print(render_table(
        ["program", "machine", "window", "md", "memory", "cycles", "ipc"],
        rows, title=title,
    ))
    stats = session.stats
    print(
        f"cache: {stats['evaluated']} simulated, "
        f"{stats['disk_hits']} disk hits, "
        f"{stats['memory_hits']} memory hits"
    )


def _print_run(session: Session, args: argparse.Namespace) -> None:
    point = Point(
        program=args.program,
        machine=args.machine,
        window=args.window,
        memory_differential=args.memory_differential,
        au_width=args.au_width if args.au_width is not None
        else session.au_width,
        du_width=args.du_width if args.du_width is not None
        else session.du_width,
        swsm_width=args.swsm_width if args.swsm_width is not None
        else session.swsm_width,
        partition=args.partition,
        expansion=args.expansion,
        memory=MemorySpec(
            kind=args.memory,
            entries=args.entries,
            line_bytes=args.line_bytes,
        ),
    )
    result = session.evaluate(point)
    window = "unlimited" if point.window is None else point.window
    print(
        f"{point.program} on {point.machine} "
        f"(window={window}, md={point.memory_differential}, "
        f"memory={point.memory.kind}): "
        f"{result.cycles} cycles, ipc={result.ipc:.3f}"
    )
    if point.machine != "serial":
        print(f"speedup over serial: {session.speedup(point):.3f}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    session, preset = _make_session(args)
    command = args.command
    if command == "table1":
        _print_table1(session, preset)
    elif command in _FIGURE_BY_COMMAND:
        _print_speedup(session, preset, _FIGURE_BY_COMMAND[command])
    elif command in _EWR_BY_COMMAND:
        _print_ewr(session, preset, _EWR_BY_COMMAND[command])
    elif command == "speedup":
        _print_speedup(session, preset, args.program)
    elif command == "ewr":
        _print_ewr(session, preset, args.program)
    elif command == "esw":
        _print_esw(session)
    elif command == "ablation":
        if args.study == "generalization":
            _print_generalization(session, preset, args)
        else:
            _print_ablation(session, args.study, args.program)
    elif command == "kernels":
        _print_kernels(session)
    elif command == "generate":
        _print_generate(session, args)
    elif command == "corpus":
        return _corpus_command(session, preset, args)
    elif command == "sweep":
        _print_sweep(session, _build_sweep(args))
    elif command == "run":
        _print_run(session, args)
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
