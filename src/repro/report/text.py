"""The terminal renderer: typed artefact blocks -> classic CLI text.

This is the *single* text formatter for every artefact: the CLI's
``table1``/``fig*``/``esw``/``ablation``/... commands print exactly
``render_text(artifact)``. The output is byte-identical to the
pre-report hand-written printers (golden-file tested), because the
blocks carry the same raw values those printers formatted inline and
the rendering goes through the same :func:`repro.experiments.
render_table` / :func:`repro.experiments.render_plot` helpers.
"""

from __future__ import annotations

from ..experiments.formatting import render_plot, render_table
from .rows import Artifact, PlotBlock, TableBlock, TextBlock

__all__ = ["render_text"]


def render_text(artifact: Artifact) -> str:
    """Render an artefact the way the CLI has always printed it."""
    parts = []
    for block in artifact.blocks:
        if isinstance(block, TableBlock):
            parts.append(
                render_table(block.headers, block.rows, title=block.title)
            )
        elif isinstance(block, PlotBlock):
            parts.append(
                render_plot(
                    block.x_values,
                    dict(block.series),
                    title=block.title,
                    x_label=block.x_label,
                )
            )
        elif isinstance(block, TextBlock):
            parts.append("\n".join(block.lines))
        else:  # pragma: no cover - the Block union is closed
            raise TypeError(f"unknown block type {type(block).__name__}")
    return "\n".join(parts)
