"""Deterministic SVG line charts for the generated report site.

Renders a :class:`~repro.report.rows.PlotBlock` as a standalone SVG
document: thin 2px series lines with small round markers, recessive
hairline gridlines, a single y axis starting at zero, and a legend
(text in ink, never in the series colour). Series colours come from a
fixed-order categorical palette validated for adjacent-pair
colour-vision-deficiency separation on the light surface; slots are
assigned in series order and never cycled per-chart.

Everything is formatted with fixed precision and no timestamps, so the
same data always produces the same bytes — the report site is
byte-for-byte reproducible.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

from .rows import PlotBlock

__all__ = ["render_line_chart"]

#: Fixed-order categorical palette (light surface), CVD-validated for
#: adjacent pairs; see docs/report generator notes. Never re-ordered.
PALETTE = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

_SURFACE = "#fcfcfb"
_INK = "#0b0b0b"
_INK_SECONDARY = "#52514e"
_MUTED = "#898781"
_GRID = "#e1e0d9"
_AXIS = "#c3c2b7"

_WIDTH, _HEIGHT = 760, 440
_MARGIN_LEFT, _MARGIN_RIGHT = 64, 190
_MARGIN_TOP, _MARGIN_BOTTOM = 56, 64


def _fmt(value: float) -> str:
    """Fixed-precision coordinate/label formatting (deterministic)."""
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


def _ticks(low: float, high: float, target: int = 5) -> list[float]:
    """Round-numbered axis ticks covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw = span / max(1, target)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for factor in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = magnitude * factor
        if span / step <= target + 1:
            break
    first = math.ceil(low / step) * step
    ticks, value = [], first
    while value <= high + step * 1e-9:
        ticks.append(round(value, 10))
        value += step
    return ticks


def render_line_chart(plot: PlotBlock) -> str:
    """Render a PlotBlock as a standalone SVG document (light mode)."""
    points = [
        (float(x), float(y))
        for _, ys in plot.series
        for x, y in zip(plot.x_values, ys)
        if not math.isnan(float(y))
    ]
    plot_w = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="system-ui, sans-serif">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="{_SURFACE}"/>',
        f'<text x="{_MARGIN_LEFT}" y="28" fill="{_INK}" font-size="15" '
        f'font-weight="600">{escape(plot.title)}</text>',
    ]
    if not points:
        parts.append(
            f'<text x="{_MARGIN_LEFT}" y="{_MARGIN_TOP + 40}" '
            f'fill="{_MUTED}" font-size="13">(no finite data)</text>'
        )
        parts.append("</svg>")
        return "\n".join(parts) + "\n"

    x_low = min(p[0] for p in points)
    x_high = max(p[0] for p in points)
    y_low = min(0.0, min(p[1] for p in points))
    y_high = max(p[1] for p in points)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    def sx(x: float) -> float:
        return _MARGIN_LEFT + (x - x_low) / (x_high - x_low) * plot_w

    def sy(y: float) -> float:
        return _MARGIN_TOP + plot_h - (y - y_low) / (y_high - y_low) * plot_h

    # Recessive horizontal gridlines + y tick labels.
    for tick in _ticks(y_low, y_high):
        if tick < y_low - 1e-9 or tick > y_high + 1e-9:
            continue
        y = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y:.2f}" '
            f'x2="{_MARGIN_LEFT + plot_w}" y2="{y:.2f}" '
            f'stroke="{_GRID}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 8}" y="{y + 4:.2f}" fill="{_MUTED}" '
            f'font-size="11" text-anchor="end">{_fmt(tick)}</text>'
        )
    # x ticks: the actual data x positions (they are few and meaningful).
    for x in plot.x_values:
        px = sx(float(x))
        parts.append(
            f'<line x1="{px:.2f}" y1="{_MARGIN_TOP + plot_h}" '
            f'x2="{px:.2f}" y2="{_MARGIN_TOP + plot_h + 4}" '
            f'stroke="{_AXIS}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{px:.2f}" y="{_MARGIN_TOP + plot_h + 18}" '
            f'fill="{_MUTED}" font-size="11" text-anchor="middle">'
            f'{_fmt(float(x))}</text>'
        )
    # Axis lines (baseline + y axis), slightly stronger than the grid.
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP + plot_h}" '
        f'x2="{_MARGIN_LEFT + plot_w}" y2="{_MARGIN_TOP + plot_h}" '
        f'stroke="{_AXIS}" stroke-width="1"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" '
        f'x2="{_MARGIN_LEFT}" y2="{_MARGIN_TOP + plot_h}" '
        f'stroke="{_AXIS}" stroke-width="1"/>'
    )
    # Axis titles.
    parts.append(
        f'<text x="{_MARGIN_LEFT + plot_w / 2:.2f}" y="{_HEIGHT - 18}" '
        f'fill="{_INK_SECONDARY}" font-size="12" text-anchor="middle">'
        f'{escape(plot.x_label)}</text>'
    )
    if plot.y_label:
        parts.append(
            f'<text x="18" y="{_MARGIN_TOP + plot_h / 2:.2f}" '
            f'fill="{_INK_SECONDARY}" font-size="12" text-anchor="middle" '
            f'transform="rotate(-90 18 {_MARGIN_TOP + plot_h / 2:.2f})">'
            f'{escape(plot.y_label)}</text>'
        )
    # Series: 2px lines with round markers; NaN values break the line.
    for index, (label, ys) in enumerate(plot.series):
        colour = PALETTE[index % len(PALETTE)]
        segments: list[list[tuple[float, float]]] = [[]]
        for x, y in zip(plot.x_values, ys):
            if math.isnan(float(y)):
                if segments[-1]:
                    segments.append([])
                continue
            segments[-1].append((sx(float(x)), sy(float(y))))
        for segment in segments:
            if len(segment) >= 2:
                path = " ".join(f"{px:.2f},{py:.2f}" for px, py in segment)
                parts.append(
                    f'<polyline points="{path}" fill="none" '
                    f'stroke="{colour}" stroke-width="2" '
                    f'stroke-linejoin="round" stroke-linecap="round"/>'
                )
        for segment in segments:
            for px, py in segment:
                parts.append(
                    f'<circle cx="{px:.2f}" cy="{py:.2f}" r="3" '
                    f'fill="{colour}" stroke="{_SURFACE}" '
                    f'stroke-width="1.5"/>'
                )
    # Legend (swatch carries identity; text stays in ink).
    legend_x = _MARGIN_LEFT + plot_w + 18
    for index, (label, _) in enumerate(plot.series):
        y = _MARGIN_TOP + 10 + index * 22
        colour = PALETTE[index % len(PALETTE)]
        parts.append(
            f'<line x1="{legend_x}" y1="{y}" x2="{legend_x + 18}" '
            f'y2="{y}" stroke="{colour}" stroke-width="2.5" '
            f'stroke-linecap="round"/>'
        )
        parts.append(
            f'<circle cx="{legend_x + 9}" cy="{y}" r="3" fill="{colour}" '
            f'stroke="{_SURFACE}" stroke-width="1.5"/>'
        )
        parts.append(
            f'<text x="{legend_x + 26}" y="{y + 4}" '
            f'fill="{_INK_SECONDARY}" font-size="12">{escape(label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"
