"""Paper-artifact report subsystem: store, emitters, renderers, site.

Four layers (see docs/architecture.md):

* :mod:`repro.report.store` — :class:`ResultStore`, the SQLite-backed
  warehouse of evaluated operating points, keyed by the session's
  content-addressed cache keys and attached via ``session.store(...)``;
* :mod:`repro.report.emitters` — one function per paper artefact,
  emitting typed :class:`~repro.report.rows.Artifact` blocks instead of
  printed strings;
* :mod:`repro.report.text` — the single terminal renderer the CLI
  prints (byte-identical to the historical output);
* :mod:`repro.report.site` — the deterministic static site generator
  behind ``repro report`` (Markdown/HTML pages, SVG charts, manifest).
"""

from .emitters import (
    ABLATION_STUDIES,
    emit_ablation,
    emit_esw,
    emit_ewr,
    emit_generate,
    emit_generalization,
    emit_kernels,
    emit_speedup,
    emit_table1,
)
from .rows import Artifact, PlotBlock, TableBlock, TextBlock
from .site import build_report, load_bench, write_site
from .store import SCHEMA_VERSION, ResultStore, StoredResult
from .text import render_text

__all__ = [
    "ABLATION_STUDIES",
    "Artifact",
    "PlotBlock",
    "ResultStore",
    "SCHEMA_VERSION",
    "StoredResult",
    "TableBlock",
    "TextBlock",
    "build_report",
    "emit_ablation",
    "emit_esw",
    "emit_ewr",
    "emit_generate",
    "emit_generalization",
    "emit_kernels",
    "emit_speedup",
    "emit_table1",
    "load_bench",
    "render_text",
    "write_site",
]
