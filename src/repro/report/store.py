"""The persistent results store: an SQLite warehouse of evaluated points.

Every :class:`~repro.api.spec.Point` a :class:`~repro.api.Session`
evaluates can be recorded here, keyed by the *same* content address the
session's disk cache uses (:func:`repro.api.spec.point_digest` over
point, scale, latency model and cache format). The store is therefore
incremental by construction: recording an already-present key is a
no-op, so repeated sweeps only append what's new, and two sessions
writing the same operating points agree byte-for-byte on the keys.

Each row carries the full operating point (program, machine, window,
memory differential, issue widths, partition, expansion, memory-system
spec), the session context (scale, latency model), the measured result
(cycles, instructions, metadata including every memory model's
``stats()`` counters) and the relevant format versions (cache format,
and the grammar version for generated ``gen:<family>:<seed>``
programs). A schema-version mismatch on open raises
:class:`~repro.errors.StoreError` loudly rather than guessing.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..errors import StoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import LatencyModel
    from ..machines import SimulationResult

__all__ = ["ResultStore", "StoredResult", "SCHEMA_VERSION"]

#: Bump on any change to the row schema below; stores written by a
#: different version refuse to open instead of silently misreading.
#: v2 added the ``payload`` column (the pickled full result, same
#: bytes as a disk-cache entry) so sweeps and the service layer can
#: rehydrate store-resident points without re-simulating them.
#: v3 added the ``telemetry`` column: the deterministic slice of the
#: run's :class:`~repro.obs.telemetry.RunTelemetry` (strategy, nonzero
#: counters, cache tier) as JSON — the payload itself stays
#: telemetry-free so its bytes depend only on the schedule.
SCHEMA_VERSION = 3

#: Writer lock patience, in seconds: how long a connection waits for a
#: competing writer before giving up. With WAL journaling readers never
#: block, so this only paces concurrent upserting sessions.
BUSY_TIMEOUT_S = 10.0

_CREATE = """
CREATE TABLE IF NOT EXISTS results (
    key                 TEXT PRIMARY KEY,
    program             TEXT NOT NULL,
    machine             TEXT NOT NULL,
    window              INTEGER,
    memory_differential INTEGER NOT NULL,
    au_width            INTEGER NOT NULL,
    du_width            INTEGER NOT NULL,
    swsm_width          INTEGER NOT NULL,
    partition           TEXT NOT NULL,
    expansion           REAL NOT NULL,
    memory              TEXT NOT NULL,
    scale               INTEGER NOT NULL,
    latencies           TEXT NOT NULL,
    cycles              INTEGER NOT NULL,
    instructions        INTEGER NOT NULL,
    meta                TEXT NOT NULL,
    cache_format        INTEGER NOT NULL,
    grammar_version     INTEGER,
    telemetry           TEXT,
    payload             BLOB
)
"""

_COLUMNS = (
    "key", "program", "machine", "window", "memory_differential",
    "au_width", "du_width", "swsm_width", "partition", "expansion",
    "memory", "scale", "latencies", "cycles", "instructions", "meta",
    "cache_format", "grammar_version", "telemetry",
)

_INSERT_COLUMNS = (*_COLUMNS, "payload")

_INSERT = (
    f"INSERT OR IGNORE INTO results ({', '.join(_INSERT_COLUMNS)}) "
    f"VALUES ({', '.join('?' * len(_INSERT_COLUMNS))})"
)


@dataclass(frozen=True)
class StoredResult:
    """One warehouse row, fully typed (JSON columns decoded to dicts)."""

    key: str
    program: str
    machine: str
    window: int | None  # None = the paper's unlimited window
    memory_differential: int
    au_width: int
    du_width: int
    swsm_width: int
    partition: str
    expansion: float
    memory: dict
    scale: int
    latencies: dict
    cycles: int
    instructions: int
    meta: dict
    cache_format: int
    grammar_version: int | None
    #: Deterministic run telemetry (strategy, nonzero counters, cache
    #: tier), or None for rows written by pre-v3 stores.
    telemetry: dict | None = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class ResultStore:
    """SQLite-backed warehouse of evaluated operating points.

    Open with a path (created on demand) or ``":memory:"`` for an
    ephemeral store. Attach to a session with ``session.store(store)``
    so every evaluated point is recorded automatically; or call
    :meth:`record` directly.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = Path(path) if str(path) != ":memory:" else None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._con = sqlite3.connect(str(path), timeout=BUSY_TIMEOUT_S)
        except sqlite3.Error as error:
            raise StoreError(f"cannot open result store {path}: {error}")
        self._init_schema(str(path))
        self._tune_concurrency()
        self._seen: set[str] = set()
        self._groups: list[set[str]] = []

    def _tune_concurrency(self) -> None:
        """WAL journaling + a busy timeout: many readers, one writer.

        Write-ahead logging lets a long ``repro report`` read coexist
        with an upserting session (readers never block the writer, or
        vice versa); the busy timeout makes competing *writers* queue
        politely instead of failing fast with ``database is locked``.
        In-memory stores have no journal file and keep the default
        mode. Runs after the schema guard so a foreign database is
        rejected before anything touches its journal mode.
        """
        try:
            if self.path is not None:
                self._con.execute("PRAGMA journal_mode=WAL")
            self._con.execute(
                f"PRAGMA busy_timeout = {int(BUSY_TIMEOUT_S * 1000)}"
            )
        except sqlite3.Error as error:  # pragma: no cover - exotic FS only
            raise StoreError(
                f"cannot configure result store concurrency: {error}"
            )

    def _init_schema(self, label: str) -> None:
        try:
            version = self._con.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                existing = self._con.execute(
                    "SELECT name FROM sqlite_master "
                    "WHERE type IN ('table', 'view')"
                ).fetchone()
                if existing is not None:
                    # Any pre-existing content without our schema
                    # version is either a foreign application's
                    # database or a pre-versioning store; adopting and
                    # mutating it would corrupt it either way.
                    raise StoreError(
                        f"{label} is not an empty or versioned result "
                        f"store (it already contains table "
                        f"{existing[0]!r} with no schema version); "
                        f"refusing to adopt a foreign database"
                    )
                self._con.execute(_CREATE)
                self._con.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
                self._con.commit()
            elif version != SCHEMA_VERSION:
                raise StoreError(
                    f"result store {label} has schema v{version}; this "
                    f"build reads v{SCHEMA_VERSION} — regenerate the store "
                    f"or use a matching repro version"
                )
        except sqlite3.Error as error:
            raise StoreError(f"cannot read result store {label}: {error}")

    # -- writing -----------------------------------------------------------------

    def record(
        self,
        point,
        scale: int,
        latencies: "LatencyModel",
        result: "SimulationResult",
    ) -> str:
        """Upsert one evaluated point; returns its store key.

        The key is the session's content address for the point, so
        recording the same (point, scale, latencies) twice — or across
        runs — leaves exactly one row. Group tracking (for report
        manifests) sees every key regardless of whether the row was new.
        """
        from dataclasses import asdict

        from ..api.spec import point_digest

        key = point_digest(point, scale, latencies)
        for group in self._groups:
            group.add(key)
        if key in self._seen:
            return key
        self._seen.add(key)
        grammar_version = None
        if point.program.lower().startswith("gen:"):
            from ..workloads.grammar import GRAMMAR_VERSION

            grammar_version = GRAMMAR_VERSION
        from ..api.spec import CACHE_FORMAT

        telemetry = result.telemetry
        if telemetry is not None:
            from dataclasses import replace as _replace

            # The payload must serialize identically however the run
            # was produced; the deterministic telemetry slice lives in
            # its own column instead.
            payload = pickle.dumps(
                _replace(result, telemetry=None),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            telemetry_json = _to_json(telemetry.store_view())
        else:
            payload = pickle.dumps(
                result, protocol=pickle.HIGHEST_PROTOCOL
            )
            telemetry_json = None
        row = (
            key,
            point.program,
            point.machine,
            point.window,
            point.memory_differential,
            point.au_width,
            point.du_width,
            point.swsm_width,
            point.partition,
            point.expansion,
            _to_json(asdict(point.memory)),
            scale,
            _to_json(asdict(latencies)),
            result.cycles,
            result.instructions,
            _to_json(dict(result.meta)),
            CACHE_FORMAT,
            grammar_version,
            telemetry_json,
            payload,
        )
        self._con.execute(_INSERT, row)
        self._con.commit()
        return key

    def touch(self, key: str) -> str:
        """Re-announce an already-recorded key to active tracking groups.

        The session calls this instead of :meth:`record` once it knows
        a canonical point's key, so repeat evaluations stay visible to
        per-artefact manifests without re-serialising the point or
        re-hashing its digest.
        """
        for group in self._groups:
            group.add(key)
        return key

    # -- group tracking (report manifests) ---------------------------------------

    def track(self) -> "_KeyGroup":
        """Context manager collecting the keys recorded inside it."""
        return _KeyGroup(self)

    # -- reading -----------------------------------------------------------------

    def __len__(self) -> int:
        return self._con.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def keys(self) -> list[str]:
        """All store keys, sorted (the manifest order)."""
        return [
            row[0]
            for row in self._con.execute(
                "SELECT key FROM results ORDER BY key"
            )
        ]

    def rows(
        self,
        program: str | None = None,
        machine: str | None = None,
        scale: int | None = None,
        limit: int | None = None,
    ) -> list[StoredResult]:
        """Typed rows, deterministically ordered, optionally filtered."""
        clauses, params = [], []
        for column, value in (
            ("program", program), ("machine", machine), ("scale", scale)
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        tail = " LIMIT ?" if limit is not None else ""
        if limit is not None:
            params.append(limit)
        query = (
            f"SELECT {', '.join(_COLUMNS)} FROM results{where} "
            f"ORDER BY program, machine, memory_differential, "
            f"COALESCE(window, 1 << 62), key{tail}"
        )
        return [self._row_to_result(row) for row in
                self._con.execute(query, params)]

    def load(self, key: str) -> "SimulationResult | None":
        """Rehydrate the full simulation result stored under ``key``.

        Returns ``None`` when the key is absent or its payload is
        unreadable (a corrupt blob is treated like a cache miss, the
        same policy as the session's disk cache). This is what lets an
        attached session — and the service layer — skip re-simulating
        store-resident points entirely.
        """
        row = self._con.execute(
            "SELECT payload, telemetry FROM results WHERE key = ?", (key,)
        ).fetchone()
        if row is None or row[0] is None:
            return None
        try:
            result = pickle.loads(row[0])
        except Exception:
            return None  # corrupt payload: treat as a miss, re-simulate
        if row[1] is not None and result.telemetry is None:
            from dataclasses import replace as _replace

            from ..obs.telemetry import RunTelemetry, zero_counters

            try:
                recorded = json.loads(row[1])
                result = _replace(result, telemetry=RunTelemetry(
                    strategy=recorded.get("strategy", "cached"),
                    counters={
                        **zero_counters(),
                        **recorded.get("counters", {}),
                    },
                    sim_cycles=result.cycles,
                    cache_tier="store",
                ))
            except Exception:
                pass  # telemetry is advisory; the result stands alone
        return result

    def get(self, key: str) -> StoredResult | None:
        row = self._con.execute(
            f"SELECT {', '.join(_COLUMNS)} FROM results WHERE key = ?",
            (key,),
        ).fetchone()
        return None if row is None else self._row_to_result(row)

    def summary(self) -> dict[str, object]:
        """Aggregate counts for the ``repro results`` footer."""
        total = len(self)
        distinct = {
            field: self._con.execute(
                f"SELECT COUNT(DISTINCT {field}) FROM results"
            ).fetchone()[0]
            for field in ("program", "machine", "scale")
        }
        return {
            "results": total,
            "programs": distinct["program"],
            "machines": distinct["machine"],
            "scales": distinct["scale"],
        }

    @staticmethod
    def _row_to_result(row: tuple) -> StoredResult:
        values = dict(zip(_COLUMNS, row))
        values["memory"] = json.loads(values["memory"])
        values["latencies"] = json.loads(values["latencies"])
        values["meta"] = json.loads(values["meta"])
        if values["telemetry"] is not None:
            values["telemetry"] = json.loads(values["telemetry"])
        return StoredResult(**values)

    def close(self) -> None:
        self._con.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _KeyGroup:
    """Collects the store keys recorded while the context is active."""

    def __init__(self, store: ResultStore) -> None:
        self._store = store
        self.keys: set[str] = set()

    def __enter__(self) -> "_KeyGroup":
        self._store._groups.append(self.keys)
        return self

    def __exit__(self, *exc) -> None:
        groups = self._store._groups
        for index, group in enumerate(groups):
            # By identity, not equality: nested groups can hold equal
            # key sets, and removing the wrong one would detach a
            # still-open outer group.
            if group is self.keys:
                del groups[index]
                break

    def sorted(self) -> list[str]:
        return sorted(self.keys)

    def __iter__(self) -> Iterator[str]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self.keys)


def _to_json(data: dict) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))
