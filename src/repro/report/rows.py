"""Typed artefact content: tables, plots and prose as data, not strings.

Every paper artefact — Table 1, the figure series, the ESW study, the
ablations, the generalization study — is *emitted* as an
:class:`Artifact`: an ordered sequence of typed blocks. Renderers then
turn the same blocks into different surfaces:

* :func:`repro.report.text.render_text` — the classic terminal output
  (byte-identical to the pre-report CLI);
* :func:`repro.report.site.build_site` — Markdown/HTML pages with SVG
  line charts.

Keeping the rows typed (rather than pre-formatted strings) is what
makes the artefacts diffable, storable and servable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Artifact", "PlotBlock", "TableBlock", "TextBlock"]


@dataclass(frozen=True)
class TableBlock:
    """One table: headers plus rows of raw (unformatted) values."""

    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    title: str = ""


@dataclass(frozen=True)
class PlotBlock:
    """One figure: named series over a shared x axis.

    ``series`` is ordered (label, values) so renderers agree on marker
    and colour assignment. NaN values mark holes (e.g. EWR points the
    SWSM could not match) and are skipped by every renderer.
    """

    x_values: tuple[float, ...]
    series: tuple[tuple[str, tuple[float, ...]], ...]
    title: str = ""
    x_label: str = "x"
    y_label: str = ""


@dataclass(frozen=True)
class TextBlock:
    """Free-form summary lines (crossovers, match counts, best points)."""

    lines: tuple[str, ...]


Block = TableBlock | PlotBlock | TextBlock


@dataclass(frozen=True)
class Artifact:
    """One rendered artefact: a slug, a title and its content blocks.

    ``slug`` names the page in a generated site (``<slug>.md`` /
    ``<slug>.html``) and the artefact's entry in the report manifest.
    ``description`` is site-only prose; the terminal renderer ignores
    it so classic CLI output stays unchanged.
    """

    slug: str
    title: str
    blocks: tuple[Block, ...]
    description: str = ""
    store_keys: tuple[str, ...] = field(default=())

    def with_store_keys(self, keys) -> "Artifact":
        from dataclasses import replace

        return replace(self, store_keys=tuple(sorted(keys)))
