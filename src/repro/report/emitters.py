"""Structured emitters: one function per paper artefact.

Each emitter runs the matching experiment driver through a
:class:`~repro.api.Session` and shapes the typed result into an
:class:`~repro.report.rows.Artifact` — tables, plot series and summary
lines as *data*. The CLI prints ``render_text(artifact)`` (the classic
terminal output, byte-identical to the pre-report printers); the site
generator renders the same artefacts as Markdown/HTML pages with SVG
charts. With a :class:`~repro.report.ResultStore` attached to the
session, every point an emitter evaluates lands in the warehouse under
its content-addressed key.
"""

from __future__ import annotations

from ..api.session import Session
from ..experiments import (
    FIGURE_PROGRAMS,
    ScalePreset,
    run_bypass_ablation,
    run_code_expansion_ablation,
    run_esw_study,
    run_ewr_figure,
    run_issue_split_ablation,
    run_memory_hierarchy_ablation,
    run_partition_ablation,
    run_speedup_figure,
    run_table1,
)
from ..experiments.generalization import (
    GeneralizationResult,
    run_generalization_study,
)
from ..kernels import get_kernel, list_kernels
from ..partition import analyze_decoupling
from ..workloads import FAMILIES, build_generated, characterize, generated_name
from .rows import Artifact, PlotBlock, TableBlock, TextBlock

__all__ = [
    "ABLATION_STUDIES",
    "emit_ablation",
    "emit_esw",
    "emit_ewr",
    "emit_generate",
    "emit_generalization",
    "emit_kernels",
    "emit_speedup",
    "emit_table1",
]

#: The non-generalization ablation studies, in report order.
ABLATION_STUDIES = (
    "issue-split", "partition", "bypass", "expansion", "hierarchy",
)


def emit_table1(session: Session, preset: ScalePreset) -> Artifact:
    """Table 1: DM latency-hiding effectiveness at md=60."""
    result = run_table1(session)
    headers = ("Prog", *(
        "unl" if window is None else str(window) for window in result.windows
    ), "band")
    rows = tuple(
        (row.program,
         *(row.lhe_by_window[window] for window in result.windows),
         row.measured_band)
        for row in result.rows
    )
    return Artifact(
        slug="table1",
        title="Table 1: DM latency hiding effectiveness",
        description=(
            "Latency-hiding effectiveness (LHE) of the access decoupled "
            "machine across window sizes at a memory differential of "
            f"{result.memory_differential}, ending in the unlimited-window "
            "column that defines the paper's high/moderate/poor bands."
        ),
        blocks=(
            TableBlock(
                headers=headers,
                rows=rows,
                title=f"Table 1: DM latency hiding effectiveness, md="
                      f"{result.memory_differential} (scale={preset.name})",
            ),
            TextBlock((
                f"bands matching the paper: "
                f"{result.bands_correct}/{len(result.rows)}",
            )),
        ),
    )


def emit_speedup(
    session: Session, preset: ScalePreset, program: str, slug: str = ""
) -> Artifact:
    """Figures 4-6: speedup versus window size for one program."""
    figure = run_speedup_figure(
        session, program, windows=preset.speedup_windows
    )
    series = tuple(
        (f"{curve.machine} md={curve.memory_differential}", curve.speedups)
        for curve in figure.curves
    )
    lines = []
    for md in (0, 60):
        crossover = figure.crossover_window(md)
        text = (
            "none (DM wins everywhere)" if crossover is None
            else str(crossover)
        )
        lines.append(f"md={md}: SWSM overtakes the DM at window {text}")
    return Artifact(
        slug=slug or f"speedup-{program}",
        title=f"Speedup vs window size: {program}",
        description=(
            f"Speedup of the DM and the SWSM over the serial reference "
            f"for {program}, against window size, at memory differentials "
            f"0 and 60 (combined issue width 9)."
        ),
        blocks=(
            PlotBlock(
                x_values=figure.windows,
                series=series,
                title=f"Speedup vs window size: {program} (CIW=9)",
                x_label="window size",
                y_label="speedup over serial",
            ),
            TextBlock(tuple(lines)),
        ),
    )


def emit_ewr(
    session: Session, preset: ScalePreset, program: str, slug: str = ""
) -> Artifact:
    """Figures 7-9: equivalent window ratio for one program."""
    figure = run_ewr_figure(
        session, program,
        dm_windows=preset.ewr_windows,
        differentials=preset.ewr_differentials,
    )
    series = tuple(
        (f"md={curve.memory_differential}", curve.ratios)
        for curve in figure.curves
    )
    return Artifact(
        slug=slug or f"ewr-{program}",
        title=f"Equivalent window ratio: {program}",
        description=(
            f"The SWSM window needed to match each DM window on "
            f"{program}, as a ratio, per memory differential. Gaps mark "
            f"DM operating points no SWSM window could match."
        ),
        blocks=(
            PlotBlock(
                x_values=figure.dm_windows,
                series=series,
                title=f"Equivalent window ratio: {program}",
                x_label="access decoupled window size",
                y_label="SWSM window / DM window",
            ),
        ),
    )


def emit_esw(session: Session) -> Artifact:
    """Figure 3 quantified: effective-single-window statistics."""
    rows = run_esw_study(session, FIGURE_PROGRAMS)
    return Artifact(
        slug="esw",
        title="Effective single window",
        description=(
            "Time-weighted mean and peak effective single window of DM "
            "runs versus the sum of the two physical windows — the "
            "paper's Figure 3 concept measured on real runs."
        ),
        blocks=(
            TableBlock(
                headers=("Prog", "md", "window", "mean ESW", "peak ESW",
                         "amplification"),
                rows=tuple(
                    (row.program, row.memory_differential, row.window,
                     row.stats.mean, row.stats.peak,
                     row.stats.amplification)
                    for row in rows
                ),
                title="Effective single window (vs 2x physical window)",
            ),
        ),
    )


def emit_ablation(session: Session, study: str, program: str) -> Artifact:
    """One design-choice ablation study (see :data:`ABLATION_STUDIES`)."""
    slug = f"ablation-{study}"
    if study == "issue-split":
        points = run_issue_split_ablation(session, program)
        best = min(points, key=lambda p: p.cycles)
        blocks = (
            TableBlock(
                headers=("AU", "DU", "cycles"),
                rows=tuple(
                    (p.au_width, p.du_width, p.cycles) for p in points
                ),
                title=f"Issue-width split at CIW=9: {program} "
                      f"(md=60, window=32)",
            ),
            TextBlock((
                f"best split: AU={best.au_width} DU={best.du_width}",
            )),
        )
        description = (
            "Every AU/DU division of the combined issue width of 9; "
            "the paper adopts 4+5 following its companion study."
        )
    elif study == "partition":
        points = run_partition_ablation(session, program)
        blocks = (
            TableBlock(
                headers=("strategy", "cycles", "AU instrs", "DU instrs"),
                rows=tuple(
                    (p.strategy, p.cycles, p.au_instructions,
                     p.du_instructions)
                    for p in points
                ),
                title=f"Partition strategies: {program} (md=60, window=32)",
            ),
        )
        description = (
            "DM cycles under each access/execute partitioning strategy — "
            "the paper's future-work question on code division."
        )
    elif study == "bypass":
        points = run_bypass_ablation(session, program)
        blocks = (
            TableBlock(
                headers=("entries", "cycles", "hit rate"),
                rows=tuple(
                    (p.entries, p.cycles, p.hit_rate) for p in points
                ),
                title=f"Bypass buffer: {program} (md=60, window=32)",
            ),
        )
        description = (
            "The paper's proposed bypass buffer at increasing sizes: "
            "cycles and hit rate under the DM."
        )
    elif study == "hierarchy":
        points = run_memory_hierarchy_ablation(session, program)
        fixed = points[0]
        best = min(points, key=lambda p: p.dm_cycles)
        blocks = (
            TableBlock(
                headers=("memory", "DM cycles", "SWSM cycles",
                         "DM advantage", "DM locality"),
                rows=tuple(
                    (p.memory, p.dm_cycles, p.swsm_cycles, p.dm_advantage,
                     p.dm_hit_rate)
                    for p in points
                ),
                title=f"Memory hierarchy: {program} (md=60, window=32)",
            ),
            TextBlock((
                f"DM advantage {fixed.dm_advantage:.2f}x under the paper's "
                f"fixed model; best DM memory system: {best.memory} "
                f"({best.dm_cycles} cycles)",
            )),
        )
        description = (
            "DM versus SWSM under every memory-system model (caches, "
            "configurable hierarchies, banked memory, a stream "
            "prefetcher): how much of the DM advantage survives when "
            "the memory system captures locality itself."
        )
    elif study == "expansion":
        points = run_code_expansion_ablation(session, program)
        blocks = (
            TableBlock(
                headers=("overhead", "DM cycles", "SWSM cycles", "SWSM/DM"),
                rows=tuple(
                    (f"{p.fraction:.0%}", p.dm_cycles, p.swsm_cycles,
                     p.dm_over_swsm)
                    for p in points
                ),
                title=f"Code expansion: {program} (md=60, window=32)",
            ),
        )
        description = (
            "DM versus SWSM as unrolling bookkeeping overhead is added "
            "— the paper's future-work question on code expansion."
        )
    else:
        raise ValueError(f"unknown ablation study {study!r}")
    return Artifact(
        slug=slug,
        title=f"Ablation: {study} ({program})",
        description=description,
        blocks=blocks,
    )


def emit_kernels(session: Session) -> Artifact:
    """The workload-model inventory (static analysis, no simulation)."""
    rows = []
    for name in list_kernels():
        spec = get_kernel(name)
        program = session.program(name)
        report = analyze_decoupling(program)
        rows.append((
            name, len(program), f"{program.stats.memory_fraction:.2f}",
            f"{report.au_fraction:.2f}", report.self_loads,
            report.lod_events, spec.resolved_band,
        ))
    return Artifact(
        slug="kernels",
        title="Workload models",
        description=(
            "The synthetic PERFECT-club substitutes: size, memory "
            "fraction, address-slice share, loss-of-decoupling events "
            "and the paper's latency-hiding band."
        ),
        blocks=(
            TableBlock(
                headers=("kernel", "instrs", "mem frac", "AU frac",
                         "self-loads", "LOD events", "paper band"),
                rows=tuple(rows),
                title="Workload models (PERFECT Club substitutes)",
            ),
        ),
    )


def emit_generate(
    session: Session, family: str = "all", seed: int = 0, count: int = 1
) -> Artifact:
    """Sampled kernels from the loop-nest grammar with static profiles."""
    families = FAMILIES if family == "all" else (family,)
    rows = []
    for sampled_family in families:
        for offset in range(max(1, count)):
            sampled_seed = seed + offset
            program = build_generated(
                sampled_family, sampled_seed, session.scale
            )
            profile = characterize(program)
            rows.append((
                generated_name(sampled_family, sampled_seed), len(program),
                f"{profile.memory_fraction:.2f}",
                f"{profile.fp_fraction:.2f}",
                f"{profile.lod_rate:.2f}",
                f"{profile.self_load_rate:.2f}",
                f"{profile.load_chain_fraction:.3f}",
                profile.predicted_band,
            ))
    return Artifact(
        slug="generated",
        title="Generated kernels",
        description=(
            "Kernels sampled from the seeded loop-nest grammar with "
            "their static characterizer profiles (no simulation)."
        ),
        blocks=(
            TableBlock(
                headers=("kernel", "instrs", "mem frac", "fp frac",
                         "LOD/ki", "self-ld/ki", "load chain", "pred band"),
                rows=tuple(rows),
                title="Generated kernels (loop-nest grammar, static "
                      "profile)",
            ),
        ),
    )


def emit_generalization(
    session: Session, preset: ScalePreset, corpus
) -> tuple[Artifact, ...]:
    """The generalization study: a summary artefact plus one per family.

    The first artefact is the per-family aggregate table the CLI
    prints; the rest are per-family kernel breakdowns rendered as their
    own site pages. All derive from a single study run (one sweep).
    """
    result = run_generalization_study(session, corpus)
    corpus_name = corpus.name if hasattr(corpus, "name") else ""
    summary = _generalization_summary(result, corpus_name, preset)
    families = tuple(
        _generalization_family(result, family.family)
        for family in result.families
    )
    return (summary, *families)


def _generalization_summary(
    result: GeneralizationResult, corpus_name: str, preset: ScalePreset
) -> Artifact:
    rows = []
    for family in result.families:
        bands = family.band_counts
        rows.append((
            family.family, family.kernels, bands["high"],
            bands["moderate"], bands["poor"],
            f"{family.prediction_hits}/{family.kernels}",
            f"{family.mean_dm_lhe:.3f}", f"{family.mean_swsm_lhe:.3f}",
            f"{family.dm_wins}/{family.kernels}",
            f"{family.holds}/{family.kernels}",
        ))
    return Artifact(
        slug="generalization",
        title="Generalization study",
        description=(
            "Does Table 1 survive beyond the paper's seven programs? "
            "Band classification and the limited-window DM-vs-SWSM "
            "comparison re-derived over a generated corpus, aggregated "
            "per access-pattern family."
        ),
        blocks=(
            TableBlock(
                headers=("family", "n", "high", "mod", "poor", "pred hit",
                         "DM LHE", "SWSM LHE", "DM wins", "holds"),
                rows=tuple(rows),
                title=f"Generalization study: {corpus_name} "
                      f"({result.kernels} kernels, scale={preset.name}, "
                      f"window={result.window}, "
                      f"md={result.memory_differential})",
            ),
            TextBlock((
                f"paper crossover structure holds for {result.holds}/"
                f"{result.kernels} kernels ({result.holds_fraction:.0%}); "
                f"characterizer band agreement "
                f"{result.prediction_agreement:.0%}",
            )),
        ),
    )


def _generalization_family(
    result: GeneralizationResult, family_name: str
) -> Artifact:
    family = next(
        f for f in result.families if f.family == family_name
    )
    rows = tuple(
        (row.name, row.predicted_band, row.dm_band, row.swsm_band,
         f"{row.dm_lhe:.3f}", f"{row.swsm_lhe:.3f}",
         row.dm_cycles, row.swsm_cycles,
         "yes" if row.dm_wins else "no",
         "yes" if row.structure_holds else "no")
        for row in family.rows
    )
    return Artifact(
        slug=f"generalization-{family_name}",
        title=f"Generalization: {family_name} family",
        description=(
            f"Per-kernel measurements for the {family_name} family: "
            f"predicted vs measured bands, LHE on both machines, and "
            f"whether the paper's crossover structure holds at "
            f"window={result.window}, md={result.memory_differential}."
        ),
        blocks=(
            TableBlock(
                headers=("kernel", "pred band", "DM band", "SWSM band",
                         "DM LHE", "SWSM LHE", "DM cycles", "SWSM cycles",
                         "DM wins", "holds"),
                rows=rows,
                title=f"{family_name}: {family.kernels} kernels "
                      f"(window={result.window}, "
                      f"md={result.memory_differential})",
            ),
            TextBlock((
                f"structure holds for {family.holds}/{family.kernels}; "
                f"characterizer agreement "
                f"{family.prediction_hits}/{family.kernels}",
            )),
        ),
    )
