"""The static report site: every paper artefact as Markdown/HTML pages.

:func:`build_report` runs every artefact emitter through one session
(recording each evaluated point into the session's attached
:class:`~repro.report.ResultStore`, when present) and renders the
results with :func:`write_site`: one Markdown page and one HTML page
per artefact, SVG line charts for the figure series, per-family
generalization pages, a machine/memory-model index, an engine
benchmark-trajectory page folded in from ``BENCH_engine.json``, and a
``manifest.json`` mapping every artefact to the store keys that back
it.

The output is deterministic byte-for-byte: no timestamps, sorted
manifests, fixed float formatting. Re-running against a warm cache
reproduces the site exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from xml.sax.saxutils import escape as xml_escape

from ..api.session import Session
from ..experiments import ScalePreset
from ..experiments.formatting import format_cell as _format_cell
from ..machines import list_machines
from .emitters import (
    ABLATION_STUDIES,
    emit_ablation,
    emit_esw,
    emit_generalization,
    emit_generate,
    emit_kernels,
    emit_speedup,
    emit_table1,
)
from .emitters import emit_ewr as _emit_ewr
from .rows import Artifact, PlotBlock, TableBlock, TextBlock
from .store import SCHEMA_VERSION
from .svg import render_line_chart

__all__ = ["build_report", "load_bench", "write_site"]

#: Figure slug -> program, in paper order (figures 4-9).
SPEEDUP_FIGURES = (("fig4", "flo52q"), ("fig5", "mdg"), ("fig6", "track"))
EWR_FIGURES = (("fig7", "flo52q"), ("fig8", "mdg"), ("fig9", "track"))

#: Memory-system kinds shown on the models index page.
_MEMORY_KIND_NOTES = (
    ("fixed", "the paper's model: every access costs the differential"),
    ("bypass", "LRU bypass buffer over the fixed model (future-work §)"),
    ("cache", "the stock two-level LRU hierarchy"),
    ("hierarchy", "cache hierarchy with configurable level geometry"),
    ("banked", "interleaved banks with conflict queuing"),
    ("prefetch", "stride/stream prefetcher over the fixed model"),
)


def build_report(
    session: Session,
    preset: ScalePreset,
    out_dir: str | Path,
    corpus=None,
    ablation_program: str = "flo52q",
    bench_path: str | Path | None = None,
) -> dict:
    """Run every artefact and render the full site; returns the manifest.

    ``corpus`` feeds the generalization study (skipped when ``None``).
    ``bench_path`` names a ``BENCH_engine.json`` trajectory to fold in
    as a benchmark page (skipped when missing). With a result store
    attached to the session, the manifest records the store keys behind
    each artefact.
    """
    store = session.store()
    artifacts: list[Artifact] = []

    def tracked(emit) -> list[Artifact]:
        if store is None:
            produced = emit()
            return (
                list(produced) if isinstance(produced, tuple) else [produced]
            )
        with store.track() as group:
            produced = emit()
        items = list(produced) if isinstance(produced, tuple) else [produced]
        return [item.with_store_keys(group.keys) for item in items]

    artifacts += tracked(lambda: emit_table1(session, preset))
    artifacts += tracked(lambda: emit_esw(session))
    for slug, program in SPEEDUP_FIGURES:
        artifacts += tracked(
            lambda s=slug, p=program: emit_speedup(session, preset, p, slug=s)
        )
    for slug, program in EWR_FIGURES:
        artifacts += tracked(
            lambda s=slug, p=program: _emit_ewr(session, preset, p, slug=s)
        )
    for study in ABLATION_STUDIES:
        artifacts += tracked(
            lambda s=study: emit_ablation(session, s, ablation_program)
        )
    if corpus is not None:
        artifacts += tracked(
            lambda: emit_generalization(session, preset, corpus)
        )
    artifacts += tracked(lambda: emit_kernels(session))
    artifacts += tracked(lambda: emit_generate(session))

    bench = load_bench(bench_path) if bench_path is not None else None
    return write_site(
        artifacts, out_dir, preset, bench=bench, store=store
    )


def load_bench(path: str | Path) -> dict | None:
    """The BENCH_engine.json payload, or None when absent/unreadable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


# -- rendering ---------------------------------------------------------------------


def write_site(
    artifacts: list[Artifact],
    out_dir: str | Path,
    preset: ScalePreset,
    bench: dict | None = None,
    store=None,
) -> dict:
    """Render artefact pages, the index, the models page and the manifest.

    Works for an empty artefact list too: the index then renders a
    valid "no results yet" site (models page and manifest included),
    which is what ``repro report`` on a fresh checkout degrades to if
    every study is disabled.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    _clean_previous(out)
    pages: list[str] = []
    charts = 0

    for artifact in artifacts:
        svg_names = _write_charts(artifact, out)
        charts += len(svg_names)
        (out / f"{artifact.slug}.md").write_text(
            _artifact_markdown(artifact, svg_names)
        )
        (out / f"{artifact.slug}.html").write_text(
            _page_html(artifact.title, _artifact_body_html(artifact, svg_names))
        )
        pages += [f"{artifact.slug}.md", f"{artifact.slug}.html", *svg_names]

    models_md, models_html = _models_page()
    (out / "models.md").write_text(models_md)
    (out / "models.html").write_text(models_html)
    pages += ["models.md", "models.html"]

    if store is not None:
        telemetry_md, telemetry_html = _telemetry_page(store)
        (out / "telemetry.md").write_text(telemetry_md)
        (out / "telemetry.html").write_text(telemetry_html)
        pages += ["telemetry.md", "telemetry.html"]

    if bench is not None:
        bench_md, bench_html = _bench_page(bench)
        (out / "bench.md").write_text(bench_md)
        (out / "bench.html").write_text(bench_html)
        pages += ["bench.md", "bench.html"]

    index_md, index_html = _index_page(
        artifacts, preset, bench is not None, store is not None
    )
    (out / "index.md").write_text(index_md)
    (out / "index.html").write_text(index_html)
    pages += ["index.md", "index.html", "manifest.json"]

    manifest = {
        "scale": {"name": preset.name, "instructions": preset.scale},
        "store": {
            "schema": SCHEMA_VERSION,
            "results": len(store) if store is not None else 0,
            "attached": store is not None,
        },
        "artifacts": [
            {
                "slug": artifact.slug,
                "title": artifact.title,
                "store_keys": list(artifact.store_keys),
            }
            for artifact in artifacts
        ],
        "pages": sorted(pages),
    }
    (out / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return manifest


def _clean_previous(out: Path) -> None:
    """Remove the pages a previous report wrote into this directory.

    A re-run with a smaller artefact set (fewer corpus families, no
    bench file) must not leave orphaned pages behind that contradict
    the fresh ``manifest.json``. Only files the old manifest claims —
    plain names inside the output directory — are removed; anything
    else in the directory is left alone.
    """
    manifest_path = out / "manifest.json"
    if not manifest_path.exists():
        return
    try:
        old = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return
    for name in old.get("pages", ()) if isinstance(old, dict) else ():
        if not isinstance(name, str) or "/" in name or "\\" in name:
            continue
        if name.startswith("."):
            continue
        target = out / name
        if target.is_file():
            target.unlink()


def _write_charts(artifact: Artifact, out: Path) -> list[str]:
    names = []
    index = 0
    for block in artifact.blocks:
        if isinstance(block, PlotBlock):
            name = f"{artifact.slug}-{index}.svg"
            (out / name).write_text(render_line_chart(block))
            names.append(name)
            index += 1
    return names


def _md_table(block: TableBlock) -> str:
    lines = []
    if block.title:
        lines.append(f"*{block.title}*")
        lines.append("")
    lines.append("| " + " | ".join(block.headers) + " |")
    lines.append("| " + " | ".join("---" for _ in block.headers) + " |")
    for row in block.rows:
        lines.append(
            "| " + " | ".join(_format_cell(v) for v in row) + " |"
        )
    return "\n".join(lines)


def _plot_data_table(block: PlotBlock) -> TableBlock:
    headers = (block.x_label, *(label for label, _ in block.series))
    rows = tuple(
        (x, *(ys[i] for _, ys in block.series))
        for i, x in enumerate(block.x_values)
    )
    return TableBlock(headers=headers, rows=rows)


def _artifact_markdown(artifact: Artifact, svg_names: list[str]) -> str:
    lines = [f"# {artifact.title}", "", "[report index](index.md)", ""]
    if artifact.description:
        lines += [artifact.description, ""]
    svg_iter = iter(svg_names)
    for block in artifact.blocks:
        if isinstance(block, TableBlock):
            lines += [_md_table(block), ""]
        elif isinstance(block, PlotBlock):
            name = next(svg_iter)
            lines += [f"![{block.title}]({name})", ""]
            lines += [_md_table(_plot_data_table(block)), ""]
        elif isinstance(block, TextBlock):
            for line in block.lines:
                lines += [f"> {line}", ""]
    if artifact.store_keys:
        lines += [
            f"<sub>{len(artifact.store_keys)} stored operating points "
            f"back this artefact; keys in [manifest.json](manifest.json)."
            f"</sub>",
            "",
        ]
    return "\n".join(lines)


# -- html --------------------------------------------------------------------------

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 64rem; padding: 0 1rem; background: #f9f9f7;
       color: #0b0b0b; }
h1, h2 { font-weight: 600; }
a { color: #2a78d6; }
table { border-collapse: collapse; margin: 1rem 0; background: #fcfcfb; }
caption { text-align: left; color: #52514e; font-style: italic;
          padding-bottom: 0.4rem; }
th, td { border: 1px solid #e1e0d9; padding: 0.3rem 0.7rem;
         font-size: 0.9rem; }
th { background: #f0efec; text-align: left; }
td { font-variant-numeric: tabular-nums; text-align: right; }
td:first-child { text-align: left; }
blockquote { color: #52514e; border-left: 3px solid #c3c2b7;
             margin: 1rem 0; padding: 0.2rem 1rem; }
img { max-width: 100%; }
sub { color: #898781; }
"""


def _escape(text: object) -> str:
    return xml_escape(str(text))


def _page_html(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        f"<title>{_escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        f"{body}\n</body>\n</html>\n"
    )


def _html_table(block: TableBlock) -> str:
    lines = ["<table>"]
    if block.title:
        lines.append(f"<caption>{_escape(block.title)}</caption>")
    lines.append(
        "<tr>" + "".join(f"<th>{_escape(h)}</th>" for h in block.headers)
        + "</tr>"
    )
    for row in block.rows:
        lines.append(
            "<tr>"
            + "".join(f"<td>{_escape(_format_cell(v))}</td>" for v in row)
            + "</tr>"
        )
    lines.append("</table>")
    return "\n".join(lines)


def _artifact_body_html(artifact: Artifact, svg_names: list[str]) -> str:
    parts = [
        f"<h1>{_escape(artifact.title)}</h1>",
        '<p><a href="index.html">report index</a></p>',
    ]
    if artifact.description:
        parts.append(f"<p>{_escape(artifact.description)}</p>")
    svg_iter = iter(svg_names)
    for block in artifact.blocks:
        if isinstance(block, TableBlock):
            parts.append(_html_table(block))
        elif isinstance(block, PlotBlock):
            name = next(svg_iter)
            parts.append(
                f'<p><img src="{name}" alt="{_escape(block.title)}"></p>'
            )
            parts.append(_html_table(_plot_data_table(block)))
        elif isinstance(block, TextBlock):
            for line in block.lines:
                parts.append(f"<blockquote>{_escape(line)}</blockquote>")
    if artifact.store_keys:
        parts.append(
            f"<p><sub>{len(artifact.store_keys)} stored operating points "
            f'back this artefact; keys in <a href="manifest.json">'
            f"manifest.json</a>.</sub></p>"
        )
    return "\n".join(parts)


# -- index / models / bench pages --------------------------------------------------

_SECTIONS = (
    ("Paper tables and studies", ("table1", "esw")),
    ("Speedup figures (4–6)", ("fig4", "fig5", "fig6")),
    ("Equivalent-window figures (7–9)", ("fig7", "fig8", "fig9")),
    ("Ablations", tuple(f"ablation-{s}" for s in ABLATION_STUDIES)),
    ("Generalization", ("generalization",)),
    ("Workloads", ("kernels", "generated")),
)


def _index_sections(
    artifacts: list[Artifact],
) -> list[tuple[str, list[Artifact]]]:
    by_slug = {artifact.slug: artifact for artifact in artifacts}
    sections = []
    placed = set()
    for title, slugs in _SECTIONS:
        members = [by_slug[slug] for slug in slugs if slug in by_slug]
        if title == "Generalization":
            families = sorted(
                (a for a in artifacts
                 if a.slug.startswith("generalization-")),
                key=lambda a: a.slug,
            )
            members += families
        if members:
            sections.append((title, members))
            placed.update(member.slug for member in members)
    leftovers = [a for a in artifacts if a.slug not in placed]
    if leftovers:
        sections.append(("Other artefacts", leftovers))
    return sections


def _index_page(
    artifacts: list[Artifact],
    preset: ScalePreset,
    has_bench: bool,
    has_telemetry: bool = False,
) -> tuple[str, str]:
    intro = (
        f"Every table and figure of the paper, regenerated from "
        f"cycle-exact simulation at scale **{preset.name}** "
        f"({preset.scale:,} architectural instructions per kernel) and "
        f"rendered from the persistent results store."
    )
    md = ["# Paper-artifact report", "", intro, ""]
    html = [
        "<h1>Paper-artifact report</h1>",
        "<p>" + _escape(intro.replace("**", "")) + "</p>",
    ]
    if not artifacts:
        empty = (
            "No results yet — run `repro report` to evaluate the paper "
            "artefacts and populate this site."
        )
        md += [empty, ""]
        html.append(f"<p>{_escape(empty.replace('`', ''))}</p>")
    for title, members in _index_sections(artifacts):
        md += [f"## {title}", ""]
        html.append(f"<h2>{_escape(title)}</h2>")
        html.append("<ul>")
        for artifact in members:
            md.append(
                f"- [{artifact.title}]({artifact.slug}.md) — "
                f"{artifact.description}"
            )
            html.append(
                f'<li><a href="{artifact.slug}.html">'
                f"{_escape(artifact.title)}</a> — "
                f"{_escape(artifact.description)}</li>"
            )
        md.append("")
        html.append("</ul>")
    md += ["## Reference", ""]
    html.append("<h2>Reference</h2>")
    html.append("<ul>")
    md.append(
        "- [Machines and memory models](models.md) — every registered "
        "machine and memory-system kind"
    )
    html.append(
        '<li><a href="models.html">Machines and memory models</a></li>'
    )
    if has_bench:
        md.append(
            "- [Engine benchmark trajectory](bench.md) — measured "
            "throughput per engine, machine and scale"
        )
        html.append(
            '<li><a href="bench.html">Engine benchmark trajectory</a></li>'
        )
    if has_telemetry:
        md.append(
            "- [Run telemetry](telemetry.md) — engine strategies and "
            "accelerator counters behind every stored point"
        )
        html.append('<li><a href="telemetry.html">Run telemetry</a></li>')
    md.append(
        "- [manifest.json](manifest.json) — artefact-to-store-key map "
        "for this report"
    )
    html.append('<li><a href="manifest.json">manifest.json</a></li>')
    md.append("")
    html.append("</ul>")
    return "\n".join(md), _page_html("Paper-artifact report", "\n".join(html))


def _models_page() -> tuple[str, str]:
    machines = TableBlock(
        headers=("machine", "role"),
        rows=tuple(
            (name, _MACHINE_NOTES.get(name, "registered machine model"))
            for name in sorted(list_machines())
        ),
        title="Registered machine models",
    )
    kinds = TableBlock(
        headers=("memory kind", "model"),
        rows=_MEMORY_KIND_NOTES,
        title="Memory-system kinds (MemorySpec)",
    )
    md = "\n".join([
        "# Machines and memory models", "", "[report index](index.md)", "",
        _md_table(machines), "",
        _md_table(kinds), "",
        "Machines register through `repro.machines.register_machine`; "
        "memory systems are declared per point with `MemorySpec` and "
        "built at evaluation time.", "",
    ])
    body = "\n".join([
        "<h1>Machines and memory models</h1>",
        '<p><a href="index.html">report index</a></p>',
        _html_table(machines),
        _html_table(kinds),
        "<p>Machines register through "
        "<code>repro.machines.register_machine</code>; memory systems "
        "are declared per point with <code>MemorySpec</code> and built "
        "at evaluation time.</p>",
    ])
    return md, _page_html("Machines and memory models", body)


_MACHINE_NOTES = {
    "dm": "access decoupled machine (AU + DU, decoupled memory)",
    "swsm": "single-window superscalar at the DM's combined width",
    "serial": "in-order serial reference (speedup denominator)",
}

#: Counter columns of the telemetry page, in display order.
_TELEMETRY_COUNTERS = (
    ("steady_skips", "steady skips"),
    ("skipped_instructions", "skipped instrs"),
    ("event_runs", "event runs"),
    ("batch_lanes", "batch lanes"),
)


def _telemetry_page(store) -> tuple[str, str]:
    """Per-(program, machine, strategy) rollup of store-recorded telemetry.

    Renders only the deterministic store column (strategy + counter
    sums), never wall-clock numbers, so a rebuild against the same
    store reproduces the page byte-for-byte.
    """
    groups: dict[tuple[str, str, str], dict] = {}
    recorded = 0
    for row in store.rows():
        telemetry = row.telemetry
        if telemetry is None:
            continue
        recorded += 1
        key = (row.program, row.machine, telemetry.get("strategy", "?"))
        group = groups.setdefault(key, {"points": 0, "counters": {}})
        group["points"] += 1
        counters = group["counters"]
        for name, value in (telemetry.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
    table = TableBlock(
        headers=("program", "machine", "strategy", "points",
                 *(label for _, label in _TELEMETRY_COUNTERS)),
        rows=tuple(
            (
                program, machine, strategy, group["points"],
                *(group["counters"].get(name, 0)
                  for name, _ in _TELEMETRY_COUNTERS),
            )
            for (program, machine, strategy), group in sorted(groups.items())
        ),
        title="Engine strategy and accelerator counters per stored point",
    )
    context = (
        f"{recorded} of {len(store)} stored operating points carry run "
        f"telemetry (rows from pre-telemetry stores have none). "
        f"Strategies name the engine fast path that produced the "
        f"result; counters sum each strategy's accelerator work. See "
        f"docs/observability.md for the field glossary."
    )
    md = "\n".join([
        "# Run telemetry", "",
        "[report index](index.md)", "",
        context, "",
        _md_table(table), "",
    ])
    body = "\n".join([
        "<h1>Run telemetry</h1>",
        '<p><a href="index.html">report index</a></p>',
        f"<p>{_escape(context)}</p>",
        _html_table(table),
    ])
    return md, _page_html("Run telemetry", body)


def _seconds(value: object) -> str:
    """Wall-clock seconds at full precision (2dp would erase them)."""
    if isinstance(value, (int, float)):
        return f"{value:.6f}".rstrip("0").rstrip(".")
    return "" if value is None else str(value)


def _row_speedup(row: dict) -> str:
    """One speedup cell, whichever baseline the row was measured
    against (object engine, probing loop, or per-point dispatch)."""
    for key, baseline in (
        ("speedup_vs_objects", "objects"),
        ("speedup_vs_probing", "probing"),
        ("speedup_vs_per_point", "per-point"),
    ):
        value = row.get(key)
        if value is not None:
            return f"{value}x vs {baseline}"
    return ""


def _bench_page(payload: dict) -> tuple[str, str]:
    rows = payload.get("rows", [])
    table = TableBlock(
        headers=("scale", "machine", "engine", "memory", "lanes",
                 "instructions", "cycles", "seconds", "instrs/sec",
                 "speedup"),
        rows=tuple(
            (
                row.get("scale", ""), row.get("machine", ""),
                row.get("engine", ""), row.get("memory", ""),
                row.get("lanes", ""),
                row.get("instructions", ""), row.get("cycles", ""),
                _seconds(row.get("seconds")), row.get("ips", ""),
                _row_speedup(row),
            )
            for row in rows
        ),
        title=str(payload.get("benchmark", "engine benchmark")),
    )
    context = (
        f"Kernel `{payload.get('kernel', '?')}`, window "
        f"{payload.get('window', '?')}, memory differential "
        f"{payload.get('memory_differential', '?')}; last refreshed "
        f"{payload.get('updated', 'unknown')} by the engine benchmarks "
        f"(`benchmarks/bench_engine_soa.py`, `bench_engine_batch.py`; "
        f"batch rows sweep one differential per lane and report whole "
        f"sweep-axis wall clock)."
    )
    md = "\n".join([
        "# Engine benchmark trajectory", "",
        "[report index](index.md)", "",
        context, "",
        _md_table(table), "",
    ])
    body = "\n".join([
        "<h1>Engine benchmark trajectory</h1>",
        '<p><a href="index.html">report index</a></p>',
        f"<p>{_escape(context.replace('`', ''))}</p>",
        _html_table(table),
    ])
    return md, _page_html("Engine benchmark trajectory", body)
