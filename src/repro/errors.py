"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "IRValidationError",
    "BuilderError",
    "PartitionError",
    "ConfigError",
    "SimulationError",
    "SimulationDeadlockError",
    "MetricError",
    "ProjectionError",
    "KernelError",
    "StoreError",
    "ServiceError",
    "QueueFullError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRValidationError(ReproError):
    """An instruction or program violates an IR well-formedness rule."""


class BuilderError(ReproError):
    """A kernel builder was used incorrectly (bad operand, bad array ref)."""


class PartitionError(ReproError):
    """The access/execute partitioner produced or detected an invalid split."""


class ConfigError(ReproError):
    """A machine or experiment configuration is invalid."""


class SimulationError(ReproError):
    """A machine simulation failed."""


class SimulationDeadlockError(SimulationError):
    """No unit can make progress although instructions remain.

    With unbounded decoupled-memory buffers and in-order dispatch this is
    impossible for well-formed programs, so this error always indicates a
    malformed machine program (e.g. a dependence cycle).
    """


class MetricError(ReproError):
    """A metric was computed from inconsistent or insufficient inputs."""


class ProjectionError(MetricError):
    """An equivalent-window projection could not be bracketed."""


class KernelError(ReproError):
    """A kernel model was requested with invalid parameters."""


class StoreError(ReproError):
    """A persistent result store is unreadable or schema-incompatible."""


class ServiceError(ReproError):
    """The simulation service refused or failed a request.

    ``status`` carries the HTTP status code when the error crossed the
    wire (client side), ``retry_after`` the server's suggested backoff
    in seconds (from a 503 ``Retry-After`` header) when one was given.
    """

    def __init__(
        self,
        message: str,
        status: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class QueueFullError(ServiceError):
    """The service job queue is saturated (or draining); retry later.

    Mapped to HTTP 503 with a ``Retry-After`` header by the server —
    explicit backpressure instead of unbounded queueing.
    """
