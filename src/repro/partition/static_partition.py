"""Static access/execute partitioning for the decoupled machine.

The partitioner assigns every architectural instruction to the address
unit (AU) or the data unit (DU):

* all memory operations run on the AU (the AU sends addresses to the
  decoupled memory; stores also have a data half);
* every integer instruction whose value flows — through integer
  instructions only — into an effective-address computation belongs to
  the AU (the *address slice*);
* everything else (floating point and data-side integer work) belongs
  to the DU.

Values crossing between the units become explicit one-cycle ``COPY``
instructions on the producing unit. A load whose value re-enters
address computation becomes an AU *self-load*; a floating-point value
that feeds an address (via a float-to-int conversion) forces a DU→AU
copy — a *loss-of-decoupling* event, because the AU must wait for the
DU to catch up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_LATENCIES, LatencyModel
from ..errors import PartitionError
from ..ir import OpClass, Program, opcode_latency
from .machine_program import MachineInstruction, MachineProgram, MemKind, Unit

__all__ = ["AddressSlice", "compute_address_slice", "partition_dm"]


@dataclass(frozen=True)
class AddressSlice:
    """The AU-resident part of a program.

    Attributes:
        au_int: indices of integer instructions in the address slice.
        self_loads: indices of loads whose values feed address
            computation (executed as AU self-loads).
    """

    au_int: frozenset[int]
    self_loads: frozenset[int]

    def owns(self, index: int) -> bool:
        return index in self.au_int or index in self.self_loads


def compute_address_slice(program: Program) -> AddressSlice:
    """Backward slice from every effective-address operand.

    The walk recurses through integer instructions only: a
    floating-point producer terminates the slice (its value will be
    copied from the DU), and a load producer becomes a self-load (its
    own address slice is walked independently, because every memory
    operation's address operand is a root).
    """
    au_int: set[int] = set()
    self_loads: set[int] = set()
    worklist = [
        inst.addr_src
        for inst in program
        if inst.is_memory and inst.addr_src is not None
    ]
    while worklist:
        index = worklist.pop()
        producer = program[index]
        if producer.op_class is OpClass.INT:
            if index not in au_int:
                au_int.add(index)
                worklist.extend(producer.srcs)
        elif producer.op_class is OpClass.LOAD:
            self_loads.add(index)
        # FP producers terminate the walk: the value crosses DU -> AU.
    return AddressSlice(au_int=frozenset(au_int), self_loads=frozenset(self_loads))


def _producer_unit(program: Program, index: int, address_slice: AddressSlice) -> Unit:
    """Home unit of the value produced by architectural instruction ``index``."""
    op_class = program[index].op_class
    if op_class is OpClass.INT:
        return Unit.AU if index in address_slice.au_int else Unit.DU
    if op_class is OpClass.FP:
        return Unit.DU
    if op_class is OpClass.LOAD:
        return Unit.AU if index in address_slice.self_loads else Unit.DU
    raise PartitionError(f"instruction {index} (a store) produces no value")


def _consumption_units(
    program: Program, address_slice: AddressSlice
) -> dict[int, set[Unit]]:
    """For each value, the set of units that will read it."""
    needs: dict[int, set[Unit]] = {}

    def need(value: int, unit: Unit) -> None:
        needs.setdefault(value, set()).add(unit)

    for inst in program:
        if inst.op_class in (OpClass.INT, OpClass.FP):
            unit = _producer_unit(program, inst.index, address_slice)
            for src in inst.srcs:
                need(src, unit)
        elif inst.op_class is OpClass.LOAD:
            if inst.addr_src is not None:
                need(inst.addr_src, Unit.AU)
        else:  # STORE
            if inst.addr_src is not None:
                need(inst.addr_src, Unit.AU)
            # The data half of a store executes on the data value's home
            # unit, so storing never forces a cross-unit copy.
            for src in inst.srcs:
                need(src, _producer_unit(program, src, address_slice))
    return needs


def partition_dm(
    program: Program,
    latencies: LatencyModel = DEFAULT_LATENCIES,
    address_slice: AddressSlice | None = None,
) -> MachineProgram:
    """Lower an architectural program to a two-stream DM machine program.

    Args:
        program: the architectural trace.
        latencies: operation latency model.
        address_slice: a pre-computed (possibly adjusted) address slice;
            by default :func:`compute_address_slice` is used. The
            dynamic partitioner passes a rebalanced slice here.
    """
    if address_slice is None:
        address_slice = compute_address_slice(program)
    needs = _consumption_units(program, address_slice)

    streams: dict[Unit, list[MachineInstruction]] = {Unit.AU: [], Unit.DU: []}
    # (arch value index, unit) -> gid of the machine instruction whose
    # result carries that value on that unit.
    val_at: dict[tuple[int, Unit], int] = {}
    # arch store index -> gids a dependent load must wait for.
    store_gids: dict[int, tuple[int, ...]] = {}
    counters = {"copies_au_to_du": 0, "copies_du_to_au": 0, "self_loads": 0}
    gid = 0

    def emit(
        unit: Unit,
        mem_kind: MemKind,
        latency: int,
        srcs: tuple[int, ...],
        addr: int | None,
        orig_index: int,
        tag: str,
    ) -> int:
        nonlocal gid
        inst = MachineInstruction(
            gid=gid,
            unit=unit,
            mem_kind=mem_kind,
            latency=latency,
            srcs=srcs,
            addr=addr,
            orig_index=orig_index,
            tag=tag,
        )
        streams[unit].append(inst)
        gid += 1
        return inst.gid

    def value_on(src: int, unit: Unit) -> int:
        try:
            return val_at[(src, unit)]
        except KeyError:
            raise PartitionError(
                f"value %{src} is not available on {unit.value}; the "
                "partitioner failed to insert a copy"
            ) from None

    def maybe_copy(index: int, unit: Unit, produced_gid: int, tag: str) -> None:
        """Emit a copy to the other unit if that unit reads this value."""
        other = Unit.DU if unit is Unit.AU else Unit.AU
        if other in needs.get(index, ()):
            copy_gid = emit(
                unit, MemKind.COPY, latencies.copy, (produced_gid,), None, index, tag
            )
            val_at[(index, other)] = copy_gid
            if unit is Unit.AU:
                counters["copies_au_to_du"] += 1
            else:
                counters["copies_du_to_au"] += 1

    for inst in program:
        index, tag = inst.index, inst.tag
        if inst.op_class in (OpClass.INT, OpClass.FP):
            unit = _producer_unit(program, index, address_slice)
            srcs = tuple(value_on(s, unit) for s in inst.srcs)
            produced = emit(
                unit,
                MemKind.NONE,
                opcode_latency(inst.opcode, latencies),
                srcs,
                None,
                index,
                tag,
            )
            val_at[(index, unit)] = produced
            maybe_copy(index, unit, produced, tag)
        elif inst.op_class is OpClass.LOAD:
            srcs: tuple[int, ...] = ()
            if inst.addr_src is not None:
                srcs = (value_on(inst.addr_src, Unit.AU),)
            if inst.mem_dep is not None:
                srcs = srcs + store_gids[inst.mem_dep]
            if index in address_slice.self_loads:
                counters["self_loads"] += 1
                produced = emit(
                    Unit.AU,
                    MemKind.SELF_LOAD,
                    latencies.mem_base,
                    srcs,
                    inst.addr,
                    index,
                    tag,
                )
                val_at[(index, Unit.AU)] = produced
                maybe_copy(index, Unit.AU, produced, tag)
            else:
                issue = emit(
                    Unit.AU,
                    MemKind.LOAD_ISSUE,
                    latencies.mem_base,
                    srcs,
                    inst.addr,
                    index,
                    tag,
                )
                receive = emit(
                    Unit.DU,
                    MemKind.RECEIVE,
                    latencies.receive,
                    (issue,),
                    inst.addr,
                    index,
                    tag,
                )
                val_at[(index, Unit.DU)] = receive
                # Custom (non-slice) partitions may consume a received
                # value on the AU; the default slice never does.
                maybe_copy(index, Unit.DU, receive, tag)
        else:  # STORE
            if len(inst.srcs) > 1:
                raise PartitionError(
                    f"store {index} has {len(inst.srcs)} data operands; "
                    "at most one is supported"
                )
            addr_srcs: tuple[int, ...] = ()
            if inst.addr_src is not None:
                addr_srcs = (value_on(inst.addr_src, Unit.AU),)
            addr_gid = emit(
                Unit.AU,
                MemKind.STORE_ADDR,
                latencies.store,
                addr_srcs,
                inst.addr,
                index,
                tag,
            )
            if inst.srcs:
                data = inst.srcs[0]
                data_unit = _producer_unit(program, data, address_slice)
                data_gid = emit(
                    data_unit,
                    MemKind.STORE_DATA,
                    latencies.store,
                    (value_on(data, data_unit),),
                    inst.addr,
                    index,
                    tag,
                )
            else:
                data_gid = emit(
                    Unit.DU, MemKind.STORE_DATA, latencies.store, (), inst.addr,
                    index, tag,
                )
            store_gids[index] = (addr_gid, data_gid)

    meta = {
        "machine": "DM",
        "source": program.name,
        "au_int": len(address_slice.au_int),
        **counters,
    }
    machine_program = MachineProgram(program.name, streams, meta=meta)
    machine_program.validate()
    return machine_program
