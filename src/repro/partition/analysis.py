"""Decoupling analysis: how well does a program split into AU/DU streams?

This mirrors the authors' companion "limitation study into access
decoupling": the degree to which the AU can slip ahead of the DU is
bounded by *loss-of-decoupling* (LOD) events — points where address
computation depends on data computation, forcing the AU to wait.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import OpClass, Program
from .static_partition import AddressSlice, compute_address_slice

__all__ = ["DecouplingReport", "analyze_decoupling"]


@dataclass(frozen=True)
class DecouplingReport:
    """Static decoupling characteristics of a program.

    Attributes:
        name: program name.
        total: architectural instruction count.
        au_instructions: instructions the AU will execute (address-slice
            integer ops plus loads and the address half of stores).
        du_instructions: instructions the DU will execute.
        self_loads: loads whose values re-enter address computation.
        lod_events: values that cross DU -> AU (addresses depending on
            data computation) — each forces the AU to wait for the DU.
        lod_rate: LOD events per thousand architectural instructions.
    """

    name: str
    total: int
    au_instructions: int
    du_instructions: int
    self_loads: int
    lod_events: int

    @property
    def au_fraction(self) -> float:
        return self.au_instructions / self.total if self.total else 0.0

    @property
    def lod_rate(self) -> float:
        return 1000.0 * self.lod_events / self.total if self.total else 0.0

    @property
    def decouples_well(self) -> bool:
        """Heuristic: fewer than one LOD event per thousand instructions."""
        return self.lod_rate < 1.0


def analyze_decoupling(
    program: Program, address_slice: AddressSlice | None = None
) -> DecouplingReport:
    """Compute the static decoupling report for a program."""
    if address_slice is None:
        address_slice = compute_address_slice(program)

    au = 0
    lod_sources: set[int] = set()
    for inst in program:
        if inst.op_class is OpClass.INT:
            if inst.index in address_slice.au_int:
                au += 1
                # An AU integer op reading a DU-resident value is a
                # DU -> AU crossing: FP producers and non-slice INT
                # producers live on the DU.
                for src in inst.srcs:
                    producer = program[src]
                    if producer.op_class is OpClass.FP or (
                        producer.op_class is OpClass.INT
                        and src not in address_slice.au_int
                    ):
                        lod_sources.add(src)
        elif inst.op_class is OpClass.LOAD:
            au += 1
            if inst.addr_src is not None:
                producer = program[inst.addr_src]
                if producer.op_class is OpClass.FP:
                    lod_sources.add(inst.addr_src)
        elif inst.op_class is OpClass.STORE:
            au += 1  # the address half; the data half is charged to the DU

    return DecouplingReport(
        name=program.name,
        total=len(program),
        au_instructions=au,
        du_instructions=len(program) - au,
        self_loads=len(address_slice.self_loads),
        lod_events=len(lod_sources),
    )
