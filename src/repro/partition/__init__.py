"""Access/execute partitioning and machine-program lowering."""

from .analysis import DecouplingReport, analyze_decoupling
from .machine_program import MachineInstruction, MachineProgram, MemKind, Unit
from .static_partition import AddressSlice, compute_address_slice, partition_dm
from .swsm_lowering import lower_swsm

__all__ = [
    "AddressSlice",
    "DecouplingReport",
    "MachineInstruction",
    "MachineProgram",
    "MemKind",
    "Unit",
    "analyze_decoupling",
    "compute_address_slice",
    "lower_swsm",
    "partition_dm",
]
