"""Alternative partitioning strategies for the DM.

The paper's partition is the classic access/execute *slice* partition
(the default in :func:`~repro.partition.static_partition.partition_dm`).
Its future-work section asks how a different division of the code
between the units would perform; these strategies make that question
runnable:

* ``slice`` — the paper's partition (backward address slices on the AU);
* ``memory-only`` — only memory operations on the AU; every address is
  computed on the DU and copied across (the degenerate partition that
  shows why slicing matters);
* ``balanced`` — the slice partition, then data-side integer chains are
  moved to the AU while the AU holds less than its issue-width share of
  the work (a trace-level stand-in for a dynamic, balance-driven
  partitioning mechanism).
"""

from __future__ import annotations

from ..config import DEFAULT_LATENCIES, LatencyModel
from ..errors import PartitionError
from ..ir import OpClass, Program
from .machine_program import MachineProgram
from .static_partition import (
    AddressSlice,
    compute_address_slice,
    partition_dm,
)

__all__ = ["PARTITION_STRATEGIES", "partition_with_strategy"]

PARTITION_STRATEGIES = ("slice", "memory-only", "balanced")


def partition_with_strategy(
    program: Program,
    strategy: str = "slice",
    latencies: LatencyModel = DEFAULT_LATENCIES,
    target_au_fraction: float = 4.0 / 9.0,
) -> MachineProgram:
    """Partition ``program`` for the DM under the named strategy."""
    if strategy == "slice":
        return partition_dm(program, latencies)
    if strategy == "memory-only":
        empty = AddressSlice(au_int=frozenset(), self_loads=frozenset())
        return partition_dm(program, latencies, address_slice=empty)
    if strategy == "balanced":
        balanced = _balanced_slice(program, target_au_fraction)
        return partition_dm(program, latencies, address_slice=balanced)
    raise PartitionError(
        f"unknown partition strategy {strategy!r}; "
        f"known: {', '.join(PARTITION_STRATEGIES)}"
    )


def _balanced_slice(program: Program, target_au_fraction: float) -> AddressSlice:
    """Grow the address slice toward the AU's issue-width share.

    Only integer instructions whose sources are all integer values are
    movable — moving an FP consumer would manufacture loss-of-decoupling
    events, and moving a load consumer would change its memory role.
    Movement is in program order, so moved chains stay contiguous.
    """
    if not 0.0 < target_au_fraction < 1.0:
        raise PartitionError(
            f"target AU fraction must be in (0, 1), got {target_au_fraction}"
        )
    base = compute_address_slice(program)
    au_int = set(base.au_int)
    total = len(program)

    # Loads and store-address halves always execute on the AU.
    memory_ops = sum(1 for inst in program if inst.is_memory)
    current = memory_ops + len(au_int)
    target = int(total * target_au_fraction)
    if current >= target:
        return base

    for inst in program:
        if current >= target:
            break
        if inst.op_class is not OpClass.INT or inst.index in au_int:
            continue
        movable = all(
            program[src].op_class is OpClass.INT for src in inst.srcs
        )
        if movable:
            au_int.add(inst.index)
            current += 1
    return AddressSlice(au_int=frozenset(au_int), self_loads=base.self_loads)
