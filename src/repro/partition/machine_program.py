"""Machine-level programs: unit-tagged instruction streams.

The architectural IR is lowered into a :class:`MachineProgram` before
simulation. The decoupled machine (DM) gets two streams (AU and DU);
the single-window superscalar machine (SWSM) gets one. Machine
instructions reference each other by *global id* (gid), which is
assigned in program order across all streams so that it doubles as an
age for oldest-first issue and for effective-single-window analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

from ..errors import PartitionError

__all__ = ["Unit", "MemKind", "MachineInstruction", "MachineProgram"]


class Unit(enum.Enum):
    """The execution unit a machine instruction is assigned to."""

    AU = "AU"
    DU = "DU"
    SINGLE = "SINGLE"


class MemKind(enum.Enum):
    """Machine-level memory/transfer semantics of an instruction.

    The simulator keys its timing rules on this field:

    * ``NONE`` — plain arithmetic; result available ``latency`` cycles
      after issue.
    * ``COPY`` — inter-register-file move on the producing unit.
    * ``LOAD_ISSUE`` — AU sends an address; the datum reaches the
      decoupled memory ``mem_base + md`` cycles after issue, where it
      waits for the paired ``RECEIVE``.
    * ``SELF_LOAD`` — an AU load whose value the AU itself consumes;
      same memory timing, no receive instruction.
    * ``RECEIVE`` — DU consumes a buffered datum (one-cycle request).
    * ``STORE_ADDR`` / ``STORE_DATA`` — the two halves of a DM store.
    * ``PREFETCH_LOAD`` — SWSM prefetch; fills the prefetch buffer
      ``mem_base + md`` cycles after issue.
    * ``PREFETCH_STORE`` — SWSM store prefetch; establishes the entry in
      one cycle (stores complete into an idealised write buffer and do
      not wait on the memory differential — see docs/timing.md).
    * ``ACCESS_LOAD`` — SWSM access; ready once the paired prefetch's
      datum arrived, takes one cycle.
    * ``ACCESS_STORE`` — SWSM store access; one cycle.
    """

    NONE = "none"
    COPY = "copy"
    LOAD_ISSUE = "load_issue"
    SELF_LOAD = "self_load"
    RECEIVE = "receive"
    STORE_ADDR = "store_addr"
    STORE_DATA = "store_data"
    PREFETCH_LOAD = "prefetch_load"
    PREFETCH_STORE = "prefetch_store"
    ACCESS_LOAD = "access_load"
    ACCESS_STORE = "access_store"


#: Kinds whose result-availability depends on the memory differential.
MEMORY_KINDS = frozenset(
    {MemKind.LOAD_ISSUE, MemKind.SELF_LOAD, MemKind.PREFETCH_LOAD}
)


@dataclass(frozen=True)
class MachineInstruction:
    """One instruction in a unit's stream.

    Attributes:
        gid: global id; unique and monotone in (interleaved) program
            order across all streams of the machine program.
        unit: the unit whose window/issue slots this instruction uses.
        mem_kind: timing semantics (see :class:`MemKind`).
        latency: execution latency in cycles for the non-memory part of
            the timing rules (ignored for kinds whose availability is
            computed from the memory differential).
        srcs: gids this instruction must wait for before issuing.
        addr: concrete effective address for memory operations.
        orig_index: index of the architectural instruction this was
            lowered from (used for effective-single-window analysis).
        tag: annotation carried over from the architectural trace.
    """

    gid: int
    unit: Unit
    mem_kind: MemKind
    latency: int
    srcs: tuple[int, ...] = ()
    addr: int | None = None
    orig_index: int = -1
    tag: str = ""

    @property
    def is_memory_access(self) -> bool:
        return self.mem_kind in MEMORY_KINDS


class MachineProgram:
    """Unit-tagged instruction streams plus cross-stream dependencies."""

    def __init__(
        self,
        name: str,
        streams: dict[Unit, list[MachineInstruction]],
        meta: dict[str, object] | None = None,
    ) -> None:
        self.name = name
        self.streams = streams
        self.meta: dict[str, object] = dict(meta or {})
        self.num_instructions = sum(len(s) for s in streams.values())
        self._lowered = None

    @property
    def units(self) -> tuple[Unit, ...]:
        return tuple(self.streams)

    def stream(self, unit: Unit) -> list[MachineInstruction]:
        return self.streams[unit]

    def lowered(self):
        """The cached struct-of-arrays form the engine schedules over.

        Built on first use (or eagerly by the machine registry's
        ``compile``) and reused across every window size and memory
        differential; see :mod:`repro.machines.lowered`. Streams must
        not be mutated after the first call.
        """
        low = self._lowered
        if low is None:
            from ..machines.lowered import lower_program

            low = self._lowered = lower_program(self)
        return low

    def __getstate__(self) -> dict[str, object]:
        # The lowered form is derived data and can be large; rebuild it
        # after unpickling (e.g. in process-pool workers) instead of
        # shipping it.
        state = self.__dict__.copy()
        state["_lowered"] = None
        return state

    @cached_property
    def by_gid(self) -> dict[int, MachineInstruction]:
        table: dict[int, MachineInstruction] = {}
        for stream in self.streams.values():
            for inst in stream:
                if inst.gid in table:
                    raise PartitionError(f"duplicate gid {inst.gid}")
                table[inst.gid] = inst
        return table

    @cached_property
    def consumers(self) -> dict[int, list[int]]:
        """gid -> gids of instructions that depend on it."""
        out: dict[int, list[int]] = {gid: [] for gid in self.by_gid}
        for inst in self.by_gid.values():
            for dep in inst.srcs:
                out[dep].append(inst.gid)
        return out

    def validate(self) -> None:
        """Check stream ordering and dependence sanity.

        Within a stream, gids must be strictly increasing (dispatch
        order is program order). Dependencies must reference existing,
        older instructions.
        """
        table = self.by_gid
        for unit, stream in self.streams.items():
            previous = -1
            for inst in stream:
                if inst.unit is not unit:
                    raise PartitionError(
                        f"instruction gid={inst.gid} tagged {inst.unit} found "
                        f"in {unit} stream"
                    )
                if inst.gid <= previous:
                    raise PartitionError(
                        f"stream {unit} is not in increasing gid order at "
                        f"gid={inst.gid}"
                    )
                previous = inst.gid
                for dep in inst.srcs:
                    if dep not in table:
                        raise PartitionError(
                            f"gid={inst.gid} depends on unknown gid={dep}"
                        )
                    if dep >= inst.gid:
                        raise PartitionError(
                            f"gid={inst.gid} depends on younger gid={dep}"
                        )

    def unit_counts(self) -> dict[Unit, int]:
        return {unit: len(stream) for unit, stream in self.streams.items()}
