"""Lowering to the single-window superscalar machine (SWSM).

The SWSM uses the paper's hybrid prefetching scheme: every memory
operation becomes a *prefetch* instruction (computes the address and
starts the memory access into the prefetch buffer as soon as run-time
resources allow) plus an *access* instruction (consumes the buffered
datum in one cycle). Arithmetic passes through unchanged. Everything
shares one instruction stream, one window and one issue width — which
is precisely why stalled data operations can crowd out later address
computation when the memory differential is large.
"""

from __future__ import annotations

from ..config import DEFAULT_LATENCIES, LatencyModel
from ..errors import PartitionError
from ..ir import OpClass, Program, opcode_latency
from .machine_program import MachineInstruction, MachineProgram, MemKind, Unit

__all__ = ["lower_swsm"]


def lower_swsm(
    program: Program,
    latencies: LatencyModel = DEFAULT_LATENCIES,
) -> MachineProgram:
    """Lower an architectural program to a one-stream SWSM machine program."""
    stream: list[MachineInstruction] = []
    val_at: dict[int, int] = {}
    store_gids: dict[int, tuple[int, ...]] = {}
    gid = 0

    def emit(
        mem_kind: MemKind,
        latency: int,
        srcs: tuple[int, ...],
        addr: int | None,
        orig_index: int,
        tag: str,
    ) -> int:
        nonlocal gid
        inst = MachineInstruction(
            gid=gid,
            unit=Unit.SINGLE,
            mem_kind=mem_kind,
            latency=latency,
            srcs=srcs,
            addr=addr,
            orig_index=orig_index,
            tag=tag,
        )
        stream.append(inst)
        gid += 1
        return inst.gid

    def value(src: int) -> int:
        try:
            return val_at[src]
        except KeyError:
            raise PartitionError(f"value %{src} was never produced") from None

    for inst in program:
        index, tag = inst.index, inst.tag
        if inst.op_class in (OpClass.INT, OpClass.FP):
            produced = emit(
                MemKind.NONE,
                opcode_latency(inst.opcode, latencies),
                tuple(value(s) for s in inst.srcs),
                None,
                index,
                tag,
            )
            val_at[index] = produced
        elif inst.op_class is OpClass.LOAD:
            srcs: tuple[int, ...] = ()
            if inst.addr_src is not None:
                srcs = (value(inst.addr_src),)
            if inst.mem_dep is not None:
                srcs = srcs + store_gids[inst.mem_dep]
            prefetch = emit(
                MemKind.PREFETCH_LOAD, latencies.mem_base, srcs, inst.addr,
                index, tag,
            )
            access = emit(
                MemKind.ACCESS_LOAD, latencies.access, (prefetch,), inst.addr,
                index, tag,
            )
            val_at[index] = access
        else:  # STORE
            if len(inst.srcs) > 1:
                raise PartitionError(
                    f"store {index} has {len(inst.srcs)} data operands; "
                    "at most one is supported"
                )
            addr_srcs: tuple[int, ...] = ()
            if inst.addr_src is not None:
                addr_srcs = (value(inst.addr_src),)
            prefetch = emit(
                MemKind.PREFETCH_STORE, latencies.mem_base, addr_srcs, inst.addr,
                index, tag,
            )
            data_srcs = (prefetch,) + tuple(value(s) for s in inst.srcs)
            access = emit(
                MemKind.ACCESS_STORE, latencies.store, data_srcs, inst.addr,
                index, tag,
            )
            store_gids[index] = (access,)

    meta = {"machine": "SWSM", "source": program.name}
    machine_program = MachineProgram(program.name, {Unit.SINGLE: stream}, meta=meta)
    machine_program.validate()
    return machine_program
