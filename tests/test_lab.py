"""Unit tests for the experiment lab (caching and derived metrics)."""

from __future__ import annotations

import warnings

import pytest

from repro.api import Session
from repro.experiments import Lab
from repro.kernels import build_synthetic_stream


class TestDeprecation:
    def test_lab_warns_on_construction(self):
        with pytest.warns(DeprecationWarning, match="Lab is deprecated"):
            Lab(scale=500)

    def test_lab_still_is_a_session(self):
        with pytest.warns(DeprecationWarning):
            lab = Lab(scale=500)
        assert isinstance(lab, Session)

    def test_session_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Session(scale=500)


class TestCaching:
    def test_program_is_cached(self, tiny_lab):
        assert tiny_lab.program("trfd") is tiny_lab.program("trfd")

    def test_compiled_programs_are_cached(self, tiny_lab):
        assert tiny_lab.dm_compiled("trfd") is tiny_lab.dm_compiled("trfd")
        assert tiny_lab.swsm_compiled("trfd") is tiny_lab.swsm_compiled("trfd")

    def test_runs_are_cached(self, tiny_lab):
        first = tiny_lab.dm_result("trfd", 16, 60)
        second = tiny_lab.dm_result("trfd", 16, 60)
        assert first is second

    def test_distinct_parameters_are_distinct_runs(self, tiny_lab):
        a = tiny_lab.dm_result("trfd", 16, 60)
        b = tiny_lab.dm_result("trfd", 32, 60)
        c = tiny_lab.dm_result("trfd", 16, 0)
        assert a is not b and a is not c


class TestWindows:
    def test_resolve_window_passthrough(self, tiny_lab):
        assert tiny_lab.resolve_window("trfd", 48) == 48

    def test_unlimited_window_is_program_sized(self, tiny_lab):
        resolved = tiny_lab.resolve_window("trfd", None)
        assert resolved == len(tiny_lab.program("trfd"))

    def test_unlimited_run_equivalent_to_huge_window(self, tiny_lab):
        unlimited = tiny_lab.dm_cycles("trfd", None, 60)
        huge = tiny_lab.dm_cycles("trfd", 10 * len(tiny_lab.program("trfd")),
                                  60)
        assert unlimited == huge


class TestCustomPrograms:
    def test_register_program(self):
        lab = Lab(scale=1_000)
        program = build_synthetic_stream(1_000, name="custom")
        lab.register_program(program)
        assert lab.program("custom") is program
        assert lab.dm_cycles("custom", 16, 0) > 0


class TestDerivedMetrics:
    def test_speedup_consistency(self, tiny_lab):
        speedup = tiny_lab.dm_speedup("trfd", 16, 60)
        expected = (tiny_lab.serial_cycles("trfd", 60)
                    / tiny_lab.dm_cycles("trfd", 16, 60))
        assert speedup == pytest.approx(expected)

    def test_lhe_uses_zero_differential_as_perfect(self, tiny_lab):
        lhe = tiny_lab.dm_lhe("trfd", 16, 60)
        expected = (tiny_lab.dm_cycles("trfd", 16, 0)
                    / tiny_lab.dm_cycles("trfd", 16, 60))
        assert lhe == pytest.approx(expected)
        assert 0 < lhe <= 1

    def test_serial_cycles_scale_with_differential(self, tiny_lab):
        assert (tiny_lab.serial_cycles("trfd", 60)
                > tiny_lab.serial_cycles("trfd", 0))
