"""Tests for the generative workload subsystem.

Covers the loop-nest grammar (determinism, scale fidelity, family
structure), the static characterizer, corpus manifests (round trips,
digest verification, tamper detection), registry resolution of
``gen:<family>:<seed>`` names, the registry-wide purity regression,
and the generalization study.
"""

from __future__ import annotations

import pytest

from repro import KernelError, build_kernel, get_kernel, list_kernels
from repro.api import Session
from repro.experiments.generalization import run_generalization_study
from repro.kernels import PAPER_ORDER
from repro.partition import analyze_decoupling, compute_address_slice
from repro.workloads import (
    FAMILIES,
    Corpus,
    GenParams,
    build_generated,
    characterize,
    generate_corpus,
    generated_name,
    load_manifest,
    parse_generated_name,
    register_corpus,
    sample_params,
    verify_corpus,
    write_manifest,
)

SCALE = 2_000


class TestNames:
    def test_round_trip(self):
        for family in FAMILIES:
            name = generated_name(family, 123)
            assert parse_generated_name(name) == (family, 123)

    def test_non_generated_names_decline(self):
        assert parse_generated_name("trfd") is None
        assert parse_generated_name("general") is None

    def test_malformed_generated_names_fail_loudly(self):
        with pytest.raises(KernelError, match="family"):
            parse_generated_name("gen:spice:1")
        with pytest.raises(KernelError, match="seed"):
            parse_generated_name("gen:streaming:x")
        with pytest.raises(KernelError, match="malformed"):
            parse_generated_name("gen:streaming")
        with pytest.raises(KernelError, match="family"):
            generated_name("spice", 1)
        with pytest.raises(KernelError, match="seed"):
            generated_name("streaming", -1)

    def test_only_canonical_seed_spellings_resolve(self):
        """Aliases like gen:streaming:007 would cache and digest as a
        different kernel than the one they build."""
        for alias in ("gen:streaming:007", "gen:streaming:٧"):
            with pytest.raises(KernelError, match="canonical"):
                parse_generated_name(alias)
        assert parse_generated_name("gen:streaming:0") == ("streaming", 0)


@pytest.mark.parametrize("family", FAMILIES)
class TestEveryFamily:
    def test_validates(self, family):
        build_generated(family, 0, SCALE).validate()

    def test_deterministic(self, family):
        first = build_generated(family, 5, SCALE)
        second = build_generated(family, 5, SCALE)
        assert first.digest() == second.digest()

    def test_seeds_sample_the_family(self, family):
        digests = {
            build_generated(family, seed, SCALE).digest()
            for seed in range(6)
        }
        assert len(digests) > 1  # distinct programs within one family

    def test_scale_is_respected(self, family):
        for scale in (2_000, 8_000):
            program = build_generated(family, 1, scale)
            assert 0.4 * scale <= len(program) <= 1.7 * scale

    def test_meta_records_generator_parameters(self, family):
        meta = build_generated(family, 2, SCALE).meta
        assert meta["family"] == family
        assert meta["seed"] == 2
        assert "params" in meta and "grammar" in meta

    def test_params_are_pure(self, family):
        assert sample_params(family, 9) == sample_params(family, 9)

    def test_resolved_spec_rejects_contradicting_seed(self, family):
        """The name pins the seed; an explicit mismatch must not
        silently build a different kernel."""
        name = generated_name(family, 5)
        assert build_kernel(name, SCALE, seed=5).name == name
        with pytest.raises(KernelError, match="pins seed"):
            build_kernel(name, SCALE, seed=11)

    def test_resolves_through_registry(self, family):
        # A seed no other test resolves, so the lazy-band assertions
        # observe a fresh spec regardless of test order.
        name = generated_name(family, 314159)
        spec = get_kernel(name)
        assert spec is get_kernel(name)  # memoised
        assert callable(spec.band)  # prediction is lazy ...
        assert spec.resolved_band in ("high", "moderate", "poor")
        assert spec.band == spec.resolved_band  # ... then memoised
        program = spec(SCALE)
        assert program.name == name


class TestFamilyStructure:
    def test_gather_routes_addresses_through_self_loads(self):
        program = build_generated("gather", 0, SCALE)
        assert compute_address_slice(program).self_loads

    def test_chase_is_one_long_load_chain(self):
        profile = characterize(build_generated("chase", 0, SCALE))
        assert profile.load_chain_fraction > 0.9
        assert profile.predicted_band == "poor"

    def test_stencil_carries_memory_dependences(self):
        program = build_generated("stencil", 0, SCALE)
        assert any(inst.mem_dep is not None for inst in program)

    def test_reduction_feedback_creates_crossings(self):
        # Seeds are sampled; find one with feedback enabled.
        for seed in range(20):
            if sample_params("reduction", seed).feedback_period:
                program = build_generated("reduction", seed, SCALE)
                assert analyze_decoupling(program).lod_events > 0
                return
        raise AssertionError("no reduction seed in 0..19 with feedback")

    def test_streaming_decouples_cleanly(self):
        for seed in range(20):
            params = sample_params("streaming", seed)
            if not params.feedback_period:
                program = build_generated("streaming", seed, SCALE)
                assert analyze_decoupling(program).lod_events == 0
                return
        raise AssertionError("no streaming seed in 0..19 without feedback")

    def test_bad_family_rejected(self):
        with pytest.raises(KernelError, match="family"):
            build_generated("spice", 0, SCALE)
        with pytest.raises(KernelError, match="family"):
            GenParams(family="spice", seed=0)


class TestCharacterizer:
    def test_fractions_sum_to_one(self):
        profile = characterize(build_generated("streaming", 0, SCALE))
        total = (profile.int_fraction + profile.fp_fraction
                 + profile.load_fraction + profile.store_fraction)
        assert total == pytest.approx(1.0)

    def test_histogram_counts_every_edge(self):
        program = build_generated("stencil", 0, SCALE)
        profile = characterize(program)
        edges = sum(len(inst.all_deps()) for inst in program)
        assert sum(count for _, count in profile.dep_distance_hist) == edges
        assert profile.mean_dep_distance > 0

    def test_paper_extremes_classify_sanely(self):
        # TRFD decouples perfectly; TRACK loses decoupling every step.
        assert characterize(
            build_kernel("trfd", SCALE)
        ).predicted_band == "high"
        assert characterize(
            build_kernel("track", SCALE)
        ).predicted_band == "poor"

    def test_to_dict_is_serialisable(self):
        import json

        profile = characterize(build_generated("gather", 1, SCALE))
        doc = json.loads(json.dumps(profile.to_dict()))
        assert doc["predicted_band"] == profile.predicted_band
        assert doc["total"] == profile.total

    def test_session_profile_accessor_is_cached(self):
        session = Session(scale=SCALE)
        first = session.profile("gen:streaming:1")
        assert first is session.profile("gen:streaming:1")
        assert first.name == "gen:streaming:1"

    def test_session_profile_follows_registered_programs(self):
        from repro.kernels import build_synthetic_stream

        session = Session(scale=SCALE)
        stock_total = session.profile("trfd").total
        session.register_program(
            build_synthetic_stream(500, name="trfd")
        )
        assert session.profile("trfd").total != stock_total

    def test_table1_accepts_generated_programs(self):
        from repro.experiments import run_table1

        session = Session(scale=SCALE)
        result = run_table1(
            session, programs=("gen:streaming:1",), windows=(None,)
        )
        assert result.rows[0].expected_band in (
            "high", "moderate", "poor",
        )


class TestCorpus:
    def test_generation_is_pure(self):
        assert generate_corpus(9, seed=4, scale=SCALE) == generate_corpus(
            9, seed=4, scale=SCALE
        )

    def test_families_round_robin(self):
        corpus = generate_corpus(13, seed=0, scale=SCALE)
        by_family = corpus.by_family()
        assert set(by_family) == set(FAMILIES)
        sizes = sorted(len(rows) for rows in by_family.values())
        assert sizes[-1] - sizes[0] <= 1  # even coverage

    def test_default_name_matches_acceptance_convention(self):
        assert generate_corpus(5, seed=0, scale=SCALE).name == "default-5"
        assert generate_corpus(5, seed=3, scale=SCALE).name == "corpus-5-s3"

    def test_family_subsets_never_reuse_the_default_name(self):
        subset = generate_corpus(5, seed=0, scale=SCALE,
                                 families=("chase",))
        assert subset.name != "default-5"
        assert "chase" in subset.name

    def test_grammar_version_travels_and_gates_loading(self, tmp_path):
        corpus = generate_corpus(2, seed=0, scale=SCALE)
        assert corpus.grammar == 1
        path = write_manifest(corpus, tmp_path / "c.toml")
        assert "grammar = 1" in path.read_text()
        with pytest.raises(KernelError, match="grammar"):
            Corpus.from_dict({**corpus.to_dict(), "grammar": 99})

    def test_grammar_version_keys_the_disk_cache_for_gen_programs(
        self, monkeypatch
    ):
        """A grammar bump changes what gen: names build, so it must
        change their cache keys — and only theirs."""
        from repro.api import Point, point_digest
        from repro.config import LatencyModel
        from repro.workloads import grammar

        gen_point = Point(program="gen:streaming:1")
        named_point = Point(program="trfd")
        latencies = LatencyModel()
        gen_before = point_digest(gen_point, SCALE, latencies)
        named_before = point_digest(named_point, SCALE, latencies)
        monkeypatch.setattr(grammar, "GRAMMAR_VERSION", 2)
        assert point_digest(gen_point, SCALE, latencies) != gen_before
        assert point_digest(named_point, SCALE, latencies) == named_before

    def test_verify_passes_and_catches_tampering(self):
        corpus = generate_corpus(4, seed=1, scale=SCALE)
        assert verify_corpus(corpus) == []
        import dataclasses

        tampered = dataclasses.replace(
            corpus,
            entries=(
                dataclasses.replace(corpus.entries[0], digest="0" * 64),
            ) + corpus.entries[1:],
        )
        problems = verify_corpus(tampered)
        assert len(problems) == 1
        assert corpus.entries[0].name in problems[0]

    def test_toml_and_json_round_trips(self, tmp_path):
        corpus = generate_corpus(6, seed=2, scale=SCALE)
        for suffix in (".toml", ".json"):
            path = write_manifest(corpus, tmp_path / f"c{suffix}")
            assert load_manifest(path) == corpus

    def test_toml_escapes_awkward_names(self, tmp_path):
        """Whatever name the corpus carries, the written manifest must
        parse back — including control characters and quotes."""
        corpus = generate_corpus(
            2, seed=0, scale=SCALE, name='a\nb\t"c"\\d'
        )
        path = write_manifest(corpus, tmp_path / "awkward.toml")
        assert load_manifest(path) == corpus

    def test_register_corpus_resolves_every_name(self):
        corpus = generate_corpus(6, seed=0, scale=SCALE)
        specs = register_corpus(corpus)
        assert tuple(spec.name for spec in specs) == corpus.names

    def test_malformed_manifest_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('name = "x"\n')  # missing every other field
        with pytest.raises(KernelError, match="malformed"):
            load_manifest(path)
        with pytest.raises(KernelError, match="version"):
            Corpus.from_dict({
                "name": "x", "version": 99, "seed": 0, "scale": SCALE,
                "families": [], "kernels": [],
            })

    def test_validation(self):
        with pytest.raises(KernelError, match="size"):
            generate_corpus(0, scale=SCALE)
        with pytest.raises(KernelError, match="family"):
            generate_corpus(2, families=("spice",), scale=SCALE)


class TestRegistryPurity:
    """The determinism contract of kernels/base.py, registry-wide."""

    def test_every_registered_kernel_is_pure(self):
        for name in list_kernels():
            first = build_kernel(name, SCALE)
            second = build_kernel(name, SCALE)
            assert first.digest() == second.digest(), name

    def test_every_registered_kernel_is_pure_across_seeds(self):
        for name in list_kernels():
            assert build_kernel(name, SCALE, seed=11).digest() == \
                build_kernel(name, SCALE, seed=11).digest(), name

    def test_generated_corpus_kernels_are_pure(self):
        corpus = generate_corpus(len(FAMILIES), seed=0, scale=SCALE)
        for entry in corpus.entries:
            rebuilt = build_kernel(entry.name, SCALE)
            assert rebuilt.digest() == build_kernel(entry.name,
                                                    SCALE).digest()
            # And the manifest digest pins the manifest-scale build.
            assert build_kernel(
                entry.name, corpus.scale
            ).digest() == entry.digest

    def test_digest_sees_structural_changes(self):
        base = build_kernel("mdg", SCALE, seed=7)
        assert base.digest() != build_kernel("mdg", SCALE, seed=8).digest()
        assert base.digest() != build_kernel("mdg", 2 * SCALE,
                                             seed=7).digest()


class TestGeneralizationStudy:
    def test_study_over_a_corpus(self):
        session = Session(scale=SCALE)
        corpus = generate_corpus(6, seed=0, scale=SCALE)
        result = run_generalization_study(session, corpus)
        assert result.kernels == 6
        assert result.corpus_name == corpus.name
        assert {f.family for f in result.families} == set(FAMILIES)
        for row in result.rows:
            assert 0.0 < row.dm_lhe <= 1.0
            assert 0.0 < row.swsm_lhe <= 1.0
            assert row.dm_band in ("high", "moderate", "poor")
        assert sum(f.kernels for f in result.families) == result.kernels
        assert 0.0 <= result.holds_fraction <= 1.0
        assert 0.0 <= result.prediction_agreement <= 1.0

    def test_chase_breaks_the_paper_structure(self):
        session = Session(scale=SCALE)
        result = run_generalization_study(
            session, ["gen:chase:0", "gen:streaming:0"]
        )
        by_family = {f.family: f for f in result.families}
        assert by_family["chase"].band_counts["poor"] == 1

    def test_mixed_case_names_classify_like_the_registry(self):
        """get_kernel is case-insensitive, so family grouping must be
        too — 'Gen:chase:1' is the chase family, not 'named'."""
        session = Session(scale=SCALE)
        result = run_generalization_study(session, ["Gen:chase:1"])
        assert result.families[0].family == "chase"
        assert result.rows[0].name == "gen:chase:1"

    def test_paper_kernels_flow_through_as_named_family(self):
        session = Session(scale=SCALE)
        result = run_generalization_study(session, list(PAPER_ORDER[:2]))
        assert result.families[0].family == "named"
        assert result.families[0].kernels == 2
        # Predicted band comes from the registry spec (= Table 1).
        for row in result.rows:
            assert row.predicted_band == get_kernel(row.name).resolved_band
