"""Cross-cutting property tests on metrics and timing bounds."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import PAPER_ORDER, build_kernel
from repro.metrics import find_equivalent_window


@settings(max_examples=50, deadline=None)
@given(
    levels=st.lists(st.integers(1, 10_000), min_size=2, max_size=8),
    target_index=st.integers(0, 7),
)
def test_equivalent_window_finds_first_satisfying_step(levels, target_index):
    """On any monotone step function the search returns the true
    crossing (up to the documented interpolation within one window)."""
    steps = sorted(set(levels), reverse=True)
    boundaries = [2 ** (k + 1) for k in range(len(steps))]

    def evaluate(window: int) -> int:
        for boundary, value in zip(boundaries, steps):
            if window < boundary:
                return value
        return steps[-1]

    target = steps[min(target_index, len(steps) - 1)]
    result = find_equivalent_window(evaluate, target, max_window=1 << 12)
    # The integer window just above the result must satisfy the target,
    # and the one below the crossing must not (unless window 1 works).
    import math

    ceiling = max(1, math.ceil(result - 1e-9))
    assert evaluate(ceiling) <= target
    if ceiling > 1:
        below = ceiling - 1
        if evaluate(below) <= target:
            # Interpolation may land inside a satisfied plateau only if
            # the plateau extends to window 1.
            assert all(evaluate(w) <= target for w in range(1, ceiling))


@settings(max_examples=30, deadline=None)
@given(
    serial=st.integers(1, 10 ** 6),
    divisor=st.integers(1, 1_000),
)
def test_equivalent_window_on_smooth_curves(serial, divisor):
    def evaluate(window: int) -> int:
        return max(1, serial // window)

    target = max(1, serial // divisor)
    result = find_equivalent_window(evaluate, target, max_window=1 << 22)
    import math

    assert evaluate(max(1, math.ceil(result))) <= target


class TestTimingBoundsAcrossKernels:
    """Every kernel satisfies the analytic sandwich at every md."""

    def test_critical_path_below_serial(self):
        for name in PAPER_ORDER:
            program = build_kernel(name, 3_000)
            for md in (0, 30, 60):
                assert program.critical_path(md) <= program.serial_time(md)

    def test_serial_time_linear_in_differential(self):
        for name in PAPER_ORDER:
            program = build_kernel(name, 3_000)
            t0 = program.serial_time(0)
            t30 = program.serial_time(30)
            t60 = program.serial_time(60)
            assert t60 - t30 == t30 - t0 == 30 * program.stats.loads

    def test_machines_sit_between_bounds(self, claims_lab):
        for name in PAPER_ORDER:
            program = claims_lab.program(name)
            lower = program.critical_path(60)
            upper = claims_lab.serial_cycles(name, 60)
            dm = claims_lab.dm_cycles(name, None, 60)
            swsm = claims_lab.swsm_cycles(name, None, 60)
            # The DM inserts copy/receive hops, so its floor is the
            # architectural critical path; both machines must beat the
            # non-overlapped serial reference on these workloads.
            assert lower <= dm < upper, name
            assert swsm < upper, name
