"""Cross-cutting property tests on metrics, timing bounds, and the
event-heap scheduler's determinism invariants."""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DecoupledMachine, SuperscalarMachine, Unit, UnitConfig
from repro.config import DEFAULT_LATENCIES
from repro.kernels import PAPER_ORDER, build_kernel
from repro.machines import simulate
from repro.machines.engine import _simulate_events
from repro.memory import BankedMemory, FixedLatencyMemory, StreamPrefetcher
from repro.metrics import find_equivalent_window
from repro.workloads import FAMILIES


@settings(max_examples=50, deadline=None)
@given(
    levels=st.lists(st.integers(1, 10_000), min_size=2, max_size=8),
    target_index=st.integers(0, 7),
)
def test_equivalent_window_finds_first_satisfying_step(levels, target_index):
    """On any monotone step function the search returns the true
    crossing (up to the documented interpolation within one window)."""
    steps = sorted(set(levels), reverse=True)
    boundaries = [2 ** (k + 1) for k in range(len(steps))]

    def evaluate(window: int) -> int:
        for boundary, value in zip(boundaries, steps):
            if window < boundary:
                return value
        return steps[-1]

    target = steps[min(target_index, len(steps) - 1)]
    result = find_equivalent_window(evaluate, target, max_window=1 << 12)
    # The integer window just above the result must satisfy the target,
    # and the one below the crossing must not (unless window 1 works).
    import math

    ceiling = max(1, math.ceil(result - 1e-9))
    assert evaluate(ceiling) <= target
    if ceiling > 1:
        below = ceiling - 1
        if evaluate(below) <= target:
            # Interpolation may land inside a satisfied plateau only if
            # the plateau extends to window 1.
            assert all(evaluate(w) <= target for w in range(1, ceiling))


@settings(max_examples=30, deadline=None)
@given(
    serial=st.integers(1, 10 ** 6),
    divisor=st.integers(1, 1_000),
)
def test_equivalent_window_on_smooth_curves(serial, divisor):
    def evaluate(window: int) -> int:
        return max(1, serial // window)

    target = max(1, serial // divisor)
    result = find_equivalent_window(evaluate, target, max_window=1 << 22)
    import math

    assert evaluate(max(1, math.ceil(result))) <= target


class TestTimingBoundsAcrossKernels:
    """Every kernel satisfies the analytic sandwich at every md."""

    def test_critical_path_below_serial(self):
        for name in PAPER_ORDER:
            program = build_kernel(name, 3_000)
            for md in (0, 30, 60):
                assert program.critical_path(md) <= program.serial_time(md)

    def test_serial_time_linear_in_differential(self):
        for name in PAPER_ORDER:
            program = build_kernel(name, 3_000)
            t0 = program.serial_time(0)
            t30 = program.serial_time(30)
            t60 = program.serial_time(60)
            assert t60 - t30 == t30 - t0 == 30 * program.stats.loads

    def test_machines_sit_between_bounds(self, claims_lab):
        for name in PAPER_ORDER:
            program = claims_lab.program(name)
            lower = program.critical_path(60)
            upper = claims_lab.serial_cycles(name, 60)
            dm = claims_lab.dm_cycles(name, None, 60)
            swsm = claims_lab.swsm_cycles(name, None, 60)
            # The DM inserts copy/receive hops, so its floor is the
            # architectural critical path; both machines must beat the
            # non-overlapped serial reference on these workloads.
            assert lower <= dm < upper, name
            assert swsm < upper, name


# -- event-heap scheduler invariants ------------------------------------------

_GEN_SCALE = 1_200

_MEMORY_FACTORIES = {
    "fixed": lambda: FixedLatencyMemory(60),
    "banked": lambda: BankedMemory(extra=60, banks=4, busy=3),
    "prefetch": lambda: StreamPrefetcher(FixedLatencyMemory(60)),
}

_MACHINES = {
    "dm": (
        DecoupledMachine.compile,
        {
            Unit.AU: UnitConfig(window=16, width=4, name="AU"),
            Unit.DU: UnitConfig(window=16, width=5, name="DU"),
        },
    ),
    "swsm": (
        SuperscalarMachine.compile,
        {Unit.SINGLE: UnitConfig(window=16, width=9)},
    ),
}


def _event_trace(compiled, memory, chunked):
    """One forced event-engine run; returns (result, popped events)."""
    low = compiled.lowered()
    _, configs = _MACHINES["dm" if len(low.units) == 2 else "swsm"]
    trace: list[tuple[int, int, int]] = []
    addlat = (low.base_addlat if chunked
              else low.addlat_for(DEFAULT_LATENCIES.mem_base + 60))
    result = _simulate_events(
        low, compiled, configs, memory, addlat, DEFAULT_LATENCIES,
        collect_issue_times=True, max_cycles=None, chunked=chunked,
        trace=trace,
    )
    return result, trace


def _simulate_with_engine(compiled, configs, memory, choice):
    previous = os.environ.get("REPRO_EVENT_ENGINE")
    os.environ["REPRO_EVENT_ENGINE"] = choice
    try:
        return simulate(compiled, configs, memory, collect_issue_times=True)
    finally:
        if previous is None:
            del os.environ["REPRO_EVENT_ENGINE"]
        else:
            os.environ["REPRO_EVENT_ENGINE"] = previous


class TestEventHeapProperties:
    """Hypothesis invariants of the event-heap scheduler over random
    generated kernels (``gen:<family>:<seed>`` names)."""

    @settings(max_examples=15, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(0, 10_000),
        kind=st.sampled_from(sorted(_MEMORY_FACTORIES)),
    )
    def test_popped_event_times_are_non_decreasing(self, family, seed, kind):
        compiled = DecoupledMachine.compile(
            build_kernel(f"gen:{family}:{seed}", _GEN_SCALE)
        )
        _, trace = _event_trace(compiled, _MEMORY_FACTORIES[kind](),
                                chunked=kind != "fixed")
        times = [t for t, _, _ in trace]
        assert times == sorted(times)

    @settings(max_examples=10, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(0, 10_000),
        machine=st.sampled_from(sorted(_MACHINES)),
    )
    def test_heap_tie_breaks_are_fifo_deterministic(self, family, seed,
                                                    machine):
        # Two identical runs must pop the identical (time, seq, code)
        # sequence — the seq counter pins insertion order at equal
        # timestamps, so there is nothing left to vary.
        compile_fn, _ = _MACHINES[machine]
        compiled = compile_fn(build_kernel(f"gen:{family}:{seed}",
                                           _GEN_SCALE))
        first_result, first = _event_trace(
            compiled, BankedMemory(extra=60, banks=4, busy=3), chunked=True)
        second_result, second = _event_trace(
            compiled, BankedMemory(extra=60, banks=4, busy=3), chunked=True)
        assert first == second
        assert first_result == second_result
        for (t0, s0, _), (t1, s1, _) in zip(first, first[1:]):
            if t1 == t0:
                assert s1 > s0

    @settings(max_examples=12, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(0, 10_000),
        machine=st.sampled_from(sorted(_MACHINES)),
        kind=st.sampled_from(sorted(_MEMORY_FACTORIES)),
    )
    def test_result_invariant_under_engine_toggle(self, family, seed,
                                                  machine, kind):
        compile_fn, configs = _MACHINES[machine]
        compiled = compile_fn(build_kernel(f"gen:{family}:{seed}",
                                           _GEN_SCALE))
        make_memory = _MEMORY_FACTORIES[kind]
        forced = _simulate_with_engine(compiled, configs, make_memory(),
                                       "events")
        soa = _simulate_with_engine(compiled, configs, make_memory(), "soa")
        auto = _simulate_with_engine(compiled, configs, make_memory(), "auto")
        assert forced == soa == auto
