"""Unit tests for the memory-system models."""

from __future__ import annotations

import pytest

from repro import BypassBuffer, ConfigError, FixedLatencyMemory
from repro.errors import MetricError
from repro.memory import (
    CacheLevelConfig,
    CacheMemory,
    OccupancyStats,
    occupancy_from_intervals,
)


class TestFixedLatencyMemory:
    def test_constant_cost(self):
        memory = FixedLatencyMemory(60)
        assert memory.extra_latency(0, 0) == 60
        assert memory.extra_latency(12345, 999) == 60

    def test_zero_differential(self):
        assert FixedLatencyMemory(0).extra_latency(4, 1) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            FixedLatencyMemory(-1)

    def test_describe(self):
        assert "60" in FixedLatencyMemory(60).describe()


class TestCacheMemory:
    def _small_cache(self) -> CacheMemory:
        level = CacheLevelConfig(
            name="L1", size_bytes=128, line_bytes=16, associativity=2,
            hit_extra=0,
        )
        return CacheMemory(levels=(level,), miss_extra=60)

    def test_miss_then_hit(self):
        cache = self._small_cache()
        assert cache.extra_latency(0, 0) == 60  # cold miss
        assert cache.extra_latency(0, 1) == 0  # now cached
        assert cache.extra_latency(8, 2) == 0  # same 16-byte line

    def test_lru_eviction(self):
        cache = self._small_cache()  # 4 sets x 2 ways
        # Three lines mapping to the same set (stride = sets*line = 64).
        cache.extra_latency(0, 0)
        cache.extra_latency(64, 1)
        cache.extra_latency(128, 2)  # evicts line 0
        assert cache.extra_latency(0, 3) == 60

    def test_lru_refresh_on_hit(self):
        cache = self._small_cache()
        cache.extra_latency(0, 0)
        cache.extra_latency(64, 1)
        cache.extra_latency(0, 2)  # refresh line 0
        cache.extra_latency(128, 3)  # evicts line 64, not line 0
        assert cache.extra_latency(0, 4) == 0
        assert cache.extra_latency(64, 5) == 60

    def test_two_level_fill(self):
        l1 = CacheLevelConfig(name="L1", size_bytes=32, line_bytes=16,
                              associativity=2, hit_extra=0)
        l2 = CacheLevelConfig(name="L2", size_bytes=256, line_bytes=16,
                              associativity=2, hit_extra=6)
        cache = CacheMemory(levels=(l1, l2), miss_extra=60)
        assert cache.extra_latency(0, 0) == 60
        # Evict from tiny L1 (both ways of its single... two sets).
        cache.extra_latency(32, 1)
        cache.extra_latency(64, 2)
        # Line 0 is gone from L1 but still in L2.
        assert cache.extra_latency(0, 3) == 6

    def test_reset_clears_state(self):
        cache = self._small_cache()
        cache.extra_latency(0, 0)
        cache.reset()
        assert cache.extra_latency(0, 1) == 60
        assert cache.levels[0].hits == 0

    def test_hit_rate(self):
        cache = self._small_cache()
        cache.extra_latency(0, 0)
        cache.extra_latency(0, 1)
        assert cache.levels[0].hit_rate == 0.5

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="bad", size_bytes=8, line_bytes=16,
                             associativity=1, hit_extra=0)
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="bad", size_bytes=100, line_bytes=16,
                             associativity=2, hit_extra=0)
        with pytest.raises(ConfigError):
            CacheMemory(levels=(), miss_extra=10)


class TestBypassBuffer:
    def test_hit_after_fetch(self):
        bypass = BypassBuffer(FixedLatencyMemory(60), entries=4, line_bytes=1)
        assert bypass.extra_latency(7, 0) == 60
        assert bypass.extra_latency(7, 1) == 0
        assert bypass.hit_rate == 0.5

    def test_lru_eviction(self):
        bypass = BypassBuffer(FixedLatencyMemory(60), entries=2, line_bytes=1)
        bypass.extra_latency(1, 0)
        bypass.extra_latency(2, 1)
        bypass.extra_latency(3, 2)  # evicts 1
        assert bypass.extra_latency(1, 3) == 60

    def test_line_granularity(self):
        bypass = BypassBuffer(FixedLatencyMemory(60), entries=4, line_bytes=32)
        bypass.extra_latency(0, 0)
        assert bypass.extra_latency(31, 1) == 0  # same line
        assert bypass.extra_latency(32, 2) == 60

    def test_reset_propagates(self):
        backing = FixedLatencyMemory(60)
        bypass = BypassBuffer(backing, entries=2)
        bypass.extra_latency(0, 0)
        bypass.reset()
        assert bypass.hits == 0 and bypass.misses == 0
        assert bypass.extra_latency(0, 1) == 60

    def test_validation(self):
        with pytest.raises(ConfigError):
            BypassBuffer(FixedLatencyMemory(0), entries=0)
        with pytest.raises(ConfigError):
            BypassBuffer(FixedLatencyMemory(0), line_bytes=0)


class TestOccupancy:
    def test_empty(self):
        assert occupancy_from_intervals([]) == OccupancyStats.empty()

    def test_non_overlapping(self):
        stats = occupancy_from_intervals([(0, 5), (10, 15)])
        assert stats.peak == 1
        assert stats.items == 2

    def test_overlapping_peak(self):
        stats = occupancy_from_intervals([(0, 10), (2, 8), (4, 6)])
        assert stats.peak == 3

    def test_mean_is_time_weighted(self):
        # One item buffered for 10 cycles over a 10-cycle span.
        stats = occupancy_from_intervals([(0, 10)])
        assert stats.mean == pytest.approx(1.0)

    def test_zero_length_intervals_contribute_nothing(self):
        stats = occupancy_from_intervals([(5, 5), (6, 6)])
        assert stats.peak == 0
        assert stats.items == 2

    def test_rejects_backwards_interval(self):
        with pytest.raises(MetricError):
            occupancy_from_intervals([(5, 3)])
