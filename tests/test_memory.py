"""Unit tests for the memory-system models and the batched protocol."""

from __future__ import annotations

import pytest

from repro import BypassBuffer, ConfigError, FixedLatencyMemory
from repro.errors import MetricError
from repro.memory import (
    CAP_STATEFUL,
    CAP_STATELESS,
    CAP_UNIFORM,
    BankedMemory,
    CacheLevelConfig,
    CacheMemory,
    MemorySystem,
    OccupancyStats,
    StreamPrefetcher,
    hierarchy_levels,
    occupancy_from_intervals,
)


class TestFixedLatencyMemory:
    def test_constant_cost(self):
        memory = FixedLatencyMemory(60)
        assert memory.extra_latency(0, 0) == 60
        assert memory.extra_latency(12345, 999) == 60

    def test_zero_differential(self):
        assert FixedLatencyMemory(0).extra_latency(4, 1) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            FixedLatencyMemory(-1)

    def test_describe(self):
        assert "60" in FixedLatencyMemory(60).describe()


class TestCacheMemory:
    def _small_cache(self) -> CacheMemory:
        level = CacheLevelConfig(
            name="L1", size_bytes=128, line_bytes=16, associativity=2,
            hit_extra=0,
        )
        return CacheMemory(levels=(level,), miss_extra=60)

    def test_miss_then_hit(self):
        cache = self._small_cache()
        assert cache.extra_latency(0, 0) == 60  # cold miss
        assert cache.extra_latency(0, 1) == 0  # now cached
        assert cache.extra_latency(8, 2) == 0  # same 16-byte line

    def test_lru_eviction(self):
        cache = self._small_cache()  # 4 sets x 2 ways
        # Three lines mapping to the same set (stride = sets*line = 64).
        cache.extra_latency(0, 0)
        cache.extra_latency(64, 1)
        cache.extra_latency(128, 2)  # evicts line 0
        assert cache.extra_latency(0, 3) == 60

    def test_lru_refresh_on_hit(self):
        cache = self._small_cache()
        cache.extra_latency(0, 0)
        cache.extra_latency(64, 1)
        cache.extra_latency(0, 2)  # refresh line 0
        cache.extra_latency(128, 3)  # evicts line 64, not line 0
        assert cache.extra_latency(0, 4) == 0
        assert cache.extra_latency(64, 5) == 60

    def test_two_level_fill(self):
        l1 = CacheLevelConfig(name="L1", size_bytes=32, line_bytes=16,
                              associativity=2, hit_extra=0)
        l2 = CacheLevelConfig(name="L2", size_bytes=256, line_bytes=16,
                              associativity=2, hit_extra=6)
        cache = CacheMemory(levels=(l1, l2), miss_extra=60)
        assert cache.extra_latency(0, 0) == 60
        # Evict from tiny L1 (both ways of its single... two sets).
        cache.extra_latency(32, 1)
        cache.extra_latency(64, 2)
        # Line 0 is gone from L1 but still in L2.
        assert cache.extra_latency(0, 3) == 6

    def test_reset_clears_state(self):
        cache = self._small_cache()
        cache.extra_latency(0, 0)
        cache.reset()
        assert cache.extra_latency(0, 1) == 60
        assert cache.levels[0].hits == 0

    def test_hit_rate(self):
        cache = self._small_cache()
        cache.extra_latency(0, 0)
        cache.extra_latency(0, 1)
        assert cache.levels[0].hit_rate == 0.5

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="bad", size_bytes=8, line_bytes=16,
                             associativity=1, hit_extra=0)
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="bad", size_bytes=100, line_bytes=16,
                             associativity=2, hit_extra=0)
        with pytest.raises(ConfigError):
            CacheMemory(levels=(), miss_extra=10)


class TestBypassBuffer:
    def test_hit_after_fetch(self):
        bypass = BypassBuffer(FixedLatencyMemory(60), entries=4, line_bytes=1)
        assert bypass.extra_latency(7, 0) == 60
        assert bypass.extra_latency(7, 1) == 0
        assert bypass.hit_rate == 0.5

    def test_lru_eviction(self):
        bypass = BypassBuffer(FixedLatencyMemory(60), entries=2, line_bytes=1)
        bypass.extra_latency(1, 0)
        bypass.extra_latency(2, 1)
        bypass.extra_latency(3, 2)  # evicts 1
        assert bypass.extra_latency(1, 3) == 60

    def test_line_granularity(self):
        bypass = BypassBuffer(FixedLatencyMemory(60), entries=4, line_bytes=32)
        bypass.extra_latency(0, 0)
        assert bypass.extra_latency(31, 1) == 0  # same line
        assert bypass.extra_latency(32, 2) == 60

    def test_reset_propagates(self):
        backing = FixedLatencyMemory(60)
        bypass = BypassBuffer(backing, entries=2)
        bypass.extra_latency(0, 0)
        bypass.reset()
        assert bypass.hits == 0 and bypass.misses == 0
        assert bypass.extra_latency(0, 1) == 60

    def test_validation(self):
        with pytest.raises(ConfigError):
            BypassBuffer(FixedLatencyMemory(0), entries=0)
        with pytest.raises(ConfigError):
            BypassBuffer(FixedLatencyMemory(0), line_bytes=0)


class TestBatchedProtocol:
    """latencies() must mirror scalar extra_latency access for access."""

    def _models(self):
        yield FixedLatencyMemory(60)
        yield BypassBuffer(FixedLatencyMemory(60), entries=4, line_bytes=8)
        yield CacheMemory(miss_extra=60)
        yield BankedMemory(extra=60, banks=2, interleave_bytes=8, busy=3)
        yield StreamPrefetcher(FixedLatencyMemory(60), line_bytes=8)

    def test_batched_equals_scalar_sequence(self):
        addrs = [0, 8, 16, 8, 64, 0, 24, 32, 40, 48, 0, 8]
        for batched in self._models():
            twin = next(  # a fresh instance of the same model
                m for m in self._models() if type(m) is type(batched)
            )
            chunked = batched.latencies(addrs[:5], 3)
            chunked += batched.latencies(addrs[5:], 9)
            one_by_one = [twin.extra_latency(a, 3) for a in addrs[:5]]
            one_by_one += [twin.extra_latency(a, 9) for a in addrs[5:]]
            assert chunked == one_by_one, type(batched).__name__

    def test_scalar_only_legacy_model_gets_default_batching(self):
        class Legacy(MemorySystem):
            def extra_latency(self, addr, now):
                return (addr % 4) + now

            def reset(self):
                pass

        assert Legacy().latencies([0, 1, 2, 9], 5) == [5, 6, 7, 6]
        assert Legacy().capability() == CAP_STATEFUL

    def test_capabilities(self):
        assert FixedLatencyMemory(5).capability() == CAP_UNIFORM
        assert CacheMemory().capability() == CAP_STATEFUL
        assert BypassBuffer(FixedLatencyMemory(5)).capability() \
            == CAP_STATEFUL
        assert BankedMemory().capability() == CAP_STATEFUL
        assert StreamPrefetcher(FixedLatencyMemory(5)).capability() \
            == CAP_STATEFUL
        assert CAP_STATELESS not in (
            m.capability() for m in self._models()
        )

    def test_time_sensitivity_report(self):
        assert not FixedLatencyMemory(5).time_sensitive()
        assert not CacheMemory().time_sensitive()
        assert not BypassBuffer(FixedLatencyMemory(5)).time_sensitive()
        assert BankedMemory().time_sensitive()
        assert StreamPrefetcher(FixedLatencyMemory(5)).time_sensitive()

    def test_speculation_hints(self):
        assert BypassBuffer(FixedLatencyMemory(5)).speculation_friendly()
        assert not BankedMemory().speculation_friendly()

    def test_typical_extra_latency_propagates(self):
        assert FixedLatencyMemory(42).typical_extra_latency() == 42
        assert BypassBuffer(
            FixedLatencyMemory(42)
        ).typical_extra_latency() == 42
        assert CacheMemory(miss_extra=17).typical_extra_latency() == 17


class TestZeroAccessRates:
    """No accesses must mean rate 0.0 everywhere, never a ZeroDivision."""

    def test_cache_level_hit_rate(self):
        cache = CacheMemory(miss_extra=60)
        assert cache.levels[0].hit_rate == 0.0

    def test_cache_aggregate_hit_rate(self):
        assert CacheMemory(miss_extra=60).hit_rate == 0.0

    def test_bypass_hit_rate(self):
        assert BypassBuffer(FixedLatencyMemory(60)).hit_rate == 0.0

    def test_prefetch_hit_rate(self):
        assert StreamPrefetcher(FixedLatencyMemory(60)).hit_rate == 0.0

    def test_banked_rates(self):
        banked = BankedMemory()
        assert banked.conflict_rate == 0.0
        assert banked.mean_wait == 0.0

    def test_rates_zero_again_after_reset(self):
        cache = CacheMemory(miss_extra=60)
        cache.latencies([0, 0, 64], 0)
        assert cache.hit_rate > 0
        cache.reset()
        assert cache.hit_rate == 0.0


class TestCacheEdgeGeometries:
    def test_direct_mapped(self):
        # assoc=1: two lines in the same set always evict each other.
        level = CacheLevelConfig(name="L1", size_bytes=64, line_bytes=16,
                                 associativity=1, hit_extra=0)
        cache = CacheMemory(levels=(level,), miss_extra=60)
        assert cache.extra_latency(0, 0) == 60
        assert cache.extra_latency(0, 1) == 0
        assert cache.extra_latency(64, 2) == 60  # same set, evicts 0
        assert cache.extra_latency(0, 3) == 60

    def test_fully_associative(self):
        # One set holding every way: no conflict misses, only capacity.
        level = CacheLevelConfig(name="L1", size_bytes=64, line_bytes=16,
                                 associativity=4, hit_extra=0)
        cache = CacheMemory(levels=(level,), miss_extra=60)
        assert level.num_sets == 1
        for i in range(4):
            cache.extra_latency(16 * i, i)
        assert all(cache.extra_latency(16 * i, 9) == 0 for i in range(4))
        cache.extra_latency(1024, 20)  # capacity eviction of LRU (line 0)
        assert cache.extra_latency(0, 21) == 60

    def test_mixed_line_sizes_rejected(self):
        levels = hierarchy_levels(((64, 16, 1, 0), (256, 32, 2, 5)))
        with pytest.raises(ConfigError, match="line_bytes"):
            CacheMemory(levels=levels, miss_extra=60)

    def test_hierarchy_levels_builder(self):
        levels = hierarchy_levels(((64, 16, 1, 0), (256, 16, 2, 5)))
        assert [lv.name for lv in levels] == ["L1", "L2"]
        assert levels[1].hit_extra == 5
        cache = CacheMemory(levels=levels, miss_extra=60)
        assert "L1+L2" in cache.describe()


class TestBankedMemory:
    def test_no_conflict_without_reuse(self):
        banked = BankedMemory(extra=10, banks=4, interleave_bytes=8, busy=4)
        assert banked.latencies([0, 8, 16, 24], 0) == [10, 10, 10, 10]
        assert banked.conflict_rate == 0.0

    def test_same_bank_queues(self):
        banked = BankedMemory(extra=10, banks=4, interleave_bytes=8, busy=4)
        # Three same-cycle accesses to bank 0: waits 0, 4, 8.
        assert banked.latencies([0, 32, 64], 0) == [10, 14, 18]
        assert banked.conflicts == 2
        assert banked.mean_wait == pytest.approx(4.0)

    def test_bank_frees_with_time(self):
        banked = BankedMemory(extra=10, banks=4, interleave_bytes=8, busy=4)
        banked.latencies([0], 0)
        assert banked.latencies([0], 100) == [10]  # long idle: no wait

    def test_zero_busy_is_the_fixed_model(self):
        banked = BankedMemory(extra=60, banks=2, busy=0)
        assert banked.latencies([0, 0, 0], 0) == [60, 60, 60]

    def test_reset(self):
        banked = BankedMemory(extra=10, banks=1, interleave_bytes=8, busy=9)
        banked.latencies([0, 8], 0)
        banked.reset()
        assert banked.latencies([0], 0) == [10]
        assert banked.accesses == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            BankedMemory(banks=0)
        with pytest.raises(ConfigError):
            BankedMemory(busy=-1)
        with pytest.raises(ConfigError):
            BankedMemory(extra=-1)

    def test_describe_and_stats(self):
        banked = BankedMemory(extra=10, banks=4)
        assert "banked(4x" in banked.describe()
        assert "bank_conflict_rate" in banked.stats()


class TestStreamPrefetcher:
    def _prefetcher(self, **kw) -> StreamPrefetcher:
        kw.setdefault("entries", 16)
        kw.setdefault("line_bytes", 8)
        kw.setdefault("streams", 2)
        kw.setdefault("degree", 2)
        return StreamPrefetcher(FixedLatencyMemory(60), **kw)

    def test_confirmed_stride_prefetches_ahead(self):
        pf = self._prefetcher()
        # Misses at lines 0, 1 train stride 1; the miss at line 2
        # confirms it and prefetches lines 3 and 4.
        assert pf.extra_latency(0, 0) == 60
        assert pf.extra_latency(8, 50) == 60
        assert pf.extra_latency(16, 100) == 60
        assert pf.prefetches == 2
        # Lines 3 and 4 arrived at 100 + 60 = 160; at 200 they're free.
        assert pf.extra_latency(24, 200) == 0
        assert pf.extra_latency(32, 201) == 0
        assert pf.hit_rate == pytest.approx(0.4)

    def test_late_prefetch_pays_partial_wait(self):
        pf = self._prefetcher()
        pf.extra_latency(0, 0)
        pf.extra_latency(8, 5)
        pf.extra_latency(16, 10)  # confirm: prefetch line 3, arrival 70
        assert pf.extra_latency(24, 30) == 40  # 70 - 30 still in flight
        assert pf.late_hits == 1

    def test_irregular_stream_never_prefetches(self):
        pf = self._prefetcher()
        for i, addr in enumerate((0, 1000, 4000, 2000, 9000)):
            assert pf.extra_latency(addr, i) == 60
        assert pf.prefetches == 0
        assert pf.hit_rate == 0.0

    def test_two_streams_tracked_independently(self):
        pf = self._prefetcher()
        far = 1 << 20
        for i, addr in enumerate((0, far, 8, far + 8, 16, far + 16)):
            pf.extra_latency(addr, i)
        assert pf.prefetches == 4  # both streams confirmed stride 1

    def test_reset(self):
        pf = self._prefetcher()
        pf.extra_latency(0, 0)
        pf.extra_latency(8, 1)
        pf.reset()
        assert pf.hits == pf.misses == pf.prefetches == 0
        assert pf.extra_latency(16, 2) == 60  # buffer emptied

    def test_validation(self):
        with pytest.raises(ConfigError):
            self._prefetcher(streams=0)
        with pytest.raises(ConfigError):
            self._prefetcher(degree=0)
        with pytest.raises(ConfigError):
            self._prefetcher(entries=0)

    def test_describe_and_stats(self):
        pf = self._prefetcher()
        assert "prefetch(streams=2" in pf.describe()
        assert "prefetch_hit_rate" in pf.stats()


class TestOccupancy:
    def test_empty(self):
        assert occupancy_from_intervals([]) == OccupancyStats.empty()

    def test_non_overlapping(self):
        stats = occupancy_from_intervals([(0, 5), (10, 15)])
        assert stats.peak == 1
        assert stats.items == 2

    def test_overlapping_peak(self):
        stats = occupancy_from_intervals([(0, 10), (2, 8), (4, 6)])
        assert stats.peak == 3

    def test_mean_is_time_weighted(self):
        # One item buffered for 10 cycles over a 10-cycle span.
        stats = occupancy_from_intervals([(0, 10)])
        assert stats.mean == pytest.approx(1.0)

    def test_zero_length_intervals_contribute_nothing(self):
        stats = occupancy_from_intervals([(5, 5), (6, 6)])
        assert stats.peak == 0
        assert stats.items == 2

    def test_rejects_backwards_interval(self):
        with pytest.raises(MetricError):
            occupancy_from_intervals([(5, 3)])
