"""Documentation link integrity — checked-in pages and the generated site.

Validates that every relative link in ``README.md`` and ``docs/*.md``
resolves to a real file (and, for ``#fragment`` links, to a real
heading), that documentation paths mentioned in source docstrings
exist — so docstring/doc drift like the old ``DESIGN.md`` references
cannot recur — and that the ``repro report`` site links and anchors
resolve within the generated output (Markdown pages, HTML pages, SVG
images, the manifest). Runs as part of the normal pytest suite and as
a dedicated CI step.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

MARKDOWN_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")]
)

#: Inline markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Doc-file paths mentioned in Python docstrings/comments.
_DOC_MENTION = re.compile(r"(?:docs/[A-Za-z0-9_\-]+\.md|BENCH_engine\.json)")


def _headings(markdown: str) -> set[str]:
    """GitHub-style anchor slugs for every heading in the document."""
    slugs = set()
    for line in markdown.splitlines():
        match = re.match(r"#+\s+(.*)", line)
        if match:
            title = match.group(1).strip()
            title = re.sub(r"[`*_]", "", title)
            slug = re.sub(r"[^\w\s-]", "", title.lower())
            slug = re.sub(r"\s+", "-", slug.strip())
            slugs.add(slug)
    return slugs


def _relative_links(markdown: str):
    for target in _LINK.findall(markdown):
        if re.match(r"[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # absolute URL scheme (https:, mailto:, ...)
        yield target


@pytest.mark.parametrize(
    "path", MARKDOWN_FILES, ids=[p.name for p in MARKDOWN_FILES]
)
def test_markdown_relative_links_resolve(path: Path):
    text = path.read_text()
    problems = []
    for target in _relative_links(text):
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{target!r} -> missing {resolved}")
                continue
        else:
            resolved = path
        if fragment and resolved.suffix == ".md":
            if fragment.lower() not in _headings(resolved.read_text()):
                problems.append(
                    f"{target!r} -> no heading {fragment!r} in "
                    f"{resolved.name}"
                )
    assert not problems, "\n".join(problems)


def test_markdown_links_stay_inside_the_repo():
    for path in MARKDOWN_FILES:
        for target in _relative_links(path.read_text()):
            file_part = target.partition("#")[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            assert resolved.is_relative_to(REPO), (
                f"{path.name}: {target!r} escapes the repository"
            )


def test_doc_paths_mentioned_in_source_exist():
    problems = []
    for directory in ("src", "benchmarks", "tools", "examples"):
        for source in sorted((REPO / directory).rglob("*.py")):
            for mention in _DOC_MENTION.findall(source.read_text()):
                if not (REPO / mention).exists():
                    problems.append(
                        f"{source.relative_to(REPO)} mentions missing "
                        f"{mention!r}"
                    )
    assert not problems, "\n".join(problems)


def test_readme_documents_every_docs_page():
    readme = (REPO / "README.md").read_text()
    for page in sorted((REPO / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, (
            f"README.md does not link docs/{page.name}"
        )


# -- the generated report site -----------------------------------------------------

#: href/src attributes in generated HTML pages.
_HTML_TARGET = re.compile(r"""(?:href|src)="([^"#]+)(?:#[^"]*)?\"""")


def test_generated_report_markdown_links_resolve(tiny_report_site):
    out, _, _ = tiny_report_site
    problems = []
    pages = sorted(out.glob("*.md"))
    assert pages, "report site produced no markdown pages"
    for page in pages:
        text = page.read_text()
        for target in _relative_links(text):
            file_part, _, fragment = target.partition("#")
            resolved = (out / file_part) if file_part else page
            if not resolved.exists():
                problems.append(f"{page.name}: {target!r} -> missing file")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment.lower() not in _headings(resolved.read_text()):
                    problems.append(
                        f"{page.name}: {target!r} -> no heading"
                    )
    assert not problems, "\n".join(problems)


def test_generated_report_html_targets_resolve(tiny_report_site):
    out, _, _ = tiny_report_site
    problems = []
    pages = sorted(out.glob("*.html"))
    assert pages, "report site produced no html pages"
    for page in pages:
        for target in _HTML_TARGET.findall(page.read_text()):
            if re.match(r"[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue
            if not (out / target).exists():
                problems.append(f"{page.name}: {target!r} -> missing file")
    assert not problems, "\n".join(problems)


def test_generated_report_pages_all_reachable_from_index(tiny_report_site):
    out, manifest, _ = tiny_report_site
    index = (out / "index.md").read_text()
    for entry in manifest["artifacts"]:
        assert f"({entry['slug']}.md)" in index, (
            f"index.md does not link {entry['slug']}.md"
        )


def test_generated_report_manifest_lists_every_page(tiny_report_site):
    out, manifest, _ = tiny_report_site
    on_disk = sorted(p.name for p in out.iterdir())
    assert on_disk == manifest["pages"]
