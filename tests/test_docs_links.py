"""Documentation link integrity.

Validates that every relative link in ``README.md`` and ``docs/*.md``
resolves to a real file (and, for ``#fragment`` links, to a real
heading), and that documentation paths mentioned in source docstrings
exist — so docstring/doc drift like the old ``DESIGN.md`` references
cannot recur. Runs as part of the normal pytest suite and as a
dedicated CI step.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

MARKDOWN_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")]
)

#: Inline markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Doc-file paths mentioned in Python docstrings/comments.
_DOC_MENTION = re.compile(r"(?:docs/[A-Za-z0-9_\-]+\.md|BENCH_engine\.json)")


def _headings(markdown: str) -> set[str]:
    """GitHub-style anchor slugs for every heading in the document."""
    slugs = set()
    for line in markdown.splitlines():
        match = re.match(r"#+\s+(.*)", line)
        if match:
            title = match.group(1).strip()
            title = re.sub(r"[`*_]", "", title)
            slug = re.sub(r"[^\w\s-]", "", title.lower())
            slug = re.sub(r"\s+", "-", slug.strip())
            slugs.add(slug)
    return slugs


def _relative_links(markdown: str):
    for target in _LINK.findall(markdown):
        if re.match(r"[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # absolute URL scheme (https:, mailto:, ...)
        yield target


@pytest.mark.parametrize(
    "path", MARKDOWN_FILES, ids=[p.name for p in MARKDOWN_FILES]
)
def test_markdown_relative_links_resolve(path: Path):
    text = path.read_text()
    problems = []
    for target in _relative_links(text):
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{target!r} -> missing {resolved}")
                continue
        else:
            resolved = path
        if fragment and resolved.suffix == ".md":
            if fragment.lower() not in _headings(resolved.read_text()):
                problems.append(
                    f"{target!r} -> no heading {fragment!r} in "
                    f"{resolved.name}"
                )
    assert not problems, "\n".join(problems)


def test_markdown_links_stay_inside_the_repo():
    for path in MARKDOWN_FILES:
        for target in _relative_links(path.read_text()):
            file_part = target.partition("#")[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            assert resolved.is_relative_to(REPO), (
                f"{path.name}: {target!r} escapes the repository"
            )


def test_doc_paths_mentioned_in_source_exist():
    problems = []
    for directory in ("src", "benchmarks", "tools", "examples"):
        for source in sorted((REPO / directory).rglob("*.py")):
            for mention in _DOC_MENTION.findall(source.read_text()):
                if not (REPO / mention).exists():
                    problems.append(
                        f"{source.relative_to(REPO)} mentions missing "
                        f"{mention!r}"
                    )
    assert not problems, "\n".join(problems)


def test_readme_documents_every_docs_page():
    readme = (REPO / "README.md").read_text()
    for page in sorted((REPO / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, (
            f"README.md does not link docs/{page.name}"
        )
