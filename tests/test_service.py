"""Service lifecycle tests: the job queue, the HTTP API, the client.

Everything runs against an in-process server on an ephemeral port
(``start_server`` with ``port=0``) at a deliberately small scale, so
the suite exercises the full submit → poll → fetch path — coalescing,
backpressure, cancellation, graceful drain — without slow simulations.
Jobs that must be *observably* slow get there via a monkeypatched
``Session._simulate`` sleep, not via bigger kernels.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.api import Session, Sweep
from repro.api.session import Session as SessionClass
from repro.api.spec import Point
from repro.errors import QueueFullError, ServiceError
from repro.service import (
    JobScheduler,
    ServiceClient,
    ServiceConfig,
    result_rows,
    start_server,
    stop_server,
)

SCALE = 1_500


def _sweep(name: str = "svc", windows=(8, 16)) -> Sweep:
    return Sweep.grid(
        name=name,
        program="flo52q",
        machine=("dm", "swsm"),
        window=tuple(windows),
        memory_differential=60,
    )


@pytest.fixture
def service(tmp_path):
    """A running server + client; drained and closed afterwards."""
    config = ServiceConfig(
        scale=SCALE,
        workers=2,
        port=0,
        cache_dir=str(tmp_path / "cache"),
        store_path=str(tmp_path / "results.sqlite"),
    )
    server, scheduler, _ = start_server(config)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
    yield client, scheduler, server
    stop_server(server, timeout=30.0)


def _slow_simulate(monkeypatch, seconds: float):
    """Make every fresh simulation (not cache hits) take >= seconds."""
    original = SessionClass._simulate

    def patched(self, canonical):
        time.sleep(seconds)
        return original(self, canonical)

    monkeypatch.setattr(SessionClass, "_simulate", patched)


class TestHappyPath:
    def test_submit_poll_fetch_point(self, service):
        client, _, _ = service
        point = Point(program="flo52q", machine="dm", window=16,
                      memory_differential=60)
        job_id = client.submit_point(point)
        payload = client.fetch(job_id, timeout=120)
        assert payload["state"] == "done"
        assert len(payload["rows"]) == 1
        row = payload["rows"][0]
        direct = Session(scale=SCALE)
        assert row["cycles"] == direct.evaluate(point).cycles
        assert row["point"]["program"] == "flo52q"
        assert len(row["key"]) == 64  # the store's content address

    def test_sweep_rows_match_direct_session_byte_for_byte(self, service):
        client, _, _ = service
        sweep = _sweep()
        job_id = client.submit_sweep(sweep)
        payload = client.fetch(job_id, timeout=120)

        session = Session(scale=SCALE)
        outcome = session.run(sweep)
        expected = result_rows(
            outcome.points, outcome.results, SCALE, session.latencies
        )
        assert (
            json.dumps(payload["rows"], sort_keys=True)
            == json.dumps(expected, sort_keys=True)
        )

    def test_health_and_job_listing(self, service):
        client, _, _ = service
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        job_id = client.submit_point(Point(program="flo52q", window=8))
        client.wait(job_id, timeout=120)
        assert any(job["id"] == job_id for job in client.jobs())

    def test_results_endpoint_serves_store_rows(self, service):
        client, _, _ = service
        job_id = client.submit_point(
            Point(program="flo52q", machine="dm", window=8,
                  memory_differential=60)
        )
        client.fetch(job_id, timeout=120)
        payload = client.results(program="flo52q", machine="dm")
        assert payload["summary"]["results"] >= 1
        assert all(row["program"] == "flo52q" for row in payload["rows"])


class TestCoalescing:
    def test_duplicate_submission_one_job_two_fetchers(self, service):
        """Two concurrent submitters of the same spec share one job."""
        client, scheduler, _ = service
        sweep = _sweep("coalesce")
        spec = sweep.to_dict()
        outcomes = []

        def submit_and_fetch():
            response = client.submit("sweep", spec)
            outcomes.append(
                (response["id"], client.fetch(response["id"], timeout=120))
            )

        threads = [
            threading.Thread(target=submit_and_fetch) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        (id_a, rows_a), (id_b, rows_b) = outcomes
        assert id_a == id_b
        assert rows_a["rows"] == rows_b["rows"]
        assert len(scheduler.jobs()) == 1  # one simulation happened

    def test_equivalent_spellings_share_a_job(self, service):
        """A sweep and its point list content-address identically."""
        client, _, _ = service
        point = Point(program="flo52q", machine="dm", window=16,
                      memory_differential=60)
        first = client.submit_point(point)
        # A second submission, spelled through the low-level API.
        response = client.submit("point", {
            "program": "flo52q", "machine": "dm", "window": 16,
            "memory_differential": 60,
        })
        assert response["id"] == first
        assert response["coalesced"] is True
        assert response["hits"] == 1

    def test_done_job_serves_new_fetchers_without_resimulation(
        self, service, monkeypatch
    ):
        client, _, _ = service
        sweep = _sweep("warm")
        job_id = client.submit_sweep(sweep)
        client.fetch(job_id, timeout=120)
        # Any further simulation would now blow up loudly.
        monkeypatch.setattr(
            SessionClass,
            "_simulate",
            lambda self, canonical: pytest.fail("re-simulated a done job"),
        )
        again = client.submit("sweep", sweep.to_dict())
        assert again["coalesced"] is True
        assert client.result(job_id)["rows"]


class TestWarmStore:
    def test_restarted_server_serves_from_store_without_simulating(
        self, tmp_path, monkeypatch
    ):
        """A fresh scheduler on a warm store never touches the engine."""
        store_path = str(tmp_path / "warm.sqlite")
        sweep = _sweep("restart")

        config = ServiceConfig(
            scale=SCALE, workers=1, port=0, store_path=store_path
        )
        server, _, _ = start_server(config)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        first = client.fetch(client.submit_sweep(sweep), timeout=120)
        stop_server(server)

        monkeypatch.setattr(
            SessionClass,
            "_simulate",
            lambda self, canonical: pytest.fail(
                "store-resident point was re-simulated"
            ),
        )
        server2, _, _ = start_server(config)
        host2, port2 = server2.server_address[:2]
        client2 = ServiceClient(f"http://{host2}:{port2}")
        second = client2.fetch(client2.submit_sweep(sweep), timeout=120)
        stop_server(server2)
        assert second["rows"] == first["rows"]


class TestBackpressure:
    def test_queue_full_returns_503_with_retry_after(
        self, tmp_path, monkeypatch
    ):
        _slow_simulate(monkeypatch, 0.5)
        config = ServiceConfig(
            scale=SCALE, workers=1, queue_limit=1, port=0, retry_after=7
        )
        server, scheduler, _ = start_server(config)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            running = client.submit_point(Point(program="flo52q", window=4))
            deadline = time.monotonic() + 30
            while client.job(running)["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # Worker is busy: this one occupies the single queue slot...
            client.submit_point(Point(program="flo52q", window=5))
            # ... and the next distinct job must be refused, not queued.
            with pytest.raises(QueueFullError) as excinfo:
                client.submit_point(Point(program="flo52q", window=6))
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == 7.0
        finally:
            stop_server(server, timeout=30.0)

    def test_duplicate_of_inflight_job_coalesces_past_a_full_queue(
        self, tmp_path, monkeypatch
    ):
        """Backpressure never applies to coalescing resubmissions."""
        _slow_simulate(monkeypatch, 0.5)
        config = ServiceConfig(
            scale=SCALE, workers=1, queue_limit=1, port=0
        )
        server, _, _ = start_server(config)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            point = Point(program="flo52q", window=4)
            job_id = client.submit_point(point)
            response = client.submit("point", {
                "program": "flo52q", "window": 4,
            })
            assert response["id"] == job_id
            assert response["coalesced"] is True
        finally:
            stop_server(server, timeout=30.0)


class TestErrors:
    def test_malformed_spec_maps_config_error_to_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit("point", {"program": "flo52q", "bogus": 1})
        assert excinfo.value.status == 400
        assert "bogus" in str(excinfo.value)

    def test_unknown_machine_maps_to_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit("point", {"program": "flo52q", "machine": "vliw"})
        assert excinfo.value.status == 400
        assert "unknown machine" in str(excinfo.value)

    def test_unknown_program_maps_to_400_at_submit(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit("point", {"program": "nope"})
        assert excinfo.value.status == 400
        assert "unknown kernel" in str(excinfo.value)

    def test_unknown_kind_maps_to_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit("batch", {"program": "flo52q"})
        assert excinfo.value.status == 400

    def test_invalid_json_body_maps_to_400(self, service):
        client, _, server = service
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        connection.request(
            "POST", "/v1/jobs", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 400
        connection.close()

    def test_unknown_job_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.job("f" * 64)
        assert excinfo.value.status == 404

    def test_result_before_done_is_202_with_retry_after(
        self, service, monkeypatch
    ):
        client, _, _ = service
        _slow_simulate(monkeypatch, 0.5)
        job_id = client.submit_point(Point(program="flo52q", window=6))
        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 202
        assert excinfo.value.retry_after is not None
        client.fetch(job_id, timeout=120)  # settle before teardown


class TestCancellation:
    def test_cancel_queued_job_then_result_is_410(
        self, tmp_path, monkeypatch
    ):
        _slow_simulate(monkeypatch, 0.5)
        config = ServiceConfig(
            scale=SCALE, workers=1, queue_limit=8, port=0
        )
        server, _, _ = start_server(config)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            running = client.submit_point(Point(program="flo52q", window=4))
            deadline = time.monotonic() + 30
            while client.job(running)["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            queued = client.submit_point(Point(program="flo52q", window=5))
            cancelled = client.cancel(queued)
            assert cancelled["state"] == "cancelled"
            with pytest.raises(ServiceError) as excinfo:
                client.result(queued)
            assert excinfo.value.status == 410
            # Cancelling a running (or finished) job is refused.
            with pytest.raises(ServiceError) as excinfo:
                client.cancel(running)
            assert excinfo.value.status == 409
        finally:
            stop_server(server, timeout=30.0)

    def test_resubmitting_a_cancelled_job_requeues_it(self, service):
        client, scheduler, _ = service
        point = Point(program="flo52q", window=12)
        job_id = client.submit_point(point)
        scheduler.cancel(job_id)  # may lose the race with a worker
        response = client.submit("point", {
            "program": "flo52q", "window": 12,
        })
        assert response["id"] == job_id
        payload = client.fetch(job_id, timeout=120)
        assert payload["state"] == "done"


class TestGracefulShutdown:
    def test_drain_finishes_running_job_and_refuses_new_work(
        self, tmp_path, monkeypatch
    ):
        _slow_simulate(monkeypatch, 0.5)
        config = ServiceConfig(
            scale=SCALE, workers=1, queue_limit=8, port=0,
            drain_timeout=60.0,
        )
        server, scheduler, _ = start_server(config)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        running = client.submit_point(Point(program="flo52q", window=4))
        queued = client.submit_point(Point(program="flo52q", window=5))
        deadline = time.monotonic() + 30
        while client.job(running)["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.01)

        drained: list[bool] = []
        drainer = threading.Thread(
            target=lambda: drained.append(scheduler.drain())
        )
        drainer.start()
        # While draining, submissions are refused with 503 ...
        with pytest.raises(QueueFullError) as excinfo:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                client.submit_point(Point(program="flo52q", window=6))
                time.sleep(0.01)
        assert "draining" in str(excinfo.value)
        drainer.join(timeout=60)
        assert drained == [True]
        # ... the running job finished, the queued one was cancelled.
        assert client.job(running)["state"] == "done"
        assert client.job(queued)["state"] in ("cancelled", "done")
        server.shutdown()
        server.server_close()


class TestPriorities:
    def test_lower_priority_value_runs_first(self, tmp_path, monkeypatch):
        _slow_simulate(monkeypatch, 0.3)
        config = ServiceConfig(
            scale=SCALE, workers=1, queue_limit=8, port=0
        )
        server, _, _ = start_server(config)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            blocker = client.submit_point(Point(program="flo52q", window=4))
            deadline = time.monotonic() + 30
            while client.job(blocker)["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            low = client.submit(
                "point", {"program": "flo52q", "window": 5}, priority=5
            )["id"]
            high = client.submit(
                "point", {"program": "flo52q", "window": 6}, priority=0
            )["id"]
            client.wait(low, timeout=120)
            client.wait(high, timeout=120)
            assert (
                client.job(high)["started"] <= client.job(low)["started"]
            )
        finally:
            stop_server(server, timeout=30.0)


class TestArtifacts:
    def test_serves_report_site_pages(self, tmp_path):
        site = tmp_path / "site"
        site.mkdir()
        (site / "index.html").write_text("<h1>repro report</h1>")
        (site / "manifest.json").write_text('{"pages": []}')
        config = ServiceConfig(scale=SCALE, port=0, site_dir=str(site))
        server, _, _ = start_server(config)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            assert b"repro report" in client.artifact("index.html")
            assert json.loads(client.artifact("manifest.json")) == {
                "pages": []
            }
            with pytest.raises(ServiceError) as excinfo:
                client.artifact("missing.html")
            assert excinfo.value.status == 404
        finally:
            stop_server(server)

    def test_path_traversal_is_rejected(self, tmp_path):
        site = tmp_path / "site"
        site.mkdir()
        secret = tmp_path / "secret.txt"
        secret.write_text("outside")
        config = ServiceConfig(scale=SCALE, port=0, site_dir=str(site))
        server, _, _ = start_server(config)
        host, port = server.server_address[:2]
        try:
            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.putrequest(
                "GET", "/v1/artifacts/../secret.txt",
                skip_host=False, skip_accept_encoding=True,
            )
            connection.endheaders()
            response = connection.getresponse()
            assert response.status in (403, 404)
            assert b"outside" not in response.read()
            connection.close()
        finally:
            stop_server(server)

    def test_no_site_configured_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.artifact("index.html")
        assert excinfo.value.status == 404


class TestSchedulerDirect:
    """Scheduler-core behaviour that needs no HTTP round trip."""

    def test_submit_validates_before_admitting(self):
        scheduler = JobScheduler(
            ServiceConfig(scale=SCALE, workers=1, queue_limit=2)
        )
        try:
            from repro.errors import ConfigError

            with pytest.raises(ConfigError):
                scheduler.submit("point", {"program": ""})
            with pytest.raises(ConfigError):
                scheduler.submit("sweep", ["not", "a", "table"])
            assert scheduler.jobs() == []
        finally:
            scheduler.drain(timeout=5)

    def test_counts_track_states(self):
        scheduler = JobScheduler(
            ServiceConfig(scale=SCALE, workers=1, queue_limit=4)
        )
        try:
            job, coalesced = scheduler.submit(
                "point", {"program": "flo52q", "window": 8}
            )
            assert not coalesced
            deadline = time.monotonic() + 60
            while scheduler.job(job.id).state != "done":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            counts = scheduler.counts()
            assert counts["done"] == 1
            assert counts["queue_depth"] == 0
        finally:
            scheduler.drain(timeout=5)
