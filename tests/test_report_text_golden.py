"""Golden-file tests: CLI stdout is byte-identical to the pre-report CLI.

The files under ``tests/golden/`` were captured from the CLI *before*
the formatting moved into the report emitters; every command below must
reproduce them byte-for-byte at the tiny scale. This pins the contract
that the single text renderer over typed artefact rows is a drop-in
replacement for the old hand-written printers — and protects the
terminal output from accidental drift in future refactors.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).resolve().parent / "golden"

COMMANDS = {
    "table1": ["table1"],
    "fig4": ["fig4"],
    "fig7": ["fig7"],
    "esw": ["esw"],
    "kernels": ["kernels"],
    "generate": ["generate"],
    "ablation-issue-split": ["ablation", "--study", "issue-split"],
    "ablation-partition": ["ablation", "--study", "partition"],
    "ablation-bypass": ["ablation", "--study", "bypass"],
    "ablation-expansion": ["ablation", "--study", "expansion"],
    "ablation-hierarchy": ["ablation", "--study", "hierarchy"],
    "ablation-generalization": [
        "ablation", "--study", "generalization", "--size", "6",
        "--seed", "0",
    ],
}


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")


@pytest.mark.parametrize("name", sorted(COMMANDS), ids=sorted(COMMANDS))
def test_cli_output_matches_golden(capsys, name):
    assert main(COMMANDS[name]) == 0
    out = capsys.readouterr().out
    expected = (GOLDEN / f"{name}.txt").read_text()
    assert out == expected, (
        f"`repro {' '.join(COMMANDS[name])}` drifted from "
        f"tests/golden/{name}.txt"
    )
