"""Cycle-exact semantics tests for the event-driven engine.

Each test hand-builds a tiny machine program and asserts the exact
issue times mandated by the docs/timing.md semantics.
"""

from __future__ import annotations

import pytest

from repro import SimulationDeadlockError, SimulationError, Unit, UnitConfig
from repro.machines import simulate
from repro.memory import FixedLatencyMemory
from repro.partition import MachineInstruction, MachineProgram, MemKind


def op(gid, unit=Unit.SINGLE, kind=MemKind.NONE, latency=1, srcs=(),
       addr=None):
    return MachineInstruction(
        gid=gid, unit=unit, mem_kind=kind, latency=latency, srcs=srcs,
        addr=addr,
    )


def single(instructions, window=64, width=9, md=0, **kwargs):
    program = MachineProgram("t", {Unit.SINGLE: instructions})
    return simulate(
        program,
        {Unit.SINGLE: UnitConfig(window=window, width=width)},
        memory=FixedLatencyMemory(md),
        collect_issue_times=True,
        **kwargs,
    )


class TestBasicTiming:
    def test_single_instruction(self):
        result = single([op(0, latency=1)])
        # Dispatched at cycle 0, issues at 1, completes at 2.
        assert result.issue_times == {0: 1}
        assert result.cycles == 2

    def test_dependent_chain_back_to_back(self):
        result = single([op(0), op(1, srcs=(0,)), op(2, srcs=(1,))])
        assert result.issue_times == {0: 1, 1: 2, 2: 3}
        assert result.cycles == 4

    def test_fp_latency_gap(self):
        result = single([op(0, latency=3), op(1, srcs=(0,))])
        assert result.issue_times == {0: 1, 1: 4}

    def test_independent_ops_issue_together(self):
        result = single([op(0), op(1), op(2)])
        assert result.issue_times == {0: 1, 1: 1, 2: 1}


class TestStructuralLimits:
    def test_issue_width_throttles(self):
        result = single([op(k) for k in range(4)], width=2)
        # Dispatch is also width-limited: two per cycle.
        assert result.issue_times == {0: 1, 1: 1, 2: 2, 3: 2}

    def test_window_of_one_serialises(self):
        result = single([op(k) for k in range(3)], window=1, width=9)
        assert result.issue_times == {0: 1, 1: 2, 2: 3}

    def test_out_of_order_issue_oldest_first(self):
        instructions = [
            op(0, kind=MemKind.PREFETCH_LOAD, addr=8),  # long wait
            op(1, srcs=(0,)),  # blocked on the prefetch's datum
            op(2),  # independent, younger
        ]
        result = single(instructions, md=50)
        times = result.issue_times
        assert times[2] < times[1]  # younger instruction overtook
        assert times[1] == times[0] + 1 + 50  # woke at datum arrival

    def test_stalled_instruction_holds_window_slot(self):
        # Window 2: the stalled consumer plus one slot; the third op
        # cannot dispatch until a slot frees.
        instructions = [
            op(0, kind=MemKind.PREFETCH_LOAD, addr=8),
            op(1, srcs=(0,)),
            op(2),
            op(3),
        ]
        result = single(instructions, window=2, md=30)
        times = result.issue_times
        # op1 occupies a slot until the datum arrives, so op3 waits.
        assert times[3] > times[2]
        assert times[1] == times[0] + 31


class TestMemoryTiming:
    def test_dm_load_receive_pair(self):
        program = MachineProgram("t", {
            Unit.AU: [op(0, Unit.AU, MemKind.LOAD_ISSUE, latency=1, addr=8)],
            Unit.DU: [op(1, Unit.DU, MemKind.RECEIVE, latency=1, srcs=(0,))],
        })
        result = simulate(
            program,
            {
                Unit.AU: UnitConfig(window=8, width=4),
                Unit.DU: UnitConfig(window=8, width=5),
            },
            memory=FixedLatencyMemory(10),
            collect_issue_times=True,
        )
        # Issue at 1; datum arrives at 1 + 1 + 10 = 12; receive issues
        # at 12 and delivers at 13.
        assert result.issue_times == {0: 1, 1: 12}
        assert result.cycles == 13

    def test_self_load_timing(self):
        program = MachineProgram("t", {
            Unit.AU: [
                op(0, Unit.AU, MemKind.SELF_LOAD, latency=1, addr=8),
                op(1, Unit.AU, srcs=(0,)),
            ],
        })
        result = simulate(
            program, {Unit.AU: UnitConfig(window=8, width=4)},
            memory=FixedLatencyMemory(20), collect_issue_times=True,
        )
        assert result.issue_times[1] == result.issue_times[0] + 21

    def test_prefetch_access_pair(self):
        result = single([
            op(0, kind=MemKind.PREFETCH_LOAD, addr=8),
            op(1, kind=MemKind.ACCESS_LOAD, srcs=(0,)),
            op(2, srcs=(1,)),
        ], md=10)
        times = result.issue_times
        assert times[1] == times[0] + 11  # access waits for the buffer
        assert times[2] == times[1] + 1

    def test_store_prefetch_does_not_wait_for_memory(self):
        result = single([
            op(0, kind=MemKind.PREFETCH_STORE, addr=8),
            op(1, kind=MemKind.ACCESS_STORE, srcs=(0,)),
        ], md=60)
        times = result.issue_times
        assert times[1] == times[0] + 1  # entry established in one cycle

    def test_zero_differential_still_pays_base_cost(self):
        result = single([
            op(0, kind=MemKind.PREFETCH_LOAD, addr=8),
            op(1, kind=MemKind.ACCESS_LOAD, srcs=(0,)),
        ], md=0)
        assert result.issue_times[1] == result.issue_times[0] + 1


class TestCrossUnit:
    def test_copy_transfers_between_units(self):
        program = MachineProgram("t", {
            Unit.DU: [
                op(0, Unit.DU, latency=3),
                op(1, Unit.DU, MemKind.COPY, latency=1, srcs=(0,)),
            ],
            Unit.AU: [op(2, Unit.AU, srcs=(1,))],
        })
        result = simulate(
            program,
            {
                Unit.AU: UnitConfig(window=8, width=4),
                Unit.DU: UnitConfig(window=8, width=5),
            },
            collect_issue_times=True,
        )
        times = result.issue_times
        assert times[1] == times[0] + 3
        assert times[2] == times[1] + 1


class TestFailureModes:
    def test_dependence_cycle_deadlocks(self):
        # Malformed by construction (validate() would reject it).
        program = MachineProgram("t", {
            Unit.AU: [op(0, Unit.AU, srcs=(1,))],
            Unit.DU: [op(1, Unit.DU, srcs=(0,))],
        })
        with pytest.raises(SimulationDeadlockError):
            simulate(program, {
                Unit.AU: UnitConfig(window=4, width=4),
                Unit.DU: UnitConfig(window=4, width=5),
            })

    def test_missing_unit_config(self):
        program = MachineProgram("t", {Unit.AU: [op(0, Unit.AU)]})
        with pytest.raises(SimulationError, match="configuration"):
            simulate(program, {})

    def test_max_cycles_guard(self):
        instructions = [
            op(0, kind=MemKind.PREFETCH_LOAD, addr=8),
            op(1, kind=MemKind.ACCESS_LOAD, srcs=(0,)),
        ]
        with pytest.raises(SimulationError, match="max_cycles"):
            single(instructions, md=500, max_cycles=50)


class TestStats:
    def test_unit_stats(self):
        result = single([op(0), op(1), op(2, srcs=(1,))])
        stats = result.unit_stats[Unit.SINGLE]
        assert stats.instructions == 3
        assert stats.issue_cycles == 2  # cycle 1 (two ops) and cycle 2
        assert stats.mean_issue_rate == pytest.approx(1.5)

    def test_ipc(self):
        result = single([op(k) for k in range(9)], width=9)
        assert result.ipc == pytest.approx(9 / result.cycles)

    def test_empty_program(self):
        result = single([])
        assert result.cycles == 0
        assert result.instructions == 0
