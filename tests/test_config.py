"""Unit tests for machine configurations and the latency model."""

from __future__ import annotations

import pytest

from repro import ConfigError, DMConfig, LatencyModel, SWSMConfig, UnitConfig
from repro.config import DEFAULT_LATENCIES, MEMORY_DIFFERENTIALS


class TestLatencyModel:
    def test_defaults_match_paper(self):
        model = LatencyModel()
        assert model.int_op == 1
        assert model.fp_op == 3
        assert model.mem_base == 1
        assert model.receive == 1

    @pytest.mark.parametrize(
        "field", ["int_op", "fp_op", "fp_div", "copy", "receive", "access",
                  "store", "mem_base"],
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(ConfigError):
            LatencyModel(**{field: 0})

    def test_rejects_non_integer(self):
        with pytest.raises(ConfigError):
            LatencyModel(fp_op=2.5)

    def test_default_instance_is_shared(self):
        assert DEFAULT_LATENCIES == LatencyModel()


class TestUnitConfig:
    def test_valid(self):
        unit = UnitConfig(window=32, width=4, name="AU")
        assert unit.window == 32
        assert unit.width == 4

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            UnitConfig(window=0, width=4)

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigError):
            UnitConfig(window=4, width=0)


class TestDMConfig:
    def test_symmetric_default_widths(self):
        config = DMConfig.symmetric(32)
        assert config.au.window == 32
        assert config.du.window == 32
        assert config.au.width == 4
        assert config.du.width == 5
        assert config.combined_issue_width == 9

    def test_with_window_resizes_both_units(self):
        config = DMConfig.symmetric(16).with_window(64)
        assert config.au.window == 64
        assert config.du.window == 64
        assert config.au.width == 4  # widths preserved

    def test_asymmetric_windows_supported(self):
        config = DMConfig(
            au=UnitConfig(window=8, width=4, name="AU"),
            du=UnitConfig(window=64, width=5, name="DU"),
        )
        assert config.au.window != config.du.window


class TestSWSMConfig:
    def test_default_width_is_combined(self):
        assert SWSMConfig(window=32).width == 9

    def test_with_window(self):
        assert SWSMConfig(window=32).with_window(128).window == 128

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            SWSMConfig(window=0)

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigError):
            SWSMConfig(window=8, width=-1)


def test_differential_sweep_matches_figures():
    assert MEMORY_DIFFERENTIALS == (0, 10, 20, 30, 40, 50, 60)
