"""Tests for the experiment drivers and output formatting."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    render_plot,
    render_table,
    run_bypass_ablation,
    run_code_expansion_ablation,
    run_esw_study,
    run_ewr_figure,
    run_issue_split_ablation,
    run_partition_ablation,
    run_speedup_figure,
    run_table1,
)
from repro.experiments.scales import PRESETS, active_preset
from repro.errors import ConfigError


class TestTable1Driver:
    def test_structure(self, tiny_lab):
        result = run_table1(tiny_lab, programs=("trfd", "track"),
                            windows=(8, 32, None))
        assert len(result.rows) == 2
        assert result.windows == (8, 32, None)
        for row in result.rows:
            assert set(row.lhe_by_window) == {8, 32, None}
            assert 0 < row.unlimited_lhe <= 1

    def test_band_comparison(self, tiny_lab):
        result = run_table1(tiny_lab, programs=("track",), windows=(8, None))
        row = result.rows[0]
        assert row.expected_band == "poor"
        assert row.band_matches == (row.measured_band == "poor")


class TestSpeedupDriver:
    def test_four_curves(self, tiny_lab):
        figure = run_speedup_figure(tiny_lab, "trfd", windows=(8, 32))
        assert len(figure.curves) == 4
        assert figure.curve("DM", 0).speedups != figure.curve("DM", 60).speedups

    def test_crossover_none_when_dm_always_wins(self, tiny_lab):
        figure = run_speedup_figure(tiny_lab, "flo52q", windows=(8, 16))
        # At such small windows the DM wins at both differentials.
        assert figure.crossover_window(60) is None

    def test_curve_lookup_unknown(self, tiny_lab):
        figure = run_speedup_figure(tiny_lab, "trfd", windows=(8,))
        with pytest.raises(KeyError):
            figure.curve("DM", 30)


class TestEwrDriver:
    def test_ratios_are_positive_or_nan(self, tiny_lab):
        figure = run_ewr_figure(
            tiny_lab, "trfd", dm_windows=(16, 32), differentials=(0, 60),
        )
        for curve in figure.curves:
            for ratio in curve.ratios:
                assert math.isnan(ratio) or ratio > 0

    def test_ratio_grows_with_differential(self, tiny_lab):
        figure = run_ewr_figure(
            tiny_lab, "flo52q", dm_windows=(16,), differentials=(0, 60),
        )
        low = figure.curve(0).at(16)
        high = figure.curve(60).at(16)
        assert high > low


class TestEswDriver:
    def test_rows_cover_grid(self, tiny_lab):
        rows = run_esw_study(tiny_lab, ("trfd",), window=16,
                             differentials=(0, 60))
        assert len(rows) == 2
        assert {row.memory_differential for row in rows} == {0, 60}
        for row in rows:
            assert row.stats.peak >= 0


class TestAblations:
    def test_issue_split_covers_all_divisions(self, tiny_lab):
        points = run_issue_split_ablation(tiny_lab, "trfd", window=16)
        assert [(p.au_width, p.du_width) for p in points] == [
            (k, 9 - k) for k in range(1, 9)
        ]
        assert all(p.cycles > 0 for p in points)

    def test_partition_strategies_ranked(self, tiny_lab):
        points = {p.strategy: p for p in
                  run_partition_ablation(tiny_lab, "trfd", window=16)}
        # The slice partition must beat the degenerate memory-only one.
        assert points["slice"].cycles < points["memory-only"].cycles

    def test_bypass_improves_reuse_heavy_program(self, tiny_lab):
        points = run_bypass_ablation(
            tiny_lab, "mdg", window=16, entry_counts=(0, 256),
        )
        no_bypass, big_bypass = points
        assert big_bypass.hit_rate > 0
        assert big_bypass.cycles <= no_bypass.cycles

    def test_code_expansion_slows_both_machines(self, tiny_lab):
        points = run_code_expansion_ablation(
            tiny_lab, "trfd", window=16, fractions=(0.0, 0.5),
        )
        base, expanded = points
        assert expanded.dm_cycles >= base.dm_cycles
        assert expanded.swsm_cycles >= base.swsm_cycles


class TestScalePresets:
    def test_presets_exist(self):
        assert {"tiny", "small", "paper"} <= set(PRESETS)

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert active_preset().name == "tiny"

    def test_unknown_preset_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ConfigError):
            active_preset()

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert active_preset().name == "small"


class TestRenderTable:
    def test_alignment_and_headers(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in text and "0.25" in text

    def test_none_renders_as_unlimited(self):
        text = render_table(["w"], [[None]])
        assert "unl" in text

    def test_nan_renders_as_dash(self):
        text = render_table(["x"], [[float("nan")]])
        assert "-" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestRenderPlot:
    def test_markers_and_legend(self):
        text = render_plot([1, 2, 3], {"DM": [1, 2, 3], "SWSM": [3, 2, 1]})
        assert "A = DM" in text
        assert "B = SWSM" in text
        assert "A" in text and "B" in text

    def test_handles_nan_points(self):
        text = render_plot([1, 2], {"s": [1.0, float("nan")]})
        assert "s" in text

    def test_all_nan_series(self):
        text = render_plot([1], {"s": [float("nan")]}, title="empty")
        assert "no finite data" in text

    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            render_plot([1, 2], {"s": [1.0]})

    def test_requires_series(self):
        with pytest.raises(ValueError):
            render_plot([1], {})
