"""Unit tests for the workload models (PERFECT Club substitutes)."""

from __future__ import annotations

import pytest

from repro import KernelError, OpClass, build_kernel, get_kernel, list_kernels
from repro.kernels import (
    PAPER_ORDER,
    KernelSpec,
    SyntheticParams,
    build_synthetic_stream,
    register,
)
from repro.partition import analyze_decoupling, compute_address_slice


class TestRegistry:
    def test_all_seven_paper_programs_registered(self):
        assert set(PAPER_ORDER) <= set(list_kernels())

    def test_paper_order_first(self):
        assert tuple(list_kernels()[:7]) == PAPER_ORDER

    def test_lookup_is_case_insensitive(self):
        assert get_kernel("FLO52Q") is get_kernel("flo52q")

    def test_unknown_kernel(self):
        with pytest.raises(KernelError, match="unknown"):
            get_kernel("spice")

    def test_duplicate_registration_rejected(self):
        spec = KernelSpec(
            name="flo52q", title="x", description="x", band="high",
            build=lambda scale, seed: None,  # type: ignore[arg-type]
        )
        with pytest.raises(KernelError, match="already registered"):
            register(spec)

    def test_reregistering_same_spec_is_idempotent(self):
        spec = get_kernel("flo52q")
        assert register(spec) is spec

    def test_scale_floor(self):
        with pytest.raises(KernelError, match="scale"):
            build_kernel("trfd", 10)

    def test_bands_match_table1_grouping(self):
        expected = {
            "trfd": "high", "adm": "high", "flo52q": "high",
            "dyfesm": "moderate", "qcd": "moderate", "mdg": "moderate",
            "track": "poor",
        }
        for name, band in expected.items():
            assert get_kernel(name).band == band


@pytest.mark.parametrize("name", PAPER_ORDER)
class TestEveryKernel:
    def test_validates(self, name):
        build_kernel(name, 3_000).validate()

    def test_deterministic(self, name):
        first = build_kernel(name, 2_000)
        second = build_kernel(name, 2_000)
        assert len(first) == len(second)
        assert all(a == b for a, b in zip(first, second))

    def test_seed_changes_only_randomised_kernels(self, name):
        base = build_kernel(name, 2_000)
        other = build_kernel(name, 2_000, seed=123)
        assert len(base) == len(other)  # structure is seed-independent

    def test_scale_is_respected(self, name):
        # Kernels repeat a fixed-size structural unit, so small scales
        # quantise; 0.45-1.6x covers every unit granularity.
        for scale in (2_000, 8_000):
            program = build_kernel(name, scale)
            assert 0.45 * scale <= len(program) <= 1.6 * scale

    def test_instruction_mix_is_plausible(self, name):
        stats = build_kernel(name, 4_000).stats
        assert 0.15 <= stats.memory_fraction <= 0.40
        assert 0.25 <= stats.fp_fraction <= 0.65
        assert stats.loads > stats.stores

    def test_meta_records_generator_parameters(self, name):
        program = build_kernel(name, 2_000)
        assert "seed" in program.meta
        assert "model" in program.meta

    def test_machine_balance_near_issue_split(self, name):
        """The AU share of machine instructions should be near 4/9.

        The paper found the 4+5 issue split optimal; the models keep
        their aggregate access share in a band around it.
        """
        program = build_kernel(name, 4_000)
        report = analyze_decoupling(program)
        machine_total = len(program) + program.stats.loads \
            + program.stats.stores - report.self_loads
        au_share = report.au_instructions / machine_total
        assert 0.30 <= au_share <= 0.60


class TestKernelStructure:
    def test_flo52q_has_row_descriptors(self):
        program = build_kernel("flo52q", 3_000)
        address_slice = compute_address_slice(program)
        assert address_slice.self_loads  # descriptor gating exists

    def test_track_has_lod_every_step(self):
        program = build_kernel("track", 3_000)
        report = analyze_decoupling(program)
        # Roughly one feedback per (tracks x steps) group of ~36 instrs.
        assert report.lod_rate > 10

    def test_qcd_has_periodic_feedback(self):
        report = analyze_decoupling(build_kernel("qcd", 4_000))
        assert 0 < report.lod_rate < 10

    def test_high_band_kernels_decouple_well(self):
        for name in ("trfd", "adm", "flo52q"):
            report = analyze_decoupling(build_kernel(name, 4_000))
            assert report.lod_events == 0

    def test_adm_carries_store_to_load_stage_coupling(self):
        program = build_kernel("adm", 4_000)
        assert any(inst.mem_dep is not None for inst in program)

    def test_dyfesm_scatter_creates_memory_dependencies(self):
        program = build_kernel("dyfesm", 4_000)
        dependent = sum(1 for inst in program if inst.mem_dep is not None)
        assert dependent > 10

    def test_mdg_randomisation_is_seeded(self):
        first = build_kernel("mdg", 3_000, seed=7)
        second = build_kernel("mdg", 3_000, seed=7)
        assert all(a == b for a, b in zip(first, second))
        third = build_kernel("mdg", 3_000, seed=8)
        addresses_differ = any(
            a.addr != b.addr for a, b in zip(first, third) if a.is_memory
        )
        assert addresses_differ


class TestSyntheticStream:
    def test_default_structure(self):
        program = build_synthetic_stream(2_000)
        program.validate()
        assert 1_000 <= len(program) <= 3_000

    def test_per_item_accounting(self):
        params = SyntheticParams(loads=2, stores=1, chain_depth=4)
        program = build_synthetic_stream(2_000, params)
        items = program.meta["items"]
        assert len(program) == pytest.approx(items * params.per_item, rel=0.1)

    def test_gating_adds_self_loads(self):
        gated = build_synthetic_stream(
            2_000, SyntheticParams(gate_group=8)
        )
        address_slice = compute_address_slice(gated)
        assert address_slice.self_loads

    def test_feedback_adds_lod(self):
        program = build_synthetic_stream(
            2_000, SyntheticParams(feedback_period=10, chain_depth=3)
        )
        assert analyze_decoupling(program).lod_events > 0

    def test_parameter_validation(self):
        with pytest.raises(KernelError):
            SyntheticParams(loads=0)
        with pytest.raises(KernelError):
            SyntheticParams(chain_depth=-1)
        with pytest.raises(KernelError):
            SyntheticParams(gate_group=-2)
