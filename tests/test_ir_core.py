"""Unit tests for IR types, instructions, and the Program container."""

from __future__ import annotations

import pytest

from repro import IRValidationError, Instruction, OpClass, Opcode, Program, Value
from repro.config import LatencyModel
from repro.ir import OPCODE_CLASS, opcode_latency


class TestOpcodes:
    def test_every_opcode_has_a_class(self):
        for opcode in Opcode:
            assert opcode in OPCODE_CLASS

    def test_memory_classes(self):
        assert OPCODE_CLASS[Opcode.LOAD] is OpClass.LOAD
        assert OPCODE_CLASS[Opcode.STORE] is OpClass.STORE
        assert OpClass.LOAD.is_memory and OpClass.STORE.is_memory
        assert not OpClass.INT.is_memory and not OpClass.FP.is_memory

    def test_int_latency(self):
        assert opcode_latency(Opcode.IADD, LatencyModel()) == 1
        assert opcode_latency(Opcode.CVT_F2I, LatencyModel()) == 1

    def test_fp_latency(self):
        assert opcode_latency(Opcode.FMUL, LatencyModel()) == 3
        assert opcode_latency(Opcode.FDIV, LatencyModel()) == 12
        assert opcode_latency(Opcode.FSQRT, LatencyModel()) == 12

    def test_memory_latency_is_machine_dependent(self):
        with pytest.raises(IRValidationError):
            opcode_latency(Opcode.LOAD, LatencyModel())


class TestValue:
    def test_index(self):
        assert Value(3).index == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Value(-1)

    def test_equality(self):
        assert Value(2) == Value(2)
        assert Value(2) != Value(3)


class TestInstruction:
    def test_all_deps_combines_everything(self):
        inst = Instruction(
            index=5, opcode=Opcode.LOAD, srcs=(1,), addr_src=2, addr=100,
            mem_dep=3,
        )
        assert set(inst.all_deps()) == {1, 2, 3}

    def test_op_class_derived(self):
        assert Instruction(index=0, opcode=Opcode.FADD).op_class is OpClass.FP

    def test_value_property(self):
        assert Instruction(index=7, opcode=Opcode.IADD).value == Value(7)

    def test_str_is_readable(self):
        inst = Instruction(index=1, opcode=Opcode.LOAD, addr_src=0, addr=64)
        text = str(inst)
        assert "load" in text and "@64" in text


def _make(instructions) -> Program:
    return Program("test", instructions)


class TestProgramValidation:
    def test_valid_program(self):
        program = _make([
            Instruction(index=0, opcode=Opcode.IADD),
            Instruction(index=1, opcode=Opcode.LOAD, addr_src=0, addr=8),
            Instruction(index=2, opcode=Opcode.FMUL, srcs=(1,)),
        ])
        program.validate()

    def test_rejects_misnumbered_index(self):
        program = _make([Instruction(index=1, opcode=Opcode.IADD)])
        with pytest.raises(IRValidationError, match="position 0"):
            program.validate()

    def test_rejects_forward_reference(self):
        program = _make([
            Instruction(index=0, opcode=Opcode.FADD, srcs=(1,)),
            Instruction(index=1, opcode=Opcode.FADD),
        ])
        with pytest.raises(IRValidationError, match="earlier"):
            program.validate()

    def test_rejects_self_reference(self):
        program = _make([Instruction(index=0, opcode=Opcode.FADD, srcs=(0,))])
        with pytest.raises(IRValidationError):
            program.validate()

    def test_rejects_memory_without_address(self):
        program = _make([Instruction(index=0, opcode=Opcode.LOAD)])
        with pytest.raises(IRValidationError, match="no address"):
            program.validate()

    def test_rejects_address_on_arithmetic(self):
        program = _make([Instruction(index=0, opcode=Opcode.IADD, addr=4)])
        with pytest.raises(IRValidationError, match="has an address"):
            program.validate()

    def test_rejects_addr_src_on_arithmetic(self):
        program = _make([
            Instruction(index=0, opcode=Opcode.IADD),
            Instruction(index=1, opcode=Opcode.IADD, addr_src=0),
        ])
        with pytest.raises(IRValidationError, match="address dependency"):
            program.validate()

    def test_rejects_mem_dep_on_non_store(self):
        program = _make([
            Instruction(index=0, opcode=Opcode.LOAD, addr=1),
            Instruction(index=1, opcode=Opcode.LOAD, addr=1, mem_dep=0),
        ])
        with pytest.raises(IRValidationError, match="not a store"):
            program.validate()


class TestProgramStats:
    def test_counts(self, daxpy):
        stats = daxpy.stats
        # Per iteration: 1 induction + 2 (addr+load) pairs + fma +
        # (addr+store).
        assert stats.total == len(daxpy)
        assert stats.loads == 32
        assert stats.stores == 16
        assert stats.fp_ops == 16
        assert stats.int_ops == stats.total - 32 - 16 - 16
        assert 0 < stats.memory_fraction < 1

    def test_consumers_inverse_of_deps(self, daxpy):
        consumers = daxpy.consumers
        for inst in daxpy:
            for dep in inst.all_deps():
                assert inst.index in consumers[dep]


class TestTimingBounds:
    def test_serial_time_hand_computed(self):
        # iadd(1) + load(1+md) + fmul(3) + store(1)
        program = _make([
            Instruction(index=0, opcode=Opcode.IADD),
            Instruction(index=1, opcode=Opcode.LOAD, addr_src=0, addr=4),
            Instruction(index=2, opcode=Opcode.FMUL, srcs=(1,)),
            Instruction(index=3, opcode=Opcode.STORE, srcs=(2,), addr_src=0,
                        addr=8),
        ])
        assert program.serial_time(0) == 1 + 1 + 3 + 1
        assert program.serial_time(60) == 1 + 61 + 3 + 1

    def test_critical_path_ignores_parallel_work(self):
        # Two independent loads then a join.
        program = _make([
            Instruction(index=0, opcode=Opcode.LOAD, addr=0),
            Instruction(index=1, opcode=Opcode.LOAD, addr=8),
            Instruction(index=2, opcode=Opcode.FADD, srcs=(0, 1)),
        ])
        assert program.critical_path(60) == 61 + 3
        assert program.serial_time(60) == 61 + 61 + 3

    def test_critical_path_through_memory_dependency(self, rmw_chain):
        # Each iteration adds load(1+md) + fadd(3) + store(1).
        iterations = rmw_chain.stats.stores
        expected = iterations * (61 + 3 + 1) + iterations  # + inductions
        assert rmw_chain.critical_path(60) <= expected
        assert rmw_chain.critical_path(60) >= iterations * (61 + 3 + 1)

    def test_bounds_reject_negative_differential(self, daxpy):
        with pytest.raises(IRValidationError):
            daxpy.serial_time(-1)
        with pytest.raises(IRValidationError):
            daxpy.critical_path(-1)

    def test_critical_path_never_exceeds_serial_time(self, daxpy, feedback):
        for program in (daxpy, feedback):
            for md in (0, 10, 60):
                assert program.critical_path(md) <= program.serial_time(md)
