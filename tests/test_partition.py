"""Unit tests for the access/execute partitioner and SWSM lowering."""

from __future__ import annotations

import pytest

from repro import (
    KernelBuilder,
    OpClass,
    PartitionError,
    Unit,
    analyze_decoupling,
    compute_address_slice,
    lower_swsm,
    partition_dm,
)
from repro.partition import MemKind
from repro.partition.strategies import partition_with_strategy


def kinds(machine_program, unit):
    return [inst.mem_kind for inst in machine_program.stream(unit)]


class TestAddressSlice:
    def test_affine_addressing_goes_to_au(self, daxpy):
        address_slice = compute_address_slice(daxpy)
        # Every integer op in daxpy is induction or address arithmetic.
        int_ops = [i.index for i in daxpy if i.op_class is OpClass.INT]
        assert set(int_ops) == set(address_slice.au_int)
        assert not address_slice.self_loads

    def test_pointer_chase_marks_self_loads(self, pointer_chase):
        address_slice = compute_address_slice(pointer_chase)
        loads = [i.index for i in pointer_chase
                 if i.op_class is OpClass.LOAD]
        # All but the last load feed a later address.
        assert set(address_slice.self_loads) == set(loads[:-1])

    def test_fp_terminates_the_walk(self, feedback):
        address_slice = compute_address_slice(feedback)
        fp_ops = [i.index for i in feedback if i.op_class is OpClass.FP]
        for index in fp_ops:
            assert index not in address_slice.au_int

    def test_data_only_int_stays_on_du(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 4)
        loaded = builder.load(a, 0)
        builder.iadd(loaded)  # integer data computation, not addressing
        address_slice = compute_address_slice(builder.build())
        assert 2 not in address_slice.au_int  # the iadd
        assert not address_slice.self_loads


class TestPartitionDm:
    def test_load_becomes_issue_plus_receive(self, daxpy):
        compiled = partition_dm(daxpy)
        au_kinds = kinds(compiled, Unit.AU)
        du_kinds = kinds(compiled, Unit.DU)
        assert au_kinds.count(MemKind.LOAD_ISSUE) == daxpy.stats.loads
        assert du_kinds.count(MemKind.RECEIVE) == daxpy.stats.loads

    def test_store_splits_across_units(self, daxpy):
        compiled = partition_dm(daxpy)
        assert kinds(compiled, Unit.AU).count(MemKind.STORE_ADDR) == 16
        assert kinds(compiled, Unit.DU).count(MemKind.STORE_DATA) == 16

    def test_receive_pairs_with_its_issue(self, daxpy):
        compiled = partition_dm(daxpy)
        issues = {i.gid: i for i in compiled.stream(Unit.AU)
                  if i.mem_kind is MemKind.LOAD_ISSUE}
        for receive in compiled.stream(Unit.DU):
            if receive.mem_kind is MemKind.RECEIVE:
                pair = compiled.by_gid[receive.srcs[0]]
                assert pair.mem_kind is MemKind.LOAD_ISSUE
                assert pair.addr == receive.addr

    def test_self_load_has_no_receive(self, pointer_chase):
        compiled = partition_dm(pointer_chase)
        au_kinds = kinds(compiled, Unit.AU)
        assert au_kinds.count(MemKind.SELF_LOAD) == 7
        assert au_kinds.count(MemKind.LOAD_ISSUE) == 1  # the final load
        assert kinds(compiled, Unit.DU).count(MemKind.RECEIVE) == 1

    def test_fp_feedback_inserts_du_to_au_copy(self, feedback):
        compiled = partition_dm(feedback)
        du_kinds = kinds(compiled, Unit.DU)
        # One copy per FP value consumed by the AU-resident cvt.
        assert du_kinds.count(MemKind.COPY) == compiled.meta["copies_du_to_au"]
        assert compiled.meta["copies_du_to_au"] > 0

    def test_memory_dependency_maps_to_both_store_halves(self, rmw_chain):
        compiled = partition_dm(rmw_chain)
        issues = [i for i in compiled.stream(Unit.AU)
                  if i.mem_kind is MemKind.LOAD_ISSUE]
        # Every load after the first store waits on STORE_ADDR and
        # STORE_DATA gids.
        dependent = issues[1:]
        for load in dependent:
            dep_kinds = {compiled.by_gid[g].mem_kind for g in load.srcs}
            assert MemKind.STORE_ADDR in dep_kinds
            assert MemKind.STORE_DATA in dep_kinds

    def test_instruction_count_accounting(self, daxpy):
        compiled = partition_dm(daxpy)
        stats = daxpy.stats
        copies = (compiled.meta["copies_au_to_du"]
                  + compiled.meta["copies_du_to_au"])
        expected = stats.total + stats.loads + stats.stores + copies
        # Self-loads do not get a receive.
        expected -= compiled.meta["self_loads"]
        assert compiled.num_instructions == expected

    def test_validates(self, daxpy, pointer_chase, feedback, rmw_chain):
        for program in (daxpy, pointer_chase, feedback, rmw_chain):
            partition_dm(program).validate()

    def test_multi_operand_store_rejected(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 2)
        v1, v2 = builder.fadd(), builder.fadd()
        addr = builder.address(a, 0)
        builder.emit(
            __import__("repro").Opcode.STORE, srcs=(v1, v2),
            addr_src=addr, addr=a.base,
        )
        with pytest.raises(PartitionError, match="data operands"):
            partition_dm(builder.build())


class TestLowerSwsm:
    def test_memory_ops_double(self, daxpy):
        compiled = lower_swsm(daxpy)
        stats = daxpy.stats
        assert compiled.num_instructions == stats.total + stats.memory_ops

    def test_load_becomes_prefetch_plus_access(self, daxpy):
        compiled = lower_swsm(daxpy)
        stream_kinds = kinds(compiled, Unit.SINGLE)
        assert stream_kinds.count(MemKind.PREFETCH_LOAD) == stats_loads(daxpy)
        assert stream_kinds.count(MemKind.ACCESS_LOAD) == stats_loads(daxpy)

    def test_access_follows_its_prefetch_immediately(self, daxpy):
        compiled = lower_swsm(daxpy)
        stream = compiled.stream(Unit.SINGLE)
        for position, inst in enumerate(stream):
            if inst.mem_kind is MemKind.ACCESS_LOAD:
                assert stream[position - 1].mem_kind is MemKind.PREFETCH_LOAD
                assert inst.srcs[0] == stream[position - 1].gid

    def test_store_becomes_prefetch_plus_access_store(self, daxpy):
        compiled = lower_swsm(daxpy)
        stream_kinds = kinds(compiled, Unit.SINGLE)
        assert stream_kinds.count(MemKind.PREFETCH_STORE) == 16
        assert stream_kinds.count(MemKind.ACCESS_STORE) == 16

    def test_memory_dependency_maps_to_access_store(self, rmw_chain):
        compiled = lower_swsm(rmw_chain)
        stream = compiled.stream(Unit.SINGLE)
        prefetches = [i for i in stream
                      if i.mem_kind is MemKind.PREFETCH_LOAD]
        for prefetch in prefetches[1:]:
            dep_kinds = {compiled.by_gid[g].mem_kind for g in prefetch.srcs}
            assert MemKind.ACCESS_STORE in dep_kinds

    def test_validates(self, daxpy, pointer_chase, feedback, rmw_chain):
        for program in (daxpy, pointer_chase, feedback, rmw_chain):
            lower_swsm(program).validate()


def stats_loads(program):
    return program.stats.loads


class TestDecouplingAnalysis:
    def test_daxpy_decouples_perfectly(self, daxpy):
        report = analyze_decoupling(daxpy)
        assert report.lod_events == 0
        assert report.decouples_well
        assert report.self_loads == 0
        assert report.au_instructions + report.du_instructions == len(daxpy)

    def test_feedback_has_lod_events(self, feedback):
        report = analyze_decoupling(feedback)
        assert report.lod_events > 0
        assert not report.decouples_well

    def test_pointer_chase_counts_self_loads(self, pointer_chase):
        assert analyze_decoupling(pointer_chase).self_loads == 7


class TestStrategies:
    def test_memory_only_moves_int_to_du(self, daxpy):
        compiled = partition_with_strategy(daxpy, "memory-only")
        compiled.validate()
        au_kinds = kinds(compiled, Unit.AU)
        assert MemKind.NONE not in au_kinds  # no arithmetic on the AU
        # Address values now cross DU -> AU.
        du_copies = kinds(compiled, Unit.DU).count(MemKind.COPY)
        assert du_copies > 0

    def test_balanced_grows_the_au(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 64)
        iv = None
        for i in range(32):
            iv = builder.induction(iv)
            v = builder.load(a, i, iv)
            # A long integer data chain the balancer may move.
            w = builder.iadd()
            for _ in range(6):
                w = builder.iadd(w)
            builder.fmul(v, v)
        program = builder.build()
        default = partition_with_strategy(program, "slice")
        balanced = partition_with_strategy(program, "balanced")
        assert (len(balanced.stream(Unit.AU))
                >= len(default.stream(Unit.AU)))
        balanced.validate()

    def test_unknown_strategy_rejected(self, daxpy):
        with pytest.raises(PartitionError, match="unknown"):
            partition_with_strategy(daxpy, "quantum")
