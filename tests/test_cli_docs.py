"""Drift test: docs/cli.md must match the live argparse tree.

Adding a subcommand or flag without regenerating the reference fails
here with the regeneration command in the message.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_cli_docs", REPO / "tools" / "gen_cli_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_cli_reference_is_regenerated():
    generator = _load_generator()
    expected = generator.generate()
    on_disk = (REPO / "docs" / "cli.md").read_text()
    assert on_disk == expected, (
        "docs/cli.md is out of date with the argparse tree; regenerate "
        "with: PYTHONPATH=src python tools/gen_cli_docs.py"
    )


def test_every_subcommand_has_a_section():
    from repro.cli import _build_parser

    text = (REPO / "docs" / "cli.md").read_text()
    parser = _build_parser()
    generator = _load_generator()
    for name, _, _ in generator._subparsers(parser):
        assert f"## `repro {name}`" in text
