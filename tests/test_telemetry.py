"""The run-telemetry subsystem: records, rollups, traces and metrics.

Covers the observability PR's guarantees end to end:

* every result carries a :class:`~repro.obs.telemetry.RunTelemetry`
  with a known strategy label and exact counter attribution;
* per-run counters sum to the global ``PERF_COUNTERS`` delta for the
  scalar, forced-event and batched engines alike;
* a ``jobs=4`` pool sweep reports the same aggregated telemetry as the
  ``jobs=1`` run (pool workers ship counters home on their results);
* persisted bytes stay telemetry-free while the store's telemetry
  column round-trips the deterministic slice;
* the span tracer emits schema-valid JSONL with paired spans;
* the service exposes parseable Prometheus metrics and per-job
  telemetry.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Point, Session, Sweep
from repro.machines import engine
from repro.obs import (
    COUNTER_KEYS,
    RunTelemetry,
    validate_trace,
    zero_counters,
)
from repro.obs.metrics import MetricsRegistry, parse_prometheus

SCALE = 1_500

#: Every strategy label an engine run may report.
KNOWN_STRATEGIES = {
    "uniform-table", "stateless-table", "speculative", "chunked",
    "events-table", "events-chunked", "probing", "batch", "objects",
    "serial", "cached",
}


def _sweep(name: str = "telemetry") -> Sweep:
    return Sweep.grid(
        name=name,
        program="flo52q",
        machine=("dm", "swsm"),
        window=(8, 16),
        memory_differential=60,
    )


def _counter_delta(before: dict, after: dict) -> dict:
    return {
        key: after.get(key, 0) - before.get(key, 0)
        for key in after
        if after.get(key, 0) - before.get(key, 0)
    }


class TestRunTelemetry:
    def test_every_result_carries_telemetry(self):
        session = Session(scale=SCALE)
        result = session.evaluate(
            Point(program="flo52q", machine="dm", window=16,
                  memory_differential=60)
        )
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.strategy in KNOWN_STRATEGIES
        assert set(telemetry.counters) == set(COUNTER_KEYS)
        assert telemetry.cache_tier == "fresh"
        assert telemetry.sim_cycles == result.cycles
        assert telemetry.wall_seconds >= 0.0

    def test_serial_machine_reports_serial_strategy(self):
        session = Session(scale=SCALE)
        result = session.evaluate(
            Point(program="flo52q", machine="serial",
                  memory_differential=60)
        )
        assert result.telemetry.strategy == "serial"

    def test_telemetry_excluded_from_equality(self):
        base = engine.SimulationResult(
            name="x", cycles=10, instructions=5, unit_stats={}
        )
        tagged = engine.SimulationResult(
            name="x", cycles=10, instructions=5, unit_stats={},
            telemetry=RunTelemetry(strategy="uniform-table"),
        )
        assert base == tagged

    def test_row_view_is_strategy_plus_nonzero_counters(self):
        telemetry = RunTelemetry(
            strategy="batch",
            counters={**zero_counters(), "batch_lanes": 3},
        )
        assert telemetry.row_view() == {
            "strategy": "batch", "counters": {"batch_lanes": 3},
        }


class TestEngineParity:
    """Scalar, forced-event and batched engines agree on everything."""

    @pytest.fixture(autouse=True)
    def _no_env_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVENT_ENGINE", raising=False)
        monkeypatch.delenv("REPRO_BATCH_ENGINE", raising=False)

    def _run(self, **session_kwargs):
        before = engine.counters_snapshot()
        session = Session(scale=SCALE, **session_kwargs)
        outcome = session.run(_sweep())
        delta = _counter_delta(before, engine.counters_snapshot())
        return session, outcome, delta

    def test_results_and_counter_attribution_per_engine(self):
        scalar, scalar_out, scalar_delta = self._run(batch=False)
        events, events_out, events_delta = self._run(
            batch=False, engine="events"
        )
        batched, batched_out, batched_delta = self._run(batch=True)

        # Bit-identical simulation outputs across all three engines.
        assert [r.cycles for r in scalar_out.results] == \
            [r.cycles for r in events_out.results] == \
            [r.cycles for r in batched_out.results]

        # Strategy labels match the engine that ran.
        assert all(
            s in KNOWN_STRATEGIES and not s.startswith("events")
            for s in scalar.telemetry()["strategies"]
        )
        assert all(
            s.startswith("events") or s == "probing"
            for s in events.telemetry()["strategies"]
        )
        assert "batch" in batched.telemetry()["strategies"]
        assert batched_delta.get("batch_lanes", 0) >= 2
        assert events_delta.get("event_runs", 0) >= 1

        # Per-run telemetry sums to the global delta, per engine.
        for session, delta in (
            (scalar, scalar_delta),
            (events, events_delta),
            (batched, batched_delta),
        ):
            summed = {
                k: v for k, v in session.telemetry()["counters"].items()
                if v
            }
            assert summed == delta


class TestPoolParity:
    """jobs=4 reports the same aggregate telemetry as jobs=1."""

    def _run(self, jobs: int):
        before = engine.counters_snapshot()
        session = Session(scale=SCALE, jobs=jobs)
        outcome = session.run(_sweep("pool"))
        delta = _counter_delta(before, engine.counters_snapshot())
        return session, outcome, delta

    def test_pool_sweep_matches_serial_aggregates(self):
        serial, serial_out, serial_delta = self._run(jobs=1)
        pooled, pooled_out, pooled_delta = self._run(jobs=4)

        assert serial_out.results == pooled_out.results
        assert serial_delta == pooled_delta, (
            "pool workers lost counter increments"
        )
        serial_agg = serial.telemetry()
        pooled_agg = pooled.telemetry()
        for key in ("runs", "counters", "strategies"):
            assert serial_agg[key] == pooled_agg[key]
        assert serial_out.telemetry["counters"] == \
            pooled_out.telemetry["counters"]
        assert serial_out.telemetry["strategies"] == \
            pooled_out.telemetry["strategies"]


class TestPersistence:
    def test_disk_cache_bytes_are_telemetry_free(self, tmp_path):
        point = Point(program="flo52q", machine="dm", window=16,
                      memory_differential=60)
        session = Session(scale=SCALE, cache_dir=tmp_path / "cache")
        fresh = session.evaluate(point)
        assert fresh.telemetry.cache_tier == "fresh"

        rehydrated = Session(
            scale=SCALE, cache_dir=tmp_path / "cache"
        ).evaluate(point)
        assert rehydrated.telemetry is not None
        assert rehydrated.telemetry.cache_tier == "disk"
        assert rehydrated.cycles == fresh.cycles

    def test_store_column_roundtrips_telemetry(self, tmp_path):
        point = Point(program="flo52q", machine="dm", window=16,
                      memory_differential=60)
        session = Session(scale=SCALE)
        session.store(str(tmp_path / "results.sqlite"))
        fresh = session.evaluate(point)
        store = session.store()

        row = store.rows()[0]
        assert row.telemetry is not None
        assert row.telemetry["strategy"] == fresh.telemetry.strategy
        assert row.telemetry["counters"] == {
            k: v for k, v in fresh.telemetry.counters.items() if v
        }

        loaded = store.load(row.key)
        assert loaded.telemetry.cache_tier == "store"
        assert loaded.telemetry.strategy == fresh.telemetry.strategy
        assert loaded == fresh  # telemetry stays out of equality

    def test_store_hit_reports_store_tier(self, tmp_path):
        point = Point(program="flo52q", machine="dm", window=16,
                      memory_differential=60)
        warm = Session(scale=SCALE)
        warm.store(str(tmp_path / "results.sqlite"))
        warm.evaluate(point)

        cold = Session(scale=SCALE)
        cold.store(str(tmp_path / "results.sqlite"))
        result = cold.evaluate(point)
        assert cold.stats["store_hits"] == 1
        assert result.telemetry.cache_tier == "store"


class TestTracing:
    def test_sweep_trace_is_schema_valid(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        session = Session(scale=SCALE, trace=trace)
        session.run(_sweep("traced"))
        assert validate_trace(trace) == []
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        names = {record["name"] for record in records}
        assert {"sweep", "simulate", "compile", "cache.probe"} <= names
        # Monotone timestamps within the file (single process).
        stamps = [record["ts"] for record in records]
        assert stamps == sorted(stamps)

    def test_env_toggle_enables_tracing(self, tmp_path, monkeypatch):
        trace = tmp_path / "env-trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        session = Session(scale=SCALE)
        session.evaluate(
            Point(program="flo52q", machine="dm", window=8,
                  memory_differential=60)
        )
        assert validate_trace(trace) == []

    def test_validator_flags_unbalanced_spans(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps({"ts": 1.0, "pid": 1, "tid": 1, "ph": "B",
                        "name": "simulate", "span": 1}) + "\n"
        )
        assert validate_trace(bad)


class TestMetricsRegistry:
    def test_render_parses_and_counts(self):
        registry = MetricsRegistry()
        registry.observe_request("GET /health", 200, 0.002)
        registry.observe_request("GET /health", 200, 0.004)
        registry.observe_request("POST /v1/jobs", 400, 0.2)
        text = registry.render(
            gauges={"repro_queue_depth": 3},
            job_states={"queued": 1, "done": 2},
            engine_counters={"steady_skips": 7},
        )
        samples = parse_prometheus(text)
        assert samples[
            'repro_http_requests_total{endpoint="GET /health",status="200"}'
        ] == 2.0
        assert samples["repro_queue_depth"] == 3.0
        assert samples['repro_jobs{state="done"}'] == 2.0
        assert samples[
            'repro_engine_counter_total{counter="steady_skips"}'
        ] == 7.0
        assert samples[
            'repro_http_request_seconds_count{endpoint="GET /health"}'
        ] == 2.0

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a metric line at all {")
        with pytest.raises(ValueError):
            parse_prometheus("")


class TestServiceMetrics:
    @pytest.fixture
    def service(self, tmp_path):
        from repro.service import (
            ServiceClient,
            ServiceConfig,
            start_server,
            stop_server,
        )

        config = ServiceConfig(
            scale=SCALE,
            workers=1,
            port=0,
            store_path=str(tmp_path / "results.sqlite"),
        )
        server, scheduler, _ = start_server(config)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
        try:
            yield client
        finally:
            stop_server(server)

    def test_metrics_endpoint_and_job_telemetry(self, service):
        job_id = service.submit_point(
            Point(program="flo52q", machine="dm", window=8,
                  memory_differential=60)
        )
        payload = service.fetch(job_id, timeout=120)

        # Per-job telemetry: the session delta this job caused.
        assert payload["telemetry"]["runs"] >= 1
        assert payload["telemetry"]["strategies"]
        # Per-row telemetry: the deterministic slice only.
        row = payload["rows"][0]
        assert set(row["telemetry"]) == {"strategy", "counters"}
        assert row["telemetry"]["strategy"] in KNOWN_STRATEGIES

        samples = parse_prometheus(service.metrics())
        assert samples['repro_jobs{state="done"}'] >= 1.0
        assert "repro_queue_depth" in samples
        assert "repro_workers" in samples
        assert any(
            key.startswith("repro_engine_counter_total")
            for key in samples
        )
        assert any(
            key.startswith("repro_http_requests_total") for key in samples
        )
