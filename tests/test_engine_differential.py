"""Differential and property-based testing of the event-driven engine.

The optimised engine must produce schedules *identical* to the naive
cycle-by-cycle reference on arbitrary programs, and every schedule must
satisfy the structural invariants of the machine (issue-width bounds,
dependence ordering, window ordering).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import KernelBuilder, Program, Unit, UnitConfig
from repro.machines import simulate, simulate_naive
from repro.memory import FixedLatencyMemory
from repro.partition import MemKind, lower_swsm, partition_dm

MEMORY_KINDS = (MemKind.LOAD_ISSUE, MemKind.SELF_LOAD, MemKind.PREFETCH_LOAD)


def random_program(seed: int, size: int = 60) -> Program:
    """A random but well-formed architectural trace."""
    rng = random.Random(seed)
    builder = KernelBuilder(f"rand{seed}", seed=seed)
    array = builder.array("a", 32)
    values = []
    gate = None
    for _ in range(size):
        choice = rng.random()
        deps = []
        if values and rng.random() < 0.7:
            deps.append(rng.choice(values[-12:]))
        if gate is not None and rng.random() < 0.2:
            deps.append(gate)
        index = rng.randrange(32)
        if choice < 0.25:
            values.append(builder.load(array, index, *deps))
        elif choice < 0.35:
            data = rng.choice(values) if values and rng.random() < 0.8 else None
            builder.store(array, index, data, *deps)
        elif choice < 0.55:
            values.append(builder.iadd(*deps))
        elif choice < 0.9:
            values.append(builder.fmul(*deps) if deps else builder.fadd())
        else:
            if values:
                gate = builder.cvt_f2i(rng.choice(values))
    program = builder.build()
    return program


def dm_configs(window: int) -> dict[Unit, UnitConfig]:
    return {
        Unit.AU: UnitConfig(window=window, width=4, name="AU"),
        Unit.DU: UnitConfig(window=window, width=5, name="DU"),
    }


def swsm_configs(window: int) -> dict[Unit, UnitConfig]:
    return {Unit.SINGLE: UnitConfig(window=window, width=9)}


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    window=st.sampled_from([1, 2, 4, 8, 16]),
    md=st.sampled_from([0, 7, 30]),
)
def test_dm_engine_matches_naive_reference(seed, window, md):
    program = random_program(seed)
    compiled = partition_dm(program)
    configs = dm_configs(window)
    naive_cycles, naive_issue = simulate_naive(
        compiled, configs, FixedLatencyMemory(md)
    )
    result = simulate(
        compiled, configs, FixedLatencyMemory(md), collect_issue_times=True
    )
    assert result.cycles == naive_cycles
    assert result.issue_times == naive_issue


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    window=st.sampled_from([1, 3, 8, 32]),
    md=st.sampled_from([0, 11, 60]),
)
def test_swsm_engine_matches_naive_reference(seed, window, md):
    program = random_program(seed)
    compiled = lower_swsm(program)
    configs = swsm_configs(window)
    naive_cycles, naive_issue = simulate_naive(
        compiled, configs, FixedLatencyMemory(md)
    )
    result = simulate(
        compiled, configs, FixedLatencyMemory(md), collect_issue_times=True
    )
    assert result.cycles == naive_cycles
    assert result.issue_times == naive_issue


def _check_schedule_invariants(compiled, configs, md: int) -> None:
    result = simulate(
        compiled, configs, FixedLatencyMemory(md), collect_issue_times=True
    )
    times = result.issue_times
    assert times is not None
    mem_base = 1

    def avail(gid: int) -> int:
        inst = compiled.by_gid[gid]
        if inst.mem_kind in MEMORY_KINDS:
            return times[gid] + mem_base + md
        if inst.mem_kind is MemKind.PREFETCH_STORE:
            return times[gid] + 1
        return times[gid] + inst.latency

    for unit in compiled.units:
        config = configs[unit]
        stream = compiled.stream(unit)
        # (1) Every instruction issued exactly once; per-cycle issue
        # count bounded by the width.
        per_cycle: dict[int, int] = {}
        for inst in stream:
            per_cycle[times[inst.gid]] = per_cycle.get(times[inst.gid], 0) + 1
        assert all(count <= config.width for count in per_cycle.values())
        # (2) Dependence ordering: no instruction issues before every
        # source value is available.
        for inst in stream:
            for dep in inst.srcs:
                assert times[inst.gid] >= avail(dep), (
                    f"gid={inst.gid} issued at {times[inst.gid]} before "
                    f"dep gid={dep} was available at {avail(dep)}"
                )
        # (3) Window capacity: when an instruction issues, every older
        # instruction still unissued at that moment shares the window
        # with it, so there can be at most window-1 of them.
        stream_times = [times[inst.gid] for inst in stream]
        for position, issued_at in enumerate(stream_times):
            older_unissued = sum(
                1 for other in stream_times[:position] if other > issued_at
            )
            assert older_unissued <= config.window - 1, (
                f"position {position} issued at {issued_at} with "
                f"{older_unissued} older instructions outstanding"
            )

    # (4) Reported cycle count equals the latest completion.
    assert result.cycles == max(
        avail(inst.gid) for stream in compiled.streams.values()
        for inst in stream
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    window=st.sampled_from([2, 5, 16, 64]),
    md=st.sampled_from([0, 17, 60]),
)
def test_dm_schedule_invariants(seed, window, md):
    compiled = partition_dm(random_program(seed, size=80))
    _check_schedule_invariants(compiled, dm_configs(window), md)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    window=st.sampled_from([2, 5, 16, 64]),
    md=st.sampled_from([0, 17, 60]),
)
def test_swsm_schedule_invariants(seed, window, md):
    compiled = lower_swsm(random_program(seed, size=80))
    _check_schedule_invariants(compiled, swsm_configs(window), md)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_programs_are_well_formed(seed):
    program = random_program(seed)
    program.validate()
    partition_dm(program).validate()
    lower_swsm(program).validate()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5_000), md=st.sampled_from([0, 30, 60]))
def test_execution_time_bounded_below_by_issue_throughput(seed, md):
    program = random_program(seed)
    compiled = lower_swsm(program)
    result = simulate(
        compiled, swsm_configs(32), FixedLatencyMemory(md)
    )
    # Cannot beat the issue width.
    assert result.cycles >= compiled.num_instructions / 9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_memory_differential_never_helps(seed):
    """A larger differential cannot speed either machine up."""
    program = random_program(seed)
    dm = partition_dm(program)
    swsm = lower_swsm(program)
    previous_dm = previous_swsm = 0
    for md in (0, 20, 60):
        dm_cycles = simulate(dm, dm_configs(16), FixedLatencyMemory(md)).cycles
        swsm_cycles = simulate(
            swsm, swsm_configs(16), FixedLatencyMemory(md)
        ).cycles
        assert dm_cycles >= previous_dm
        assert swsm_cycles >= previous_swsm
        previous_dm, previous_swsm = dm_cycles, swsm_cycles
