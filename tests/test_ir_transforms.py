"""Unit tests for the code-expansion transform."""

from __future__ import annotations

import pytest

from repro import IRValidationError, OpClass
from repro.ir.transforms import expand_code


class TestExpandCode:
    def test_zero_fraction_is_identity(self, daxpy):
        assert expand_code(daxpy, 0.0) is daxpy

    def test_inserted_count(self, daxpy):
        expanded = expand_code(daxpy, 0.25)
        assert len(expanded) == len(daxpy) + round(len(daxpy) * 0.25)

    def test_result_validates(self, daxpy, feedback, rmw_chain):
        for program in (daxpy, feedback, rmw_chain):
            for fraction in (0.1, 0.5, 1.0):
                expand_code(program, fraction).validate()

    def test_original_dependencies_preserved(self, daxpy):
        expanded = expand_code(daxpy, 0.5)
        originals = [i for i in expanded if i.tag != "expansion"]
        assert len(originals) == len(daxpy)
        # Re-walk: the k-th original must have the same opcode and the
        # same dependence *structure* (mapped through the insertion).
        position_of = {inst.index: k for k, inst in enumerate(originals)}
        for k, (old, new) in enumerate(zip(daxpy, originals)):
            assert old.opcode is new.opcode
            assert old.addr == new.addr
            assert len(old.srcs) == len(new.srcs)
            for old_dep, new_dep in zip(old.srcs, new.srcs):
                assert position_of[new_dep] == old_dep

    def test_overhead_ops_are_integer_class(self, daxpy):
        expanded = expand_code(daxpy, 0.3)
        overhead = [i for i in expanded if i.tag == "expansion"]
        assert overhead and all(i.op_class is OpClass.INT for i in overhead)

    def test_chained_flag_builds_a_chain(self, daxpy):
        expanded = expand_code(daxpy, 0.3, chain=True)
        overhead = [i for i in expanded if i.tag == "expansion"]
        assert all(len(i.srcs) == 1 for i in overhead[1:])

    def test_unchained_ops_are_independent(self, daxpy):
        expanded = expand_code(daxpy, 0.3, chain=False)
        overhead = [i for i in expanded if i.tag == "expansion"]
        assert all(not i.srcs for i in overhead)

    def test_name_and_meta_marked(self, daxpy):
        expanded = expand_code(daxpy, 0.25)
        assert expanded.name.endswith("+exp25")
        assert expanded.meta["expansion_fraction"] == 0.25

    def test_rejects_out_of_range_fraction(self, daxpy):
        with pytest.raises(IRValidationError):
            expand_code(daxpy, -0.1)
        with pytest.raises(IRValidationError):
            expand_code(daxpy, 4.5)

    def test_tiny_fraction_rounds_to_identity(self, daxpy):
        assert expand_code(daxpy, 1e-9) is daxpy
