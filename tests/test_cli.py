"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "trfd" in out and "track" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "flo52q" in out
        assert "SWSM" in out and "DM" in out

    def test_ewr_custom_program(self, capsys):
        assert main(["ewr", "--program", "track"]) == 0
        assert "track" in capsys.readouterr().out

    def test_esw(self, capsys):
        assert main(["esw"]) == 0
        assert "Effective single window" in capsys.readouterr().out

    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for name in ("trfd", "adm", "flo52q", "dyfesm", "qcd", "mdg", "track"):
            assert name in out

    @pytest.mark.parametrize(
        "study", ["issue-split", "partition", "bypass", "expansion"],
    )
    def test_ablations(self, capsys, study):
        assert main(["ablation", "--study", study, "--program", "trfd"]) == 0
        assert capsys.readouterr().out.strip()

    def test_explicit_scale_flag(self, capsys):
        assert main(["--scale", "tiny", "table1"]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["warp-drive"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["--scale", "galactic", "table1"])
