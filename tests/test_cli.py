"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "tiny")


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "trfd" in out and "track" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "flo52q" in out
        assert "SWSM" in out and "DM" in out

    def test_ewr_custom_program(self, capsys):
        assert main(["ewr", "--program", "track"]) == 0
        assert "track" in capsys.readouterr().out

    def test_esw(self, capsys):
        assert main(["esw"]) == 0
        assert "Effective single window" in capsys.readouterr().out

    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for name in ("trfd", "adm", "flo52q", "dyfesm", "qcd", "mdg", "track"):
            assert name in out

    @pytest.mark.parametrize(
        "study",
        ["issue-split", "partition", "bypass", "expansion", "hierarchy"],
    )
    def test_ablations(self, capsys, study):
        assert main(["ablation", "--study", study, "--program", "trfd"]) == 0
        assert capsys.readouterr().out.strip()

    def test_hierarchy_ablation_reports_every_model(self, capsys):
        assert main(["ablation", "--study", "hierarchy",
                     "--program", "trfd"]) == 0
        out = capsys.readouterr().out
        for label in ("fixed", "bypass", "cache", "hierarchy", "banked",
                      "prefetch"):
            assert label in out

    def test_run_with_new_memory_kinds(self, capsys):
        for kind in ("banked", "prefetch", "hierarchy"):
            assert main(["run", "--program", "trfd", "--machine", "dm",
                         "--memory", kind]) == 0
            assert "cycles" in capsys.readouterr().out

    def test_explicit_scale_flag(self, capsys):
        assert main(["--scale", "tiny", "table1"]) == 0
        assert "tiny" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["warp-drive"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["--scale", "galactic", "table1"])


class TestGeneratedWorkloadCommands:
    def test_generate_one_family(self, capsys):
        assert main(["generate", "--family", "chase", "--seed", "3",
                     "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "gen:chase:3" in out and "gen:chase:4" in out
        assert "poor" in out

    def test_generate_all_families(self, capsys):
        assert main(["generate"]) == 0
        out = capsys.readouterr().out
        for family in ("streaming", "strided", "gather", "chase",
                       "stencil", "reduction"):
            assert f"gen:{family}:0" in out

    def test_corpus_write_then_verify(self, capsys, tmp_path):
        manifest = tmp_path / "c.toml"
        assert main(["corpus", "--size", "5", "--seed", "1",
                     "--out", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "5 kernels" in out and str(manifest) in out
        assert main(["corpus", "--verify", str(manifest)]) == 0
        assert "bit-identically" in capsys.readouterr().out

    def test_corpus_verify_reports_tampering(self, capsys, tmp_path):
        manifest = tmp_path / "c.toml"
        assert main(["corpus", "--size", "3", "--out",
                     str(manifest)]) == 0
        capsys.readouterr()
        text = manifest.read_text()
        first_digest = next(
            line for line in text.splitlines()
            if line.startswith("digest")
        )
        manifest.write_text(
            text.replace(first_digest, 'digest = "' + "0" * 64 + '"')
        )
        assert main(["corpus", "--verify", str(manifest)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_corpus_default_path_never_silently_overwritten(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["corpus", "--size", "3"]) == 0
        capsys.readouterr()
        # Same pins: regenerating in place is allowed.
        assert main(["corpus", "--size", "3"]) == 0
        capsys.readouterr()
        # Different pins under the same default path: refused.
        assert main(["corpus", "--size", "3", "--seed", "1",
                     "--name", "default-3"]) == 1
        assert "refusing to overwrite" in capsys.readouterr().out
        # An incompatible manifest (e.g. an old grammar) is exactly
        # what regeneration replaces — never locked out.
        manifest = Path("corpus/default-3.toml")
        manifest.write_text(
            manifest.read_text().replace("grammar = 1", "grammar = 99")
        )
        assert main(["corpus", "--size", "3"]) == 0
        assert "manifest written" in capsys.readouterr().out

    def test_generalization_study_from_manifest(self, capsys, tmp_path):
        manifest = tmp_path / "c.toml"
        assert main(["corpus", "--size", "6", "--out",
                     str(manifest)]) == 0
        capsys.readouterr()
        assert main(["ablation", "--study", "generalization",
                     "--corpus", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "Generalization study" in out
        assert "crossover structure holds" in out
        for family in ("streaming", "chase", "reduction"):
            assert family in out

    def test_generalization_study_generated_in_memory(self, capsys):
        assert main(["ablation", "--study", "generalization",
                     "--size", "4", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 kernels" in out

    def test_run_accepts_generated_names(self, capsys):
        assert main(["run", "--program", "gen:streaming:1"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_malformed_generated_name_clean_error(self, capsys):
        assert main(["run", "--program", "gen:spice:1"]) == 2
        assert "family" in capsys.readouterr().err


class TestReportCommands:
    def test_report_builds_a_site_and_a_store(self, capsys, tmp_path):
        out = tmp_path / "site"
        store = tmp_path / "results.sqlite"
        assert main([
            "report", "--out", str(out), "--store", str(store),
            "--corpus-size", "4",
        ]) == 0
        printed = capsys.readouterr().out
        assert "artefacts" in printed and str(out) in printed
        assert "results in" in printed
        assert (out / "index.md").exists()
        assert (out / "table1.md").exists()
        assert (out / "manifest.json").exists()
        assert store.exists()
        # The store now answers queries.
        assert main([
            "results", "--store", str(store), "--program", "flo52q",
            "--limit", "3",
        ]) == 0
        listed = capsys.readouterr().out
        assert "flo52q" in listed and "stored results" in listed

    def test_report_scale_flag_after_subcommand(self, capsys, tmp_path):
        out = tmp_path / "site"
        assert main([
            "report", "--scale", "tiny", "--out", str(out),
            "--store", "none", "--corpus-size", "4",
        ]) == 0
        assert "tiny" in (out / "index.md").read_text()

    def test_report_without_store(self, capsys, tmp_path):
        out = tmp_path / "site"
        assert main([
            "report", "--out", str(out), "--store", "none",
            "--corpus-size", "4",
        ]) == 0
        printed = capsys.readouterr().out
        assert "store:" not in printed

    def test_results_on_missing_store(self, capsys, tmp_path):
        assert main([
            "results", "--store", str(tmp_path / "absent.sqlite"),
        ]) == 0
        assert "no results yet" in capsys.readouterr().out

    def test_results_empty_filter_reports_no_results(
        self, capsys, tmp_path
    ):
        # An existing store with zero matching rows degrades the same
        # way as a missing one.
        from repro.report import ResultStore

        store = tmp_path / "results.sqlite"
        ResultStore(store).close()
        assert main([
            "results", "--store", str(store), "--program", "nonesuch",
        ]) == 0
        assert "no results yet" in capsys.readouterr().out


class TestSweepCommand:
    def test_preset(self, capsys):
        assert main(["sweep", "--preset", "bypass", "--program", "trfd"]) == 0
        out = capsys.readouterr().out
        assert "bypass:trfd" in out
        assert "bypass(256)" in out

    def test_spec_file(self, capsys, tmp_path):
        spec = tmp_path / "study.toml"
        spec.write_text(
            'name = "cli-study"\n'
            "[base]\n"
            'program = "trfd"\n'
            "window = 16\n"
            "[axes]\n"
            'machine = ["dm", "swsm"]\n'
            "memory_differential = [0, 60]\n"
        )
        assert main(["sweep", "--spec", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "cli-study" in out and "4 points" in out

    def test_disk_cache_reused_between_invocations(self, capsys, tmp_path):
        argv = ["--cache-dir", str(tmp_path), "sweep", "--preset",
                "issue-split", "--program", "trfd"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "8 simulated, 0 disk hits" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 simulated, 8 disk hits" in second

    def test_preset_and_spec_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--preset", "esw", "--spec", "x.toml"])


class TestRunCommand:
    def test_point(self, capsys):
        assert main(["run", "--program", "trfd", "--machine", "swsm",
                     "--window", "16", "--md", "60"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "speedup over serial" in out

    def test_unlimited_window(self, capsys):
        assert main(["run", "--program", "trfd", "--window",
                     "unlimited"]) == 0
        assert "window=unlimited" in capsys.readouterr().out

    def test_zero_width_rejected_not_defaulted(self, capsys):
        assert main(["run", "--program", "trfd", "--au-width", "0"]) == 2
        assert "au_width" in capsys.readouterr().err

    def test_unknown_machine_clean_error(self, capsys):
        assert main(["run", "--program", "trfd", "--machine", "warp"]) == 2
        assert "unknown machine" in capsys.readouterr().err


class TestInterrupt:
    def test_keyboard_interrupt_exits_cleanly(self, capsys, monkeypatch):
        import repro.cli as cli

        def interrupted(session):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "emit_kernels", interrupted)
        assert main(["kernels"]) == 130
        captured = capsys.readouterr()
        assert "repro: interrupted" in captured.err
        assert "Traceback" not in captured.err
