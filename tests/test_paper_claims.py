"""Integration tests: the paper's qualitative claims must reproduce.

These run at a reduced scale (8k instructions per kernel), so the
assertions check *shapes and orderings* — who wins, in which regime —
with margins, not absolute numbers. Run the benchmarks harness for
the full-scale record.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    run_esw_study,
    run_ewr_figure,
    run_speedup_figure,
    run_table1,
)
from repro.kernels import PAPER_ORDER, get_kernel

HIGH_BAND = ("trfd", "adm", "flo52q")
MODERATE_BAND = ("dyfesm", "qcd", "mdg")


class TestTable1Bands:
    """Table 1: unlimited-window LHE bands at md=60."""

    def test_high_band(self, claims_lab):
        for name in HIGH_BAND:
            assert claims_lab.dm_lhe(name, None, 60) >= 0.80, name

    def test_moderate_band(self, claims_lab):
        for name in MODERATE_BAND:
            lhe = claims_lab.dm_lhe(name, None, 60)
            assert 0.40 <= lhe <= 0.85, (name, lhe)

    def test_poor_band(self, claims_lab):
        assert claims_lab.dm_lhe("track", None, 60) <= 0.45

    def test_band_ordering_matches_paper(self, claims_lab):
        """Every high-band program beats every moderate one, etc."""
        worst_high = min(claims_lab.dm_lhe(n, None, 60) for n in HIGH_BAND)
        best_moderate = max(
            claims_lab.dm_lhe(n, None, 60) for n in MODERATE_BAND
        )
        worst_moderate = min(
            claims_lab.dm_lhe(n, None, 60) for n in MODERATE_BAND
        )
        track = claims_lab.dm_lhe("track", None, 60)
        assert worst_high > best_moderate > worst_moderate > track


class TestLheWindowShape:
    """Paper §5: LHE falls as small windows grow, then recovers."""

    @pytest.mark.parametrize("name", ["trfd", "adm", "flo52q", "mdg"])
    def test_dip_then_recovery(self, claims_lab, name):
        small = claims_lab.dm_lhe(name, 8, 60)
        mid = claims_lab.dm_lhe(name, 48, 60)
        large = claims_lab.dm_lhe(name, 256, 60)
        assert small > mid, f"{name}: no initial reduction"
        assert large > mid, f"{name}: no recovery"

    def test_large_windows_do_not_reach_unlimited(self, claims_lab):
        """Even 128-entry windows stay below the unlimited LHE for most
        programs (paper: "even with large window sizes we do not
        approach the LHE of a DM with unlimited resources")."""
        behind = 0
        for name in PAPER_ORDER:
            if (claims_lab.dm_lhe(name, 128, 60)
                    < claims_lab.dm_lhe(name, None, 60) - 1e-9):
                behind += 1
        # The descriptor-gated programs (the high band) show this most
        # strongly; braid-bound programs converge once the chain floor
        # dominates.
        assert behind >= 3

    def test_track_never_recovers(self, claims_lab):
        """TRACK is the odd one out: its LHE stays on the floor."""
        assert claims_lab.dm_lhe("track", 8, 60) > claims_lab.dm_lhe(
            "track", 256, 60
        )


class TestSpeedupFigures:
    """Figures 4-6: DM vs SWSM speedup curves."""

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_md0_small_windows_favour_dm(self, claims_lab, name):
        """Two windows beat one when windows are the bottleneck."""
        assert (claims_lab.dm_speedup(name, 8, 0)
                > claims_lab.swsm_speedup(name, 8, 0))

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_md0_cutoff_exists(self, claims_lab, name):
        """The SWSM's full issue width eventually overtakes at md=0."""
        overtaken = any(
            claims_lab.swsm_speedup(name, window, 0)
            >= claims_lab.dm_speedup(name, window, 0)
            for window in (32, 48, 64, 100, 128)
        )
        assert overtaken, f"{name}: SWSM never overtakes at md=0"

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_md60_dm_wins_through_figure_range(self, claims_lab, name):
        """At md=60 the DM wins at every plotted window size.

        (TRACK ties within a whisker at the largest windows; the paper
        itself reports 'little difference' there.)
        """
        tolerance = 1.02 if name == "track" else 1.0
        for window in (8, 16, 32, 64, 96):
            dm = claims_lab.dm_speedup(name, window, 60)
            swsm = claims_lab.swsm_speedup(name, window, 60)
            assert swsm <= dm * tolerance, (name, window, dm, swsm)

    def test_gap_largest_for_parallel_program(self, claims_lab):
        """FLO52Q shows a large md=60 gap; TRACK shows a small one."""
        def gap(name: str) -> float:
            return (claims_lab.dm_speedup(name, 64, 60)
                    / claims_lab.swsm_speedup(name, 64, 60))

        assert gap("flo52q") > gap("track")
        assert gap("flo52q") > 1.5
        assert gap("track") < 1.35

    def test_diminishing_returns_with_window(self, claims_lab):
        """Doubling the window beyond ~16 does not double the speedup."""
        for name in ("trfd", "flo52q"):
            at_32 = claims_lab.dm_speedup(name, 32, 0)
            at_64 = claims_lab.dm_speedup(name, 64, 0)
            assert at_64 < 2 * at_32

    def test_speedups_grow_with_differential(self, claims_lab):
        """The serial reference degrades faster than the machines."""
        for name in ("flo52q", "mdg"):
            assert (claims_lab.dm_speedup(name, 64, 60)
                    > claims_lab.dm_speedup(name, 64, 0))


class TestEwrFigures:
    """Figures 7-9: equivalent window ratio behaviour."""

    def test_ratio_grows_with_differential(self, claims_lab):
        figure = run_ewr_figure(
            claims_lab, "flo52q", dm_windows=(32,),
            differentials=(0, 30, 60),
        )
        ratios = [figure.curve(md).at(32) for md in (0, 30, 60)]
        assert ratios[0] < ratios[1] <= ratios[2] * 1.05

    @pytest.mark.parametrize("name", ["flo52q", "mdg", "track"])
    def test_ratio_falls_with_dm_window(self, claims_lab, name):
        figure = run_ewr_figure(
            claims_lab, name, dm_windows=(16, 96), differentials=(60,),
        )
        curve = figure.curve(60)
        assert curve.at(96) < curve.at(16)

    def test_swsm_needs_several_times_the_window(self, claims_lab):
        """Paper: roughly 2-4x at a realistic window and md=60."""
        figure = run_ewr_figure(
            claims_lab, "flo52q", dm_windows=(64,), differentials=(60,),
        )
        ratio = figure.curve(60).at(64)
        assert 1.8 <= ratio <= 5.0

    def test_track_ratio_is_smallest(self, claims_lab):
        ratios = {}
        for name in ("flo52q", "track"):
            figure = run_ewr_figure(
                claims_lab, name, dm_windows=(32,), differentials=(60,),
            )
            ratios[name] = figure.curve(60).at(32)
        assert ratios["track"] < ratios["flo52q"]


class TestEsw:
    """Paper §3: the effective single window exceeds the physical ones."""

    def test_amplification_above_one_at_md60(self, claims_lab):
        rows = run_esw_study(
            claims_lab, ("flo52q",), window=16, differentials=(60,),
        )
        assert rows[0].stats.amplification > 1.0

    def test_slippage_grows_with_differential(self):
        """When the DU is *data*-bound, slippage tracks the latency.

        (At small windows an ILP-bound DU lags the AU for scheduling
        reasons at any differential, so this uses a shallow-chain
        stream where the DU genuinely waits on the decoupled memory.)
        """
        from repro.experiments import Lab
        from repro.kernels import SyntheticParams, build_synthetic_stream

        lab = Lab(scale=4_000)
        lab.register_program(build_synthetic_stream(
            4_000, SyntheticParams(loads=2, stores=1, chain_depth=2),
            name="stream",
        ))
        rows = run_esw_study(lab, ("stream",), window=16,
                             differentials=(0, 60))
        by_md = {row.memory_differential: row.stats.mean for row in rows}
        assert by_md[60] > by_md[0]


class TestWholeTable(object):
    def test_table1_reproduces_all_bands(self, claims_lab):
        result = run_table1(claims_lab)
        assert result.bands_correct == len(result.rows)

    def test_every_kernel_band_is_declared(self):
        for name in PAPER_ORDER:
            assert get_kernel(name).band in {"high", "moderate", "poor"}
