"""Parity suite for the batched sweep engine (:mod:`repro.machines.batch`).

The batched engine stacks N sweep lanes — same lowered program,
different (window, memory) pairs — into one struct-of-arrays stepping
loop. Its contract is *bit-exactness*: every lane must produce the
SimulationResult the scalar engine would, and Session-level batching
must leave disk-cache keys and payloads untouched. The suite checks:

* lane-for-lane parity against ``simulate`` on every declarative
  memory kind and both machine models (stateful kinds exercise the
  per-lane fallback path);
* the same parity under every engine toggle
  (``REPRO_PERIOD_SKIP`` × ``REPRO_EVENT_ENGINE``);
* Session runs with ``batch=True`` vs ``batch=False``: identical
  results, identical cache file names, byte-identical payloads,
  serial and ``jobs=4``;
* the ``REPRO_BATCH_ENGINE`` off/force modes, the batch perf
  counters, the on-disk lowering cache, and the threaded warm path;
* a Hypothesis property over generated ``gen:<family>:<seed>``
  kernels.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro import (  # noqa: E402
    DecoupledMachine,
    SuperscalarMachine,
    Unit,
    UnitConfig,
)
from repro.api import MemorySpec, Point, Session, Sweep  # noqa: E402
from repro.experiments.scales import PRESETS  # noqa: E402
from repro.kernels import build_kernel  # noqa: E402
from repro.machines import engine, simulate  # noqa: E402
from repro.machines.batch import (  # noqa: E402
    BatchLane,
    simulate_batch,
    vector_eligible,
)
from repro.memory import (  # noqa: E402
    CAP_STATELESS,
    FixedLatencyMemory,
    MemorySystem,
)
from repro.workloads.grammar import FAMILIES  # noqa: E402

TINY = PRESETS["tiny"].scale

MEMORY_SPECS = {
    "fixed": MemorySpec(kind="fixed"),
    "bypass": MemorySpec(kind="bypass", entries=16, line_bytes=32),
    "cache": MemorySpec(kind="cache"),
    "hierarchy": MemorySpec(
        kind="hierarchy", levels=((4096, 32, 2, 1), (65536, 32, 4, 6))
    ),
    "banked": MemorySpec(kind="banked", banks=4, bank_busy=3),
    "prefetch": MemorySpec(kind="prefetch", entries=8, streams=2),
}

#: Kinds whose models answer queries without mutating state; these
#: must take the vectorized path (checked via the perf counters).
STATELESS_KINDS = ("fixed",)


def dm_configs(window: int) -> dict[Unit, UnitConfig]:
    return {
        Unit.AU: UnitConfig(window=window, width=4, name="AU"),
        Unit.DU: UnitConfig(window=window, width=5, name="DU"),
    }


def swsm_configs(window: int) -> dict[Unit, UnitConfig]:
    return {Unit.SINGLE: UnitConfig(window=window, width=9)}


_MAKE_CONFIGS = {"dm": dm_configs, "swsm": swsm_configs}
_COMPILED_CACHE: dict[tuple[str, str, int], object] = {}


def compiled_for(name: str, machine: str, scale: int = TINY):
    """Compile once per (kernel, machine); the suite reuses programs."""
    key = (name, machine, scale)
    if key not in _COMPILED_CACHE:
        program = build_kernel(name, scale)
        cls = DecoupledMachine if machine == "dm" else SuperscalarMachine
        _COMPILED_CACHE[key] = cls.compile(program)
    return _COMPILED_CACHE[key]


class AddressHashMemory(MemorySystem):
    """A stateless model the vector loop must query identically."""

    def __init__(self, base: int = 40) -> None:
        self.base = base
        self.queries = 0

    def extra_latency(self, addr: int, now: int) -> int:
        self.queries += 1
        return self.base + (addr >> 3) % 7

    def latencies(self, addrs, now):
        self.queries += len(addrs)
        return [self.base + (addr >> 3) % 7 for addr in addrs]

    def capability(self) -> str:
        return CAP_STATELESS

    def reset(self) -> None:
        pass


def reset_counters() -> dict[str, int]:
    before = dict(engine.PERF_COUNTERS)
    for key in engine.PERF_COUNTERS:
        engine.PERF_COUNTERS[key] = 0
    return before


def assert_lane_parity(compiled, lanes, reference_memories) -> str:
    """Each batched lane equals a fresh scalar run of the same lane.

    Returns the ``LAST_STRATEGY`` recorded for the batched call (the
    scalar reference runs below overwrite the module global).
    """
    results = simulate_batch(compiled, lanes, collect_issue_times=True)
    strategy = engine.LAST_STRATEGY
    counters = dict(engine.PERF_COUNTERS)
    assert len(results) == len(lanes)
    for lane, memory, got in zip(lanes, reference_memories, results):
        want = simulate(
            compiled,
            lane.unit_configs,
            memory,
            collect_issue_times=True,
        )
        assert got == want
    engine.PERF_COUNTERS.update(counters)
    return strategy


class TestLaneParity:
    """simulate_batch vs simulate, every memory kind, both machines."""

    @pytest.mark.parametrize("machine", ("dm", "swsm"))
    @pytest.mark.parametrize("kind", sorted(MEMORY_SPECS))
    def test_memory_kind(self, machine, kind):
        spec = MEMORY_SPECS[kind]
        compiled = compiled_for("flo52q", machine)
        make = _MAKE_CONFIGS[machine]
        grid = [(8, 60), (32, 0), (32, 60), (64, 60)]
        lanes = [
            BatchLane(unit_configs=make(window), memory=spec.build(md))
            for window, md in grid
        ]
        refs = [spec.build(md) for _, md in grid]
        reset_counters()
        strategy = assert_lane_parity(compiled, lanes, refs)
        if kind in STATELESS_KINDS:
            assert engine.PERF_COUNTERS["batch_runs"] >= 1
            # Aperiodic lanes may be evicted to the scalar fallback;
            # every lane is accounted for either way.
            vectorized = engine.PERF_COUNTERS["batch_lanes"]
            fallback = engine.PERF_COUNTERS["batch_fallback_lanes"]
            assert vectorized + fallback == len(grid)
            assert vectorized >= 2
            assert strategy == "batch"

    @pytest.mark.parametrize("machine", ("dm", "swsm"))
    def test_stateful_kinds_fall_back_per_lane(self, machine):
        """Stateful memory lanes route through the scalar engine."""
        compiled = compiled_for("trfd", machine)
        make = _MAKE_CONFIGS[machine]
        spec = MEMORY_SPECS["cache"]
        lanes = [
            BatchLane(unit_configs=make(w), memory=spec.build(60))
            for w in (8, 32)
        ]
        reset_counters()
        results = simulate_batch(compiled, lanes)
        assert engine.PERF_COUNTERS["batch_fallback_lanes"] == 2
        for lane, got in zip(lanes, results):
            assert got.cycles == simulate(
                compiled, lane.unit_configs, spec.build(60)
            ).cycles

    @pytest.mark.parametrize("machine", ("dm", "swsm"))
    def test_custom_stateless_model_queried_identically(self, machine):
        """CAP_STATELESS models vectorize; query counts stay bit-exact."""
        compiled = compiled_for("mdg", machine)
        make = _MAKE_CONFIGS[machine]
        mems = [AddressHashMemory() for _ in range(3)]
        lanes = [
            BatchLane(unit_configs=make(w), memory=m)
            for w, m in zip((4, 16, 128), mems)
        ]
        refs = [AddressHashMemory() for _ in range(3)]
        reset_counters()
        assert_lane_parity(compiled, lanes, refs)
        assert engine.PERF_COUNTERS["batch_fallback_lanes"] == 0
        for lane_mem, ref_mem in zip(mems, refs):
            assert lane_mem.queries == ref_mem.queries

    @pytest.mark.parametrize("period_skip", ("1", "0"))
    @pytest.mark.parametrize("event_engine", ("0", "1"))
    def test_parity_under_engine_toggles(
        self, monkeypatch, period_skip, event_engine
    ):
        """The toggles change strategy, never the schedule."""
        monkeypatch.setenv("REPRO_PERIOD_SKIP", period_skip)
        monkeypatch.setenv("REPRO_EVENT_ENGINE", event_engine)
        compiled = compiled_for("flo52q", "dm")
        grid = [(8, 60), (64, 0), (64, 60)]
        lanes = [
            BatchLane(
                unit_configs=dm_configs(w), memory=FixedLatencyMemory(md)
            )
            for w, md in grid
        ]
        refs = [FixedLatencyMemory(md) for _, md in grid]
        assert_lane_parity(compiled, lanes, refs)

    def test_mixed_lanes_split_vector_and_fallback(self):
        compiled = compiled_for("trfd", "dm")
        lanes = [
            BatchLane(
                unit_configs=dm_configs(16), memory=FixedLatencyMemory(60)
            ),
            BatchLane(
                unit_configs=dm_configs(16),
                memory=MEMORY_SPECS["banked"].build(60),
            ),
            BatchLane(
                unit_configs=dm_configs(32), memory=FixedLatencyMemory(70)
            ),
        ]
        refs = [
            FixedLatencyMemory(60),
            MEMORY_SPECS["banked"].build(60),
            FixedLatencyMemory(70),
        ]
        reset_counters()
        assert_lane_parity(compiled, lanes, refs)
        assert engine.PERF_COUNTERS["batch_lanes"] == 2
        assert engine.PERF_COUNTERS["batch_fallback_lanes"] == 1

    def test_vector_eligible_predicate(self):
        assert vector_eligible(FixedLatencyMemory(60), 32)
        assert vector_eligible(AddressHashMemory(), 64)
        # Unlimited windows resolve to program length >> the cap.
        assert not vector_eligible(FixedLatencyMemory(60), None)
        assert not vector_eligible(FixedLatencyMemory(60), 4096)
        assert not vector_eligible(MEMORY_SPECS["cache"].build(60), 32)


def sweep_for(machines=("dm", "swsm")) -> Sweep:
    return Sweep.grid(
        program="trfd",
        machine=machines,
        window=(8, 16, 32),
        memory_differential=(0, 60),
    )


def run_session(tmp_path, label, *, batch, jobs=1, sweep=None, scale=TINY):
    cache = tmp_path / label
    session = Session(scale=scale, cache_dir=cache, batch=batch)
    outcome = session.run(sweep or sweep_for(), jobs=jobs)
    return session, outcome, cache


def cache_snapshot(cache_dir) -> dict[str, bytes]:
    return {
        path.name: path.read_bytes()
        for path in sorted(cache_dir.glob("*.pkl"))
    }


class TestSessionParity:
    """Batched sweeps: same results, same cache keys, same bytes."""

    def test_serial_batched_matches_per_point(self, tmp_path):
        batched, got, bdir = run_session(tmp_path, "b", batch=True)
        scalar, want, sdir = run_session(tmp_path, "s", batch=False)
        assert got.results == want.results
        assert cache_snapshot(bdir) == cache_snapshot(sdir)
        assert batched.stats["batch_groups"] > 0
        assert batched.stats["batch_points"] > 0
        assert scalar.stats["batch_groups"] == 0
        assert batched.stats["evaluated"] == scalar.stats["evaluated"]
        assert batched.stats["disk_misses"] == scalar.stats["disk_misses"]

    def test_parallel_batched_matches_per_point(self, tmp_path):
        _, got, bdir = run_session(tmp_path, "b4", batch=True, jobs=4)
        _, want, sdir = run_session(tmp_path, "s1", batch=False)
        assert got.results == want.results
        assert cache_snapshot(bdir) == cache_snapshot(sdir)

    def test_stateful_memory_sweep_unaffected(self, tmp_path):
        sweep = Sweep.grid(
            program="trfd",
            machine=("dm",),
            window=(8, 16),
            memory_differential=(0, 60),
            memory=(MEMORY_SPECS["cache"],),
        )
        batched, got, _ = run_session(
            tmp_path, "b", batch=True, sweep=sweep
        )
        _, want, _ = run_session(tmp_path, "s", batch=False, sweep=sweep)
        assert got.results == want.results
        # Stateful lanes never enter a batch group.
        assert batched.stats["batch_groups"] == 0

    def test_env_off_disables_batching(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_ENGINE", "off")
        session, _, _ = run_session(tmp_path, "env", batch=None)
        assert session.stats["batch_groups"] == 0

    def test_env_force_batches_singletons(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_ENGINE", "force")
        sweep = Sweep.grid(
            program="trfd", machine=("dm",), window=(16,),
            memory_differential=(60,),
        )
        session, outcome, _ = run_session(
            tmp_path, "force", batch=None, sweep=sweep
        )
        assert session.stats["batch_groups"] == 1
        assert session.stats["batch_points"] == 1
        want = Session(scale=TINY).run(sweep)
        assert outcome.cycles() == want.cycles()

    def test_session_knob_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_ENGINE", "force")
        session, _, _ = run_session(tmp_path, "knob", batch=False)
        assert session.stats["batch_groups"] == 0


class TestLoweringCache:
    """The digest-keyed on-disk lowering cache under ``lowered/``."""

    def test_populated_and_reused(self, tmp_path):
        first, got, cache = run_session(tmp_path, "lc", batch=True)
        entries = sorted((cache / "lowered").glob("*.pkl"))
        assert entries  # one per (program, machine, partition)
        # A second session must load the lowering instead of
        # recompiling, and still produce identical results.
        second = Session(scale=TINY, cache_dir=cache, batch=True)
        for path in cache.glob("*.pkl"):
            path.unlink()  # force re-simulation, keep lowerings
        want = second.run(sweep_for())
        assert want.results == got.results

    def test_corrupt_entry_recompiles(self, tmp_path):
        _, got, cache = run_session(tmp_path, "lc", batch=True)
        for path in (cache / "lowered").glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        for path in cache.glob("*.pkl"):
            path.unlink()
        recovering = Session(scale=TINY, cache_dir=cache, batch=True)
        want = recovering.run(sweep_for())
        assert want.results == got.results


class TestWarmPath:
    """Threaded disk-cache reads on re-runs."""

    def test_warm_rerun_is_all_disk_hits(self, tmp_path):
        _, got, cache = run_session(tmp_path, "warm", batch=True)
        warm = Session(scale=TINY, cache_dir=cache, batch=True)
        outcome = warm.run(sweep_for())
        assert outcome.results == got.results
        assert warm.stats["evaluated"] == 0
        assert warm.stats["disk_hits"] == len(list(sweep_for().points()))
        assert warm.stats["disk_read_seconds"] > 0.0


@settings(max_examples=10, deadline=None)
@given(
    family=st.sampled_from(FAMILIES),
    seed=st.integers(0, 500),
    window=st.sampled_from([4, 16, 64]),
    md=st.sampled_from([0, 7, 60]),
)
def test_generated_kernel_lane_parity(family, seed, window, md):
    """Batched vs scalar on arbitrary generated-grammar kernels."""
    compiled = compiled_for(f"gen:{family}:{seed}", "dm", TINY)
    lanes = [
        BatchLane(
            unit_configs=dm_configs(window), memory=FixedLatencyMemory(md)
        ),
        BatchLane(
            unit_configs=dm_configs(2 * window),
            memory=FixedLatencyMemory(md),
        ),
    ]
    refs = [FixedLatencyMemory(md), FixedLatencyMemory(md)]
    assert_lane_parity(compiled, lanes, refs)
