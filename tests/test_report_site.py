"""Tests for the report emitters, text renderer and static site."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import Session, write_site
from repro.experiments import PRESETS
from repro.report import (
    emit_table1,
    render_text,
)
from repro.report.rows import PlotBlock, TableBlock, TextBlock
from repro.report.svg import render_line_chart

GOLDEN = Path(__file__).resolve().parent / "golden"


class TestTextRenderer:
    def test_blocks_render_like_the_classic_printers(self):
        from repro.report.rows import Artifact

        artifact = Artifact(
            slug="x", title="X",
            blocks=(
                TableBlock(headers=("a", "b"), rows=((1, 2.5),), title="T"),
                TextBlock(("tail line",)),
            ),
        )
        assert render_text(artifact) == (
            "T\na  b   \n-  ----\n1  2.50\ntail line"
        )

    def test_table1_matches_golden(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        preset = PRESETS["tiny"]
        session = Session(scale=preset.scale)
        text = render_text(emit_table1(session, preset))
        assert text + "\n" == (GOLDEN / "table1.txt").read_text()


class TestSvg:
    def test_chart_is_valid_and_deterministic(self):
        plot = PlotBlock(
            x_values=(1.0, 2.0, 4.0),
            series=(("a", (1.0, 2.0, 3.0)),
                    ("b", (3.0, float("nan"), 1.0))),
            title="demo", x_label="x", y_label="y",
        )
        first = render_line_chart(plot)
        assert first.startswith("<svg ") and first.endswith("</svg>\n")
        assert "demo" in first and "NaN" not in first
        assert first == render_line_chart(plot)

    def test_empty_series_renders_placeholder(self):
        plot = PlotBlock(
            x_values=(1.0,),
            series=(("a", (float("nan"),)),),
            title="hollow",
        )
        assert "(no finite data)" in render_line_chart(plot)


class TestSite:
    def test_manifest_covers_every_artifact(self, tiny_report_site):
        out, manifest, _ = tiny_report_site
        slugs = {entry["slug"] for entry in manifest["artifacts"]}
        expected = {
            "table1", "esw", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "ablation-issue-split", "ablation-partition",
            "ablation-bypass", "ablation-expansion",
            "ablation-hierarchy", "generalization", "kernels",
            "generated",
        }
        assert expected <= slugs
        for entry in manifest["artifacts"]:
            assert (out / f"{entry['slug']}.md").exists()
            assert (out / f"{entry['slug']}.html").exists()

    def test_generalization_family_pages_exist(self, tiny_report_site):
        out, manifest, _ = tiny_report_site
        families = [
            entry["slug"] for entry in manifest["artifacts"]
            if entry["slug"].startswith("generalization-")
        ]
        assert families, "expected per-family generalization pages"
        index = (out / "index.md").read_text()
        for slug in families:
            assert f"({slug}.md)" in index

    def test_figure_pages_reference_svg_charts(self, tiny_report_site):
        out, _, _ = tiny_report_site
        for slug in ("fig4", "fig7"):
            markdown = (out / f"{slug}.md").read_text()
            assert f"![" in markdown and f"{slug}-0.svg" in markdown
            assert (out / f"{slug}-0.svg").read_text().startswith("<svg ")

    def test_bench_and_models_pages(self, tiny_report_site):
        out, manifest, _ = tiny_report_site
        assert "bench.md" in manifest["pages"]
        bench = (out / "bench.md").read_text()
        assert "engine throughput" in bench
        models = (out / "models.md").read_text()
        for name in ("dm", "swsm", "serial", "fixed", "hierarchy"):
            assert name in models

    def test_manifest_store_keys_back_each_artifact(self, tiny_report_site):
        out, manifest, session = tiny_report_site
        store = session.store()
        stored = set(store.keys())
        assert manifest["store"]["results"] == len(stored)
        table1 = next(
            entry for entry in manifest["artifacts"]
            if entry["slug"] == "table1"
        )
        assert table1["store_keys"]
        for entry in manifest["artifacts"]:
            keys = entry["store_keys"]
            assert keys == sorted(keys)
            assert set(keys) <= stored
        # kernels is static analysis: no simulated points back it.
        kernels = next(
            entry for entry in manifest["artifacts"]
            if entry["slug"] == "kernels"
        )
        assert kernels["store_keys"] == []

    def test_site_is_byte_identical_on_rebuild(
        self, tiny_report_site, tmp_path
    ):
        from repro import build_report, generate_corpus

        out, _, session = tiny_report_site
        preset = PRESETS["tiny"]
        corpus = generate_corpus(4, seed=0, scale=preset.scale)
        again = tmp_path / "again"
        build_report(
            session, preset, again, corpus=corpus,
            bench_path=Path(__file__).resolve().parent.parent
            / "BENCH_engine.json",
        )
        first = sorted(p.name for p in out.iterdir())
        second = sorted(p.name for p in again.iterdir())
        assert first == second
        for name in first:
            assert (out / name).read_bytes() == (again / name).read_bytes(), (
                f"{name} differs between warm-cache report runs"
            )

    def test_manifest_json_parses(self, tiny_report_site):
        out, manifest, _ = tiny_report_site
        on_disk = json.loads((out / "manifest.json").read_text())
        assert on_disk == manifest
        assert on_disk["scale"]["name"] == "tiny"


class TestEmptySite:
    @pytest.fixture()
    def empty_site(self, tmp_path):
        manifest = write_site([], tmp_path, PRESETS["tiny"])
        return tmp_path, manifest

    def test_no_results_yet_index(self, empty_site):
        out, manifest = empty_site
        index = (out / "index.md").read_text()
        assert "No results yet" in index
        assert manifest["artifacts"] == []
        assert manifest["store"]["attached"] is False

    def test_rerun_removes_stale_pages(self, tmp_path):
        from repro.report.rows import Artifact, TextBlock

        wide = [
            Artifact(slug=slug, title=slug,
                     blocks=(TextBlock((slug,)),))
            for slug in ("table1", "generalization-chase")
        ]
        write_site(wide, tmp_path, PRESETS["tiny"])
        assert (tmp_path / "generalization-chase.md").exists()
        manifest = write_site(wide[:1], tmp_path, PRESETS["tiny"])
        assert not (tmp_path / "generalization-chase.md").exists()
        assert not (tmp_path / "generalization-chase.html").exists()
        on_disk = sorted(p.name for p in tmp_path.iterdir())
        assert on_disk == manifest["pages"]

    def test_rerun_leaves_foreign_files_alone(self, tmp_path):
        write_site([], tmp_path, PRESETS["tiny"])
        foreign = tmp_path / "notes.txt"
        foreign.write_text("mine")
        write_site([], tmp_path, PRESETS["tiny"])
        assert foreign.read_text() == "mine"

    def test_empty_site_is_still_valid(self, empty_site):
        out, manifest = empty_site
        for page in ("index.md", "index.html", "models.md", "models.html",
                     "manifest.json"):
            assert (out / page).exists()
        assert json.loads((out / "manifest.json").read_text()) == manifest
