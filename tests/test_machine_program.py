"""Unit tests for the MachineProgram container and its validation."""

from __future__ import annotations

import pytest

from repro import PartitionError, Unit
from repro.partition import MachineInstruction, MachineProgram, MemKind


def op(gid, unit=Unit.SINGLE, kind=MemKind.NONE, latency=1, srcs=(),
       addr=None):
    return MachineInstruction(
        gid=gid, unit=unit, mem_kind=kind, latency=latency, srcs=srcs,
        addr=addr,
    )


class TestValidation:
    def test_valid_two_unit_program(self):
        program = MachineProgram("t", {
            Unit.AU: [op(0, Unit.AU), op(2, Unit.AU, srcs=(0,))],
            Unit.DU: [op(1, Unit.DU, srcs=(0,))],
        })
        program.validate()

    def test_duplicate_gid_rejected(self):
        program = MachineProgram("t", {
            Unit.AU: [op(0, Unit.AU)],
            Unit.DU: [op(0, Unit.DU)],
        })
        with pytest.raises(PartitionError, match="duplicate"):
            program.validate()

    def test_out_of_order_stream_rejected(self):
        program = MachineProgram("t", {
            Unit.SINGLE: [op(1), op(0)],
        })
        with pytest.raises(PartitionError, match="order"):
            program.validate()

    def test_wrong_unit_tag_rejected(self):
        program = MachineProgram("t", {Unit.AU: [op(0, Unit.DU)]})
        with pytest.raises(PartitionError, match="tagged"):
            program.validate()

    def test_dependency_on_unknown_gid_rejected(self):
        program = MachineProgram("t", {Unit.SINGLE: [op(0, srcs=(7,))]})
        with pytest.raises(PartitionError, match="unknown"):
            program.validate()

    def test_dependency_on_younger_gid_rejected(self):
        program = MachineProgram("t", {
            Unit.SINGLE: [op(0, srcs=(1,)), op(1)],
        })
        with pytest.raises(PartitionError, match="younger"):
            program.validate()


class TestAccessors:
    def test_consumers(self):
        program = MachineProgram("t", {
            Unit.SINGLE: [op(0), op(1, srcs=(0,)), op(2, srcs=(0, 1))],
        })
        assert program.consumers[0] == [1, 2]
        assert program.consumers[1] == [2]
        assert program.consumers[2] == []

    def test_unit_counts(self):
        program = MachineProgram("t", {
            Unit.AU: [op(0, Unit.AU)],
            Unit.DU: [op(1, Unit.DU), op(2, Unit.DU)],
        })
        assert program.unit_counts() == {Unit.AU: 1, Unit.DU: 2}
        assert program.num_instructions == 3

    def test_is_memory_access(self):
        assert op(0, kind=MemKind.PREFETCH_LOAD, addr=4).is_memory_access
        assert op(0, kind=MemKind.SELF_LOAD, addr=4).is_memory_access
        assert not op(0, kind=MemKind.RECEIVE).is_memory_access
