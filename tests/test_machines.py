"""Unit tests for the machine wrapper classes."""

from __future__ import annotations

import pytest

from repro import (
    DecoupledMachine,
    DMConfig,
    FixedLatencyMemory,
    SerialMachine,
    SuperscalarMachine,
    SWSMConfig,
    Unit,
)


class TestDecoupledMachine:
    def test_compile_once_run_many(self, daxpy):
        compiled = DecoupledMachine.compile(daxpy)
        small = DecoupledMachine(DMConfig.symmetric(4)).run(
            compiled, memory_differential=60
        )
        large = DecoupledMachine(DMConfig.symmetric(64)).run(
            compiled, memory_differential=60
        )
        assert large.cycles <= small.cycles

    def test_run_program_matches_compile_and_run(self, daxpy):
        machine = DecoupledMachine(DMConfig.symmetric(16))
        direct = machine.run_program(daxpy, memory_differential=30)
        compiled = machine.compile(daxpy)
        staged = machine.run(compiled, memory_differential=30)
        assert direct.cycles == staged.cycles

    def test_memory_and_differential_are_exclusive(self, daxpy):
        machine = DecoupledMachine(DMConfig.symmetric(16))
        compiled = machine.compile(daxpy)
        with pytest.raises(ValueError):
            machine.run(
                compiled,
                memory=FixedLatencyMemory(10),
                memory_differential=10,
            )

    def test_default_memory_is_zero_differential(self, daxpy):
        machine = DecoupledMachine(DMConfig.symmetric(16))
        default = machine.run_program(daxpy)
        explicit = machine.run_program(daxpy, memory_differential=0)
        assert default.cycles == explicit.cycles

    def test_unit_stats_cover_both_units(self, daxpy):
        result = DecoupledMachine(DMConfig.symmetric(16)).run_program(daxpy)
        assert set(result.unit_stats) == {Unit.AU, Unit.DU}
        total = sum(s.instructions for s in result.unit_stats.values())
        assert total == result.instructions


class TestSuperscalarMachine:
    def test_runs(self, daxpy):
        result = SuperscalarMachine(SWSMConfig(window=16)).run_program(
            daxpy, memory_differential=60
        )
        assert result.cycles > 0
        assert set(result.unit_stats) == {Unit.SINGLE}

    def test_memory_and_differential_are_exclusive(self, daxpy):
        machine = SuperscalarMachine(SWSMConfig(window=16))
        compiled = machine.compile(daxpy)
        with pytest.raises(ValueError):
            machine.run(
                compiled,
                memory=FixedLatencyMemory(10),
                memory_differential=10,
            )

    def test_wider_window_never_hurts_streaming(self, daxpy):
        machine_small = SuperscalarMachine(SWSMConfig(window=4))
        machine_large = SuperscalarMachine(SWSMConfig(window=256))
        small = machine_small.run_program(daxpy, memory_differential=60)
        large = machine_large.run_program(daxpy, memory_differential=60)
        assert large.cycles <= small.cycles


class TestSerialMachine:
    def test_matches_analytic_serial_time(self, daxpy):
        result = SerialMachine().run(daxpy, 60)
        assert result.cycles == daxpy.serial_time(60)
        assert result.instructions == len(daxpy)

    def test_cpi_reflects_memory_cost(self, daxpy):
        fast = SerialMachine().run(daxpy, 0)
        slow = SerialMachine().run(daxpy, 60)
        assert slow.cpi > fast.cpi


class TestMachineComparisons:
    """The structural relationships every program must satisfy."""

    def test_both_machines_beat_serial_on_streams(self, daxpy):
        serial = SerialMachine().run(daxpy, 60).cycles
        dm = DecoupledMachine(DMConfig.symmetric(32)).run_program(
            daxpy, memory_differential=60
        ).cycles
        swsm = SuperscalarMachine(SWSMConfig(window=32)).run_program(
            daxpy, memory_differential=60
        ).cycles
        assert dm < serial
        assert swsm < serial

    def test_machines_bounded_by_critical_path(self, daxpy, feedback):
        for program in (daxpy, feedback):
            bound = program.critical_path(60)
            dm = DecoupledMachine(
                DMConfig.symmetric(len(program))
            ).run_program(program, memory_differential=60)
            assert dm.cycles >= bound

    def test_pointer_chase_defeats_both_machines(self, pointer_chase):
        """Serially dependent loads cannot be prefetched by anybody."""
        chain_bound = pointer_chase.stats.loads * 61
        dm = DecoupledMachine(DMConfig.symmetric(64)).run_program(
            pointer_chase, memory_differential=60
        )
        swsm = SuperscalarMachine(SWSMConfig(window=64)).run_program(
            pointer_chase, memory_differential=60
        )
        assert dm.cycles >= chain_bound
        assert swsm.cycles >= chain_bound
