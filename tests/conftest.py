"""Shared fixtures: small hand-built programs and a tiny lab.

Simulation-heavy fixtures are session-scoped; everything they return is
treated as immutable by the tests.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import KernelBuilder, Program
from repro.experiments import Lab


def build_daxpy(n: int = 16, name: str = "daxpy") -> Program:
    """y[i] += a * x[i] — the smallest realistic streaming kernel."""
    builder = KernelBuilder(name)
    x = builder.array("x", n)
    y = builder.array("y", n)
    iv = None
    for i in range(n):
        iv = builder.induction(iv)
        xv = builder.load(x, i, iv)
        yv = builder.load(y, i, iv)
        builder.store(y, i, builder.fma(xv, yv), iv)
    return builder.build()


def build_pointer_chase(n: int = 8, name: str = "chase") -> Program:
    """Each load's address depends on the previous load's value."""
    builder = KernelBuilder(name)
    table = builder.array("table", n)
    previous = None
    for i in range(n):
        deps = () if previous is None else (previous,)
        previous = builder.load(table, i, *deps)
    return builder.build()


def build_feedback(n: int = 8, name: str = "feedback") -> Program:
    """FP results steer addressing: a loss-of-decoupling chain."""
    builder = KernelBuilder(name)
    data = builder.array("data", n)
    gate = None
    for i in range(n):
        deps = () if gate is None else (gate,)
        value = builder.load(data, i, *deps)
        squared = builder.fmul(value, value)
        gate = builder.cvt_f2i(squared)
    return builder.build()


def build_rmw_chain(n: int = 8, name: str = "rmw") -> Program:
    """Read-modify-write of a single location: store->load serialisation."""
    builder = KernelBuilder(name)
    cell = builder.array("cell", 1)
    iv = None
    for _ in range(n):
        iv = builder.induction(iv)
        old = builder.load(cell, 0, iv)
        new = builder.fadd(old, old)
        builder.store(cell, 0, new, iv)
    return builder.build()


@pytest.fixture(scope="session")
def daxpy() -> Program:
    return build_daxpy()


@pytest.fixture(scope="session")
def pointer_chase() -> Program:
    return build_pointer_chase()


@pytest.fixture(scope="session")
def feedback() -> Program:
    return build_feedback()


@pytest.fixture(scope="session")
def rmw_chain() -> Program:
    return build_rmw_chain()


@pytest.fixture(scope="session")
def tiny_lab() -> Lab:
    """A lab small enough for wiring tests (not for fidelity checks)."""
    return Lab(scale=2_000)


@pytest.fixture(scope="session")
def claims_lab() -> Lab:
    """The lab used by the paper-claims integration tests."""
    return Lab(scale=8_000)


@pytest.fixture(scope="session")
def tiny_report_site(tmp_path_factory):
    """A full report site built once at tiny scale, shared across tests.

    Returns ``(out_dir, manifest, session)``. The session keeps its
    in-memory caches, so a second ``build_report`` against it (for
    determinism checks) is nearly free.
    """
    from repro import Session, build_report, generate_corpus
    from repro.experiments import PRESETS

    preset = PRESETS["tiny"]
    out = tmp_path_factory.mktemp("report") / "site"
    session = Session(scale=preset.scale)
    session.store(tmp_path_factory.mktemp("store") / "results.sqlite")
    corpus = generate_corpus(4, seed=0, scale=preset.scale)
    manifest = build_report(
        session,
        preset,
        out,
        corpus=corpus,
        bench_path=Path(__file__).resolve().parent.parent
        / "BENCH_engine.json",
    )
    return out, manifest, session
