"""Bit-exactness suite for the event-heap scheduler.

The event engine (``_simulate_events`` in :mod:`repro.machines.engine`)
must produce the exact schedule of the SoA cycle loops and of the
legacy object engine — across both machines (DM, SWSM), every memory
model kind the hierarchy scenario space ships
(fixed/bypass/cache/hierarchy/banked/prefetch), probes on and off, and
``REPRO_PERIOD_SKIP`` on and off. The suite drives strategy selection
through the ``REPRO_EVENT_ENGINE`` toggle and pins both the automatic
time-sensitive routing and the FIFO seq-counter determinism of the
event heap (docs/timing.md, "Event scheduling").

Reuses the PR-2/PR-3 parity fixtures from ``test_engine_soa``.
"""

from __future__ import annotations

import pytest

from test_engine_soa import (
    SMALL,
    TINY,
    assert_same_schedule,
    compiled_variants,
    dm_configs,
    loop_nest_program,
    stateful_model_zoo,
    swsm_configs,
)

from repro import DecoupledMachine, SuperscalarMachine
from repro.api import MemorySpec, Point, Session
from repro.api.presets import HIERARCHY_MEMORY_VARIANTS
from repro.config import DEFAULT_LATENCIES
from repro.errors import ConfigError
from repro.kernels import build_kernel
from repro.machines import engine, simulate, simulate_objects
from repro.machines.engine import _simulate_events
from repro.memory import BankedMemory, FixedLatencyMemory

MD = 60

MEMORY_KINDS = tuple(label for label, _ in HIERARCHY_MEMORY_VARIANTS)


def build_memory(label):
    spec = dict(HIERARCHY_MEMORY_VARIANTS)[label]
    return spec.build(MD)


@pytest.fixture()
def events(monkeypatch):
    monkeypatch.setenv("REPRO_EVENT_ENGINE", "events")
    return monkeypatch


class TestEventEngineParity:
    """Forced event engine vs SoA loops vs the legacy object engine."""

    @pytest.mark.parametrize("label", MEMORY_KINDS)
    def test_every_memory_kind_both_machines(self, label, monkeypatch):
        for compiled, make_configs in compiled_variants("flo52q", SMALL):
            configs = make_configs(32)
            monkeypatch.setenv("REPRO_EVENT_ENGINE", "events")
            forced = simulate(compiled, configs, build_memory(label),
                              collect_issue_times=True)
            assert engine.LAST_STRATEGY in ("events-table", "events-chunked")
            monkeypatch.setenv("REPRO_EVENT_ENGINE", "soa")
            soa = simulate(compiled, configs, build_memory(label),
                           collect_issue_times=True)
            assert not engine.LAST_STRATEGY.startswith("events")
            legacy = simulate_objects(compiled, configs, build_memory(label),
                                      collect_issue_times=True)
            assert_same_schedule(forced, soa)
            assert_same_schedule(forced, legacy)

    @pytest.mark.parametrize("label", [l for l, _ in stateful_model_zoo()])
    def test_stateful_zoo_configurations(self, label, events):
        # The zoo's configurations (small bypass, 4-bank queue, ...)
        # differ from the hierarchy scenario space; cover them too.
        make_memory = dict(stateful_model_zoo())[label]
        for compiled, make_configs in compiled_variants("trfd", SMALL):
            forced = simulate(compiled, make_configs(32), make_memory(),
                              collect_issue_times=True)
            legacy = simulate_objects(compiled, make_configs(32),
                                      make_memory(),
                                      collect_issue_times=True)
            assert_same_schedule(forced, legacy)

    def test_stateful_stats_identical(self, monkeypatch):
        # The event engine feeds a stateful model the same chunk
        # sequence as the cycle loop, so hit/conflict counters agree.
        compiled = DecoupledMachine.compile(build_kernel("flo52q", SMALL))
        for label in ("banked", "prefetch", "cache"):
            monkeypatch.setenv("REPRO_EVENT_ENGINE", "events")
            ev_memory = build_memory(label)
            simulate(compiled, dm_configs(32), ev_memory)
            monkeypatch.setenv("REPRO_EVENT_ENGINE", "soa")
            soa_memory = build_memory(label)
            simulate(compiled, dm_configs(32), soa_memory)
            assert ev_memory.stats() == soa_memory.stats()

    def test_random_loop_nests(self, events):
        for seed in (3, 11, 29):
            program = loop_nest_program(seed, body=24, iterations=130)
            for compile_fn, make_configs in (
                (DecoupledMachine.compile, dm_configs),
                (SuperscalarMachine.compile, swsm_configs),
            ):
                compiled = compile_fn(program)
                forced = simulate(compiled, make_configs(16),
                                  FixedLatencyMemory(MD),
                                  collect_issue_times=True)
                legacy = simulate_objects(compiled, make_configs(16),
                                          FixedLatencyMemory(MD),
                                          collect_issue_times=True)
                assert_same_schedule(forced, legacy)

    def test_period_skip_toggle_is_invisible(self, monkeypatch):
        # The event engine has no skip layer, so REPRO_PERIOD_SKIP must
        # not change its schedule — and the skip-accelerated SoA run
        # must agree with both.
        compiled = DecoupledMachine.compile(build_kernel("flo52q", SMALL))
        runs = {}
        for skip in ("1", "0"):
            monkeypatch.setenv("REPRO_PERIOD_SKIP", skip)
            monkeypatch.setenv("REPRO_EVENT_ENGINE", "events")
            runs["events", skip] = simulate(
                compiled, dm_configs(32), FixedLatencyMemory(MD),
                collect_issue_times=True)
            monkeypatch.setenv("REPRO_EVENT_ENGINE", "soa")
            runs["soa", skip] = simulate(
                compiled, dm_configs(32), FixedLatencyMemory(MD),
                collect_issue_times=True)
        baseline = runs["events", "1"]
        for other in runs.values():
            assert_same_schedule(baseline, other)

    def test_probes_route_past_the_event_engine(self, events):
        # Probing runs keep their dedicated loop whatever the toggle
        # says; results must match the legacy engine bit for bit.
        compiled = DecoupledMachine.compile(build_kernel("mdg", TINY))
        for label in ("fixed", "banked", "prefetch"):
            forced = simulate(compiled, dm_configs(32), build_memory(label),
                              probe_buffers=True, probe_esw=True,
                              collect_issue_times=True)
            assert engine.LAST_STRATEGY == "probing"
            legacy = simulate_objects(compiled, dm_configs(32),
                                      build_memory(label),
                                      probe_buffers=True, probe_esw=True,
                                      collect_issue_times=True)
            assert_same_schedule(forced, legacy)
            assert forced.buffer_occupancy is not None


class TestStrategySelection:
    """The REPRO_EVENT_ENGINE toggle and the automatic routing."""

    def test_auto_routes_time_sensitive_models_to_the_heap(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVENT_ENGINE", raising=False)
        compiled = DecoupledMachine.compile(build_kernel("flo52q", SMALL))
        simulate(compiled, dm_configs(32), build_memory("banked"))
        assert engine.LAST_STRATEGY == "events-chunked"
        simulate(compiled, dm_configs(32), build_memory("fixed"))
        assert engine.LAST_STRATEGY == "uniform-table"
        simulate(compiled, dm_configs(32), build_memory("cache"))
        assert engine.LAST_STRATEGY in ("speculative", "chunked")

    @pytest.mark.parametrize("spelling", ["1", "on", "force", "events"])
    def test_force_spellings(self, spelling, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_ENGINE", spelling)
        compiled = DecoupledMachine.compile(build_kernel("trfd", TINY))
        simulate(compiled, dm_configs(16), FixedLatencyMemory(MD))
        assert engine.LAST_STRATEGY == "events-table"

    @pytest.mark.parametrize("spelling", ["0", "off", "soa"])
    def test_off_spellings(self, spelling, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_ENGINE", spelling)
        compiled = DecoupledMachine.compile(build_kernel("trfd", TINY))
        simulate(compiled, dm_configs(16), build_memory("banked"))
        assert engine.LAST_STRATEGY == "chunked"

    def test_unknown_spelling_is_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_ENGINE", "bogus")
        compiled = DecoupledMachine.compile(build_kernel("trfd", TINY))
        simulate(compiled, dm_configs(16), FixedLatencyMemory(MD))
        assert engine.LAST_STRATEGY == "uniform-table"

    def test_event_runs_counter_increments(self, events):
        compiled = DecoupledMachine.compile(build_kernel("trfd", TINY))
        before = engine.PERF_COUNTERS["event_runs"]
        simulate(compiled, dm_configs(16), FixedLatencyMemory(MD))
        assert engine.PERF_COUNTERS["event_runs"] == before + 1


class TestHeapDeterminism:
    """Regression pin for FIFO seq-counter tie-breaking (docs/timing.md).

    Like the lazy-cancel scheduler heap in :mod:`repro.service.jobs`,
    the engine heap carries a monotone insertion counter so entries at
    equal timestamps pop in insertion order — without it, Python's
    heapq would compare event codes and reorder same-cycle events
    between runs and worker processes.
    """

    def _trace(self, compiled, memory, chunked):
        low = compiled.lowered()
        configs = dm_configs(32)
        trace = []
        addlat = (low.base_addlat if chunked
                  else low.addlat_for(DEFAULT_LATENCIES.mem_base + MD))
        result = _simulate_events(
            low, compiled, configs, memory, addlat, DEFAULT_LATENCIES,
            collect_issue_times=True, max_cycles=None, chunked=chunked,
            trace=trace,
        )
        return result, trace

    def test_identical_runs_produce_identical_traces(self):
        compiled = DecoupledMachine.compile(build_kernel("trfd", TINY))
        first_result, first = self._trace(
            compiled, BankedMemory(extra=MD, banks=4, busy=3), chunked=True)
        second_result, second = self._trace(
            compiled, BankedMemory(extra=MD, banks=4, busy=3), chunked=True)
        assert first == second
        assert_same_schedule(first_result, second_result)

    def test_popped_times_non_decreasing_and_seq_fifo(self):
        compiled = DecoupledMachine.compile(build_kernel("flo52q", TINY))
        _, trace = self._trace(compiled, FixedLatencyMemory(MD),
                               chunked=False)
        assert trace, "event engine must pop at least one event"
        for (t0, s0, _), (t1, s1, _) in zip(trace, trace[1:]):
            assert t1 >= t0
            if t1 == t0:
                # FIFO at equal timestamps: insertion order, by seq.
                assert s1 > s0

    def test_seq_counter_is_injective(self):
        compiled = DecoupledMachine.compile(build_kernel("trfd", TINY))
        _, trace = self._trace(compiled, FixedLatencyMemory(MD),
                               chunked=False)
        seqs = [seq for _, seq, _ in trace]
        assert len(seqs) == len(set(seqs))


class TestSessionEngineKnob:
    """Session(engine=...) forwards the strategy to (worker) engines."""

    def test_engine_choice_is_bit_invariant(self):
        point = Point(program="flo52q", machine="dm", window=16,
                      memory=MemorySpec(kind="banked"),
                      memory_differential=MD)
        results = [
            Session(scale=2_000, engine=choice).evaluate(point)
            for choice in (None, "auto", "events", "soa")
        ]
        for other in results[1:]:
            assert other == results[0]

    def test_parallel_sweep_matches_serial(self):
        points = [
            Point(program=name, machine=machine, window=16,
                  memory=MemorySpec(kind="banked"), memory_differential=MD)
            for name in ("trfd", "mdg")
            for machine in ("dm", "swsm")
        ]
        serial = Session(scale=2_000, engine="soa").run(points)
        parallel = Session(scale=2_000, engine="events").run(points, jobs=2)
        assert serial.cycles() == parallel.cycles()
        assert serial.results == parallel.results

    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigError):
            Session(engine="warp")

    def test_environment_restored_after_evaluate(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_ENGINE", "soa")
        point = Point(program="trfd", machine="dm", window=16,
                      memory_differential=MD)
        Session(scale=2_000, engine="events").evaluate(point)
        assert __import__("os").environ["REPRO_EVENT_ENGINE"] == "soa"
