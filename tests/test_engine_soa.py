"""Parity suite for the struct-of-arrays engine.

Three implementations of the docs/timing.md semantics must agree
instruction for instruction:

* ``simulate`` — the SoA engine (fast loop, steady-state accelerator,
  and the general probing loop);
* ``simulate_objects`` — the pre-SoA object-walking engine, preserved
  verbatim;
* ``simulate_naive`` — the cycle-by-cycle reference.

The suite compares whole kernels at ``tiny`` and ``small`` scale on
both machine models, random loop-nest programs (which exercise the
steady-state skip on arbitrary structures), and the probing /
stateful-memory paths.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DecoupledMachine,
    KernelBuilder,
    SuperscalarMachine,
    Unit,
    UnitConfig,
)
from repro.experiments.scales import PRESETS
from repro.kernels import PAPER_ORDER, build_kernel
from repro.machines import simulate, simulate_naive, simulate_objects
from repro.machines.engine import PERF_COUNTERS
from repro.memory import (
    CAP_STATELESS,
    BankedMemory,
    BypassBuffer,
    CacheMemory,
    FixedLatencyMemory,
    MemorySystem,
    StreamPrefetcher,
)

TINY = PRESETS["tiny"].scale
SMALL = PRESETS["small"].scale


def dm_configs(window: int) -> dict[Unit, UnitConfig]:
    return {
        Unit.AU: UnitConfig(window=window, width=4, name="AU"),
        Unit.DU: UnitConfig(window=window, width=5, name="DU"),
    }


def swsm_configs(window: int) -> dict[Unit, UnitConfig]:
    return {Unit.SINGLE: UnitConfig(window=window, width=9)}


def compiled_variants(name: str, scale: int):
    program = build_kernel(name, scale)
    yield DecoupledMachine.compile(program), dm_configs
    yield SuperscalarMachine.compile(program), swsm_configs


def assert_same_schedule(new, old) -> None:
    """Full-result equality between the SoA and legacy engines."""
    assert new.cycles == old.cycles
    assert new.instructions == old.instructions
    assert new.unit_stats == old.unit_stats
    assert new.issue_times == old.issue_times
    assert new.esw_peak == old.esw_peak
    assert new.esw_mean == old.esw_mean
    assert new.buffer_occupancy == old.buffer_occupancy


class TestKernelParity:
    """Bit-identical schedules on the full kernel suite."""

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_tiny_vs_naive_reference(self, name):
        for compiled, make_configs in compiled_variants(name, TINY):
            configs = make_configs(16)
            for md in (0, 60):
                naive_cycles, naive_issue = simulate_naive(
                    compiled, configs, FixedLatencyMemory(md)
                )
                result = simulate(
                    compiled,
                    configs,
                    FixedLatencyMemory(md),
                    collect_issue_times=True,
                )
                assert result.cycles == naive_cycles
                assert result.issue_times == naive_issue

    @pytest.mark.parametrize("name", PAPER_ORDER)
    def test_small_vs_object_engine(self, name):
        for compiled, make_configs in compiled_variants(name, SMALL):
            for window in (16, 64):
                configs = make_configs(window)
                for md in (0, 60):
                    new = simulate(
                        compiled,
                        configs,
                        FixedLatencyMemory(md),
                        collect_issue_times=True,
                    )
                    old = simulate_objects(
                        compiled,
                        configs,
                        FixedLatencyMemory(md),
                        collect_issue_times=True,
                    )
                    assert_same_schedule(new, old)


def loop_nest_program(seed: int, body: int, iterations: int):
    """A random but structurally periodic trace: one random loop body
    repeated verbatim, with constant-offset cross-iteration deps."""
    rng = random.Random(seed)
    builder = KernelBuilder(f"loop{seed}", seed=seed)
    array = builder.array("a", 4096)
    plan = []
    for position in range(body):
        choice = rng.random()
        deps = []
        if position and rng.random() < 0.8:
            deps.append(rng.randrange(position))  # same-iteration dep
        if rng.random() < 0.3:
            deps.append(-1 - rng.randrange(body))  # previous iteration
        plan.append((choice, tuple(deps), rng.randrange(64)))
    previous: list = []
    induction = None
    for iteration in range(iterations):
        induction = builder.induction(induction)
        current: list = []
        for choice, deps, index in plan:
            srcs = [induction]
            for dep in deps:
                if dep >= 0:
                    srcs.append(current[dep])
                elif previous:
                    srcs.append(previous[len(previous) + dep])
            if choice < 0.3:
                value = builder.load(array, (iteration * 64 + index) % 4096,
                                     *srcs)
            elif choice < 0.4:
                builder.store(array, index, srcs[-1], *srcs[:-1])
                value = builder.iadd(*srcs)
            elif choice < 0.7:
                value = builder.fadd(*srcs)
            else:
                value = builder.fmul(*srcs)
            current.append(value)
        previous = current
    return builder.build()


class TestSteadyStateAccelerator:
    def test_kernel_steady_state_detected(self):
        compiled = DecoupledMachine.compile(build_kernel("flo52q", SMALL))
        steady = compiled.lowered().steady()
        assert steady is not None
        assert steady.period >= 1
        assert sum(steady.unit_counts) == steady.period

    def test_skip_fires_on_small_kernels(self, monkeypatch):
        # The skip layer lives in the SoA fast loop; pin the engine so
        # a REPRO_EVENT_ENGINE=force environment cannot reroute it.
        monkeypatch.setenv("REPRO_EVENT_ENGINE", "soa")
        compiled = DecoupledMachine.compile(build_kernel("flo52q", SMALL))
        before = PERF_COUNTERS["steady_skips"]
        new = simulate(compiled, dm_configs(32), FixedLatencyMemory(60),
                       collect_issue_times=True)
        assert PERF_COUNTERS["steady_skips"] == before + 1
        old = simulate_objects(compiled, dm_configs(32),
                               FixedLatencyMemory(60),
                               collect_issue_times=True)
        assert_same_schedule(new, old)

    def test_env_toggle_disables_skip(self, monkeypatch):
        compiled = DecoupledMachine.compile(build_kernel("trfd", SMALL))
        enabled = simulate(compiled, dm_configs(32), FixedLatencyMemory(60),
                           collect_issue_times=True)
        monkeypatch.setenv("REPRO_PERIOD_SKIP", "0")
        before = PERF_COUNTERS["steady_skips"]
        disabled = simulate(compiled, dm_configs(32), FixedLatencyMemory(60),
                            collect_issue_times=True)
        assert PERF_COUNTERS["steady_skips"] == before
        assert_same_schedule(enabled, disabled)

    def test_irregular_program_has_no_steady_state(self):
        rng = random.Random(7)
        builder = KernelBuilder("irregular", seed=7)
        array = builder.array("a", 512)
        values = []
        for position in range(3000):
            if values and rng.random() < 0.6:
                values.append(builder.fadd(rng.choice(values[-30:])))
            elif rng.random() < 0.5:
                values.append(builder.load(array, rng.randrange(512)))
            else:
                values.append(builder.iadd())
        compiled = DecoupledMachine.compile(builder.build())
        assert compiled.lowered().steady() is None

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        body=st.integers(8, 40),
        window=st.sampled_from([4, 16, 64]),
        md=st.sampled_from([0, 13, 60]),
    )
    def test_random_loop_nests_match_object_engine(self, seed, body, window,
                                                   md):
        iterations = max(3, 3200 // body)
        program = loop_nest_program(seed, body, iterations)
        for compile_fn, make_configs in (
            (DecoupledMachine.compile, dm_configs),
            (SuperscalarMachine.compile, swsm_configs),
        ):
            compiled = compile_fn(program)
            configs = make_configs(window)
            new = simulate(compiled, configs, FixedLatencyMemory(md),
                           collect_issue_times=True)
            old = simulate_objects(compiled, configs, FixedLatencyMemory(md),
                                   collect_issue_times=True)
            assert_same_schedule(new, old)


def stateful_model_zoo():
    """Fresh instances of every stateful model, one factory per kind."""
    yield "bypass", lambda: BypassBuffer(
        FixedLatencyMemory(60), entries=32, line_bytes=1
    )
    yield "cache", lambda: CacheMemory(miss_extra=60)
    yield "banked", lambda: BankedMemory(
        extra=60, banks=4, interleave_bytes=32, busy=3
    )
    yield "prefetch", lambda: StreamPrefetcher(FixedLatencyMemory(60))


class TestStatefulMemoryParity:
    """Every stateful model, every machine: bit-identical to the legacy
    engine. At ``small`` scale the kernels are large enough that the
    speculative fixed point (bypass/cache/prefetch) and the chunked
    live path (banked) are both exercised."""

    @pytest.mark.parametrize("name", ["flo52q", "trfd", "mdg"])
    @pytest.mark.parametrize(
        "label", [label for label, _ in stateful_model_zoo()]
    )
    def test_small_kernels_match_object_engine(self, name, label):
        make_memory = dict(stateful_model_zoo())[label]
        for compiled, make_configs in compiled_variants(name, SMALL):
            new = simulate(compiled, make_configs(32), make_memory(),
                           collect_issue_times=True)
            old = simulate_objects(compiled, make_configs(32), make_memory(),
                                   collect_issue_times=True)
            assert_same_schedule(new, old)

    def test_stateful_runs_are_deterministic(self):
        compiled = DecoupledMachine.compile(build_kernel("flo52q", SMALL))
        for label, make_memory in stateful_model_zoo():
            first = simulate(compiled, dm_configs(32), make_memory(),
                             collect_issue_times=True)
            second = simulate(compiled, dm_configs(32), make_memory(),
                              collect_issue_times=True)
            assert_same_schedule(first, second)

    def test_model_reset_between_reused_runs(self):
        # The engine resets the model at entry, so reusing one instance
        # across runs is identical to using fresh instances.
        compiled = DecoupledMachine.compile(build_kernel("flo52q", SMALL))
        for label, make_memory in stateful_model_zoo():
            shared = make_memory()
            first = simulate(compiled, dm_configs(32), shared,
                             collect_issue_times=True)
            again = simulate(compiled, dm_configs(32), shared,
                             collect_issue_times=True)
            fresh = simulate(compiled, dm_configs(32), make_memory(),
                             collect_issue_times=True)
            assert_same_schedule(first, again)
            assert_same_schedule(again, fresh)

    def test_speculation_toggle_matches(self, monkeypatch):
        # REPRO_PERIOD_SKIP=0 also disables the speculative fixed
        # point; results must not change, only the route taken.
        compiled = DecoupledMachine.compile(build_kernel("flo52q", SMALL))
        make_memory = dict(stateful_model_zoo())["bypass"]
        fast = simulate(compiled, dm_configs(32), make_memory(),
                        collect_issue_times=True)
        monkeypatch.setenv("REPRO_PERIOD_SKIP", "0")
        slow = simulate(compiled, dm_configs(32), make_memory(),
                        collect_issue_times=True)
        assert_same_schedule(fast, slow)

    def test_stateful_stats_identical_across_paths(self, monkeypatch):
        # Hit counters come from the replayed model on the speculative
        # path and from live chunks otherwise; they must agree.
        compiled = DecoupledMachine.compile(build_kernel("flo52q", SMALL))
        make_memory = dict(stateful_model_zoo())["bypass"]
        spec_memory = make_memory()
        simulate(compiled, dm_configs(32), spec_memory)
        monkeypatch.setenv("REPRO_PERIOD_SKIP", "0")
        live_memory = make_memory()
        simulate(compiled, dm_configs(32), live_memory)
        assert spec_memory.stats() == live_memory.stats()


class ParityCheckedMemory(MemorySystem):
    """Address-hash latencies, pure: exercises the stateless path."""

    def extra_latency(self, addr: int, now: int) -> int:
        return (addr >> 3) % 7

    def latencies(self, addrs, now):
        return [(addr >> 3) % 7 for addr in addrs]

    def capability(self) -> str:
        return CAP_STATELESS

    def reset(self) -> None:
        pass


class TestStatelessCapability:
    def test_stateless_matches_object_engine(self):
        for name in ("flo52q", "mdg"):
            for compiled, make_configs in compiled_variants(name, SMALL):
                new = simulate(compiled, make_configs(32),
                               ParityCheckedMemory(),
                               collect_issue_times=True)
                old = simulate_objects(compiled, make_configs(32),
                                       ParityCheckedMemory(),
                                       collect_issue_times=True)
                assert_same_schedule(new, old)


class TestGeneralLoopParity:
    """The probing path must match the legacy engine too."""

    def test_probe_buffers_and_esw(self):
        compiled = DecoupledMachine.compile(build_kernel("mdg", TINY))
        for md in (0, 60):
            new = simulate(compiled, dm_configs(32), FixedLatencyMemory(md),
                           probe_buffers=True, probe_esw=True,
                           collect_issue_times=True)
            old = simulate_objects(compiled, dm_configs(32),
                                   FixedLatencyMemory(md),
                                   probe_buffers=True, probe_esw=True,
                                   collect_issue_times=True)
            assert_same_schedule(new, old)
            assert new.buffer_occupancy is not None

    def test_stateful_memory_models(self):
        compiled = SuperscalarMachine.compile(build_kernel("track", TINY))
        for make_memory in (
            lambda: CacheMemory(miss_extra=60),
            lambda: BypassBuffer(FixedLatencyMemory(60), entries=32),
        ):
            new = simulate(compiled, swsm_configs(32), make_memory(),
                           collect_issue_times=True)
            old = simulate_objects(compiled, swsm_configs(32), make_memory(),
                                   collect_issue_times=True)
            assert_same_schedule(new, old)

    def test_probes_with_stateful_memory(self):
        # Probes force the batched probing loop even for stateful
        # models; the chunked queries must not disturb the intervals.
        compiled = DecoupledMachine.compile(build_kernel("mdg", TINY))
        for label, make_memory in stateful_model_zoo():
            new = simulate(compiled, dm_configs(32), make_memory(),
                           probe_buffers=True, probe_esw=True,
                           collect_issue_times=True)
            old = simulate_objects(compiled, dm_configs(32), make_memory(),
                                   probe_buffers=True, probe_esw=True,
                                   collect_issue_times=True)
            assert_same_schedule(new, old)
            assert new.buffer_occupancy is not None

    def test_uniform_memory_contract(self):
        assert FixedLatencyMemory(17).uniform_extra_latency() == 17
        assert CacheMemory().uniform_extra_latency() is None
        assert BypassBuffer(FixedLatencyMemory(5)).uniform_extra_latency() \
            is None


class TestLoweredForm:
    def test_lowering_is_cached_on_the_program(self):
        compiled = DecoupledMachine.compile(build_kernel("trfd", TINY))
        assert compiled.lowered() is compiled.lowered()

    def test_pickle_drops_the_lowered_cache(self):
        compiled = DecoupledMachine.compile(build_kernel("trfd", TINY))
        compiled.lowered()
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone._lowered is None
        assert clone.lowered().total == compiled.lowered().total

    def test_consumer_table_matches_program(self):
        compiled = DecoupledMachine.compile(build_kernel("qcd", TINY))
        low = compiled.lowered()
        assert low.total == compiled.num_instructions
        for gid, consumers in compiled.consumers.items():
            assert sorted(low.cons[gid]) == sorted(consumers)


def test_huge_scale_preset_registered():
    assert "huge" in PRESETS
    assert PRESETS["huge"].scale > PRESETS["paper"].scale
