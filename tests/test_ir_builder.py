"""Unit tests for the kernel-builder DSL."""

from __future__ import annotations

import pytest

from repro import BuilderError, KernelBuilder, OpClass, Opcode, Value


class TestArrays:
    def test_arrays_do_not_overlap(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 100)
        b = builder.array("b", 100)
        assert a.base + a.length <= b.base

    def test_large_array_gets_more_slabs(self):
        builder = KernelBuilder("t")
        big = builder.array("big", 3_000_000)
        after = builder.array("after", 10)
        assert after.base >= big.base + big.length

    def test_element_bounds_check(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 4)
        assert a.element(3) == a.base + 3
        with pytest.raises(BuilderError):
            a.element(4)
        with pytest.raises(BuilderError):
            a.element(-1)

    def test_duplicate_name_rejected(self):
        builder = KernelBuilder("t")
        builder.array("a", 4)
        with pytest.raises(BuilderError):
            builder.array("a", 4)

    def test_empty_array_rejected(self):
        with pytest.raises(BuilderError):
            KernelBuilder("t").array("a", 0)


class TestEmission:
    def test_values_number_sequentially(self):
        builder = KernelBuilder("t")
        v0 = builder.iadd()
        v1 = builder.iadd(v0)
        assert (v0.index, v1.index) == (0, 1)

    def test_rejects_future_value(self):
        builder = KernelBuilder("t")
        with pytest.raises(BuilderError):
            builder.iadd(Value(5))

    def test_rejects_non_value_operand(self):
        builder = KernelBuilder("t")
        with pytest.raises(BuilderError):
            builder.fadd(3)  # type: ignore[arg-type]

    def test_arith_rejects_memory_opcode(self):
        builder = KernelBuilder("t")
        with pytest.raises(BuilderError):
            builder._arith(Opcode.LOAD, (), "")

    def test_tags_recorded(self):
        builder = KernelBuilder("t")
        builder.fadd(tag="physics")
        assert builder.build(validate=False)[0].tag == "physics"


class TestAddressing:
    def test_address_records_concrete_location(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 8)
        addr = builder.address(a, 5)
        assert builder.concrete_address(addr) == a.base + 5

    def test_non_address_value_rejected(self):
        builder = KernelBuilder("t")
        v = builder.iadd()
        with pytest.raises(BuilderError):
            builder.concrete_address(v)

    def test_load_emits_address_plus_load(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 8)
        iv = builder.induction(None)
        value = builder.load(a, 2, iv)
        program = builder.build()
        load = program[value.index]
        assert load.op_class is OpClass.LOAD
        assert load.addr == a.base + 2
        address = program[load.addr_src]
        assert address.op_class is OpClass.INT
        assert address.srcs == (iv.index,)

    def test_store_then_load_gets_memory_dependency(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 8)
        data = builder.fadd()
        builder.store(a, 3, data)
        loaded = builder.load(a, 3)
        program = builder.build()
        load = program[loaded.index]
        store = program[load.mem_dep]
        assert store.op_class is OpClass.STORE
        assert store.addr == load.addr

    def test_load_of_untouched_address_has_no_memory_dependency(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 8)
        builder.store(a, 3, None)
        loaded = builder.load(a, 4)
        assert builder.build()[loaded.index].mem_dep is None

    def test_latest_store_wins(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 8)
        builder.store(a, 0, None)
        builder.store(a, 0, None)
        loaded = builder.load(a, 0)
        program = builder.build()
        # The second store is the dependency.
        assert program[loaded.index].mem_dep == program[loaded.index].mem_dep
        store_indices = [i.index for i in program
                         if i.op_class is OpClass.STORE]
        assert program[loaded.index].mem_dep == store_indices[-1]

    def test_store_of_immediate_has_no_data_src(self):
        builder = KernelBuilder("t")
        a = builder.array("a", 2)
        builder.store(a, 0, None)
        store = builder.build()[-1]
        assert store.srcs == ()


class TestReductions:
    def test_fsum_chain_is_serial(self):
        builder = KernelBuilder("t")
        values = [builder.fadd() for _ in range(4)]
        result = builder.fsum_chain(None, values)
        program = builder.build()
        # Chain of 3 adds over 4 leaves: each depends on the previous.
        chain = program[result.index]
        assert chain.op_class is OpClass.FP
        depth = 0
        current = chain
        while current.srcs and program[current.srcs[0]].op_class is OpClass.FP:
            nxt = program[current.srcs[0]]
            if nxt.index in [v.index for v in values]:
                break
            current = nxt
            depth += 1
        assert depth >= 1

    def test_fsum_tree_is_logarithmic(self):
        builder = KernelBuilder("t")
        values = [builder.fadd() for _ in range(8)]
        before = len(builder)
        builder.fsum_tree(values)
        assert len(builder) - before == 7  # n-1 adds
        # Depth: log2(8) = 3 extra levels of dependency.
        program = builder.build(validate=False)
        assert program.critical_path(0) == 3 + 3 * 3

    def test_fsum_chain_requires_input(self):
        with pytest.raises(BuilderError):
            KernelBuilder("t").fsum_chain(None, [])

    def test_fsum_tree_requires_input(self):
        with pytest.raises(BuilderError):
            KernelBuilder("t").fsum_tree([])


class TestBuild:
    def test_build_validates_by_default(self, daxpy):
        daxpy.validate()  # must not raise

    def test_meta_records_seed_and_extras(self):
        builder = KernelBuilder("t", seed=42)
        builder.set_meta(rows=7)
        builder.fadd()
        program = builder.build()
        assert program.meta["seed"] == 42
        assert program.meta["rows"] == 7

    def test_rng_is_seeded(self):
        first = KernelBuilder("t", seed=9).rng.random()
        second = KernelBuilder("t", seed=9).rng.random()
        assert first == second
