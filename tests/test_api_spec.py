"""Unit tests for the declarative spec layer: Point, Sweep, MemorySpec."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    MemorySpec,
    Point,
    Sweep,
    load_sweep,
    point_digest,
)
from repro.api.presets import (
    PRESETS_NEEDING_PROGRAM,
    SWEEP_PRESETS,
    bypass_sweep,
    hierarchy_sweep,
    issue_split_sweep,
    speedup_sweep,
    table1_sweep,
)
from repro.config import LatencyModel
from repro.errors import ConfigError
from repro.memory import (
    BankedMemory,
    BypassBuffer,
    CacheMemory,
    FixedLatencyMemory,
    StreamPrefetcher,
)


class TestPoint:
    def test_defaults(self):
        point = Point(program="trfd")
        assert point.machine == "dm"
        assert point.memory == MemorySpec()

    def test_hashable_cache_key(self):
        a = Point(program="trfd", window=16)
        b = Point(program="trfd", window=16)
        assert a == b and hash(a) == hash(b)
        assert {a: 1}[b] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"program": ""},
            {"program": "trfd", "window": 0},
            {"program": "trfd", "memory_differential": -1},
            {"program": "trfd", "au_width": 0},
            {"program": "trfd", "expansion": -0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            Point(**kwargs)


class TestMemorySpec:
    def test_builds_each_kind(self):
        assert isinstance(MemorySpec().build(60), FixedLatencyMemory)
        assert isinstance(
            MemorySpec(kind="bypass", entries=8).build(60), BypassBuffer
        )
        assert isinstance(MemorySpec(kind="cache").build(60), CacheMemory)
        assert isinstance(MemorySpec(kind="banked").build(60), BankedMemory)
        assert isinstance(
            MemorySpec(kind="prefetch").build(60), StreamPrefetcher
        )
        assert isinstance(
            MemorySpec(kind="hierarchy").build(60), CacheMemory
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            MemorySpec(kind="quantum")

    def test_hierarchy_levels_configure_geometry(self):
        spec = MemorySpec(
            kind="hierarchy",
            levels=((1024, 16, 1, 0), (4096, 16, 4, 7)),
        )
        built = spec.build(60)
        assert [lv.config.associativity for lv in built.levels] == [1, 4]
        assert built.levels[1].config.hit_extra == 7
        assert built.miss_extra == 60

    def test_levels_normalised_to_hashable_tuples(self):
        spec = MemorySpec(kind="hierarchy", levels=[[1024, 16, 1, 0]])
        assert spec.levels == ((1024, 16, 1, 0),)
        assert hash(spec) == hash(
            MemorySpec(kind="hierarchy", levels=((1024, 16, 1, 0),))
        )

    def test_malformed_level_rejected(self):
        with pytest.raises(ConfigError):
            MemorySpec(kind="hierarchy", levels=((1024, 16, 1),))

    def test_banked_fields_thread_through(self):
        built = MemorySpec(
            kind="banked", banks=2, bank_busy=7, line_bytes=16
        ).build(10)
        assert built.banks == 2
        assert built.busy == 7
        assert built.interleave_bytes == 16
        assert built.extra == 10

    def test_prefetch_fields_thread_through(self):
        built = MemorySpec(kind="prefetch", streams=3, degree=4).build(60)
        assert built.streams == 3
        assert built.degree == 4


class TestSweepGrid:
    def test_cartesian_product(self):
        sweep = Sweep.grid(
            program=("trfd", "mdg"),
            machine="dm",
            window=(8, 16),
            memory_differential=(0, 60),
        )
        points = list(sweep.points())
        assert len(sweep) == 8 and len(points) == 8
        assert {(p.program, p.window, p.memory_differential) for p in points} \
            == {(n, w, m) for n in ("trfd", "mdg") for w in (8, 16)
                for m in (0, 60)}

    def test_scalars_pin_base(self):
        sweep = Sweep.grid(program="trfd", window=(8, 16), swsm_width=7)
        assert all(p.swsm_width == 7 for p in sweep.points())

    def test_zipped_axis_covaries(self):
        sweep = Sweep.grid(
            program="trfd",
            zipped={("au_width", "du_width"): [(1, 8), (4, 5)]},
        )
        widths = [(p.au_width, p.du_width) for p in sweep.points()]
        assert widths == [(1, 8), (4, 5)]

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            Sweep.grid(program="trfd", warp_factor=(1, 2))

    def test_program_axis_supplies_base(self):
        sweep = Sweep.grid(program=("trfd", "mdg"), window=8)
        assert sweep.base.program == "trfd"

    def test_needs_program(self):
        with pytest.raises(ConfigError):
            Sweep.grid(window=(8, 16))


class TestSweepSerialisation:
    def test_dict_round_trip(self):
        sweep = Sweep.grid(
            name="round-trip",
            program=("trfd",),
            machine=("dm", "swsm"),
            window=(8, None),
            memory=(MemorySpec(), MemorySpec(kind="bypass", entries=4)),
            zipped={("au_width", "du_width"): [(3, 6), (4, 5)]},
        )
        restored = Sweep.from_dict(sweep.to_dict())
        assert restored == sweep
        assert list(restored.points()) == list(sweep.points())

    def test_new_memory_kinds_round_trip(self):
        sweep = Sweep.grid(
            name="memory-zoo",
            program=("trfd",),
            memory=(
                MemorySpec(kind="banked", banks=4, bank_busy=2),
                MemorySpec(kind="prefetch", streams=2, degree=3),
                MemorySpec(
                    kind="hierarchy", levels=((1024, 16, 1, 0),)
                ),
            ),
        )
        restored = Sweep.from_dict(
            json.loads(json.dumps(sweep.to_dict()))
        )
        assert restored == sweep
        assert list(restored.points()) == list(sweep.points())

    def test_load_json(self, tmp_path):
        doc = {
            "name": "from-json",
            "base": {"program": "trfd", "window": "unl"},
            "axes": {"memory_differential": [0, 60]},
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(doc))
        sweep = load_sweep(path)
        assert sweep.base.window is None
        assert [p.memory_differential for p in sweep.points()] == [0, 60]

    def test_zipped_rows_must_match_arity(self, tmp_path):
        doc = {
            "base": {"program": "trfd"},
            "axes": {"au_width,du_width": [[4, 5, 6], [3, 6, 1]]},
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ConfigError):
            load_sweep(path)

    def test_unreadable_spec_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            load_sweep(tmp_path / "missing.toml")
        broken = tmp_path / "broken.toml"
        broken.write_text("name = [unclosed\n")
        with pytest.raises(ConfigError):
            load_sweep(broken)

    def test_load_toml(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'name = "from-toml"\n'
            "[base]\n"
            'program = "mdg"\n'
            "window = 32\n"
            "[axes]\n"
            'machine = ["dm", "swsm"]\n'
            'memory = [{kind = "fixed"}, {kind = "bypass", entries = 16}]\n'
        )
        sweep = load_sweep(path)
        assert len(sweep) == 4
        kinds = {p.memory.kind for p in sweep.points()}
        assert kinds == {"fixed", "bypass"}


class TestPointDigest:
    def test_stable(self):
        point = Point(program="trfd", window=16)
        latencies = LatencyModel()
        assert point_digest(point, 2000, latencies) == point_digest(
            point, 2000, latencies
        )

    def test_sensitive_to_spec_scale_and_latencies(self):
        point = Point(program="trfd", window=16)
        latencies = LatencyModel()
        base = point_digest(point, 2000, latencies)
        assert point_digest(point, 4000, latencies) != base
        assert point_digest(
            point, 2000, LatencyModel(fp_op=5)
        ) != base
        assert point_digest(
            Point(program="trfd", window=32), 2000, latencies
        ) != base


class TestPresets:
    def test_registry_builds(self):
        for name, factory in SWEEP_PRESETS.items():
            sweep = (
                factory("trfd")
                if name in PRESETS_NEEDING_PROGRAM
                else factory()
            )
            assert len(sweep) > 0, name
            assert all(isinstance(p, Point) for p in sweep.points())

    def test_hierarchy_sweep_crosses_machines_and_models(self):
        sweep = hierarchy_sweep("trfd")
        points = list(sweep.points())
        assert {p.machine for p in points} == {"dm", "swsm"}
        kinds = {p.memory.kind for p in points}
        assert {"fixed", "bypass", "cache", "hierarchy", "banked",
                "prefetch"} <= kinds

    def test_table1_covers_perfect_and_target_md(self):
        sweep = table1_sweep(programs=("trfd",), windows=(8, None))
        mds = {p.memory_differential for p in sweep.points()}
        assert mds == {0, 60}

    def test_issue_split_partitions_combined_width(self):
        sweep = issue_split_sweep("trfd")
        assert all(
            p.au_width + p.du_width == 9 for p in sweep.points()
        )

    def test_bypass_entry_zero_means_fixed(self):
        points = list(bypass_sweep("trfd", entry_counts=(0, 16)).points())
        assert points[0].memory.kind == "fixed"
        assert points[1].memory == MemorySpec(
            kind="bypass", entries=16, line_bytes=1
        )

    def test_base_overrides_reach_every_point(self):
        sweep = speedup_sweep("trfd", windows=(8,), au_width=2, du_width=7)
        assert all(
            (p.au_width, p.du_width) == (2, 7) for p in sweep.points()
        )
