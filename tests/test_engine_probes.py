"""Tests for the ESW and buffer-occupancy probes."""

from __future__ import annotations

import pytest

from repro import DecoupledMachine, DMConfig, SuperscalarMachine, SWSMConfig
from repro.errors import MetricError
from repro.metrics import esw_stats

from tests.conftest import build_daxpy


class TestEswProbe:
    def test_slippage_grows_with_differential(self):
        """The AU runs further ahead when memory is slower (paper §3)."""
        program = build_daxpy(n=200)
        machine = DecoupledMachine(DMConfig.symmetric(16))
        compiled = machine.compile(program)
        means = []
        for md in (0, 20, 60):
            result = machine.run(
                compiled, memory_differential=md, probe_esw=True
            )
            means.append(result.esw_mean)
        assert means[0] < means[1] < means[2]

    def test_esw_exceeds_physical_windows_at_large_md(self):
        program = build_daxpy(n=200)
        machine = DecoupledMachine(DMConfig.symmetric(8))
        result = machine.run(
            machine.compile(program), memory_differential=60, probe_esw=True
        )
        stats = esw_stats(result, 60, physical_windows=16)
        assert stats.peak >= stats.mean
        assert stats.amplification > 1.0

    def test_probe_disabled_by_default(self, daxpy):
        machine = DecoupledMachine(DMConfig.symmetric(8))
        result = machine.run_program(daxpy, memory_differential=60)
        assert result.esw_peak == 0
        with pytest.raises(MetricError, match="probe_esw"):
            esw_stats(result, 60, physical_windows=16)


class TestBufferProbe:
    def test_decoupled_memory_fills_when_du_is_slow(self):
        """A DU bottleneck leaves fetched data waiting in the buffer."""
        from repro import KernelBuilder

        builder = KernelBuilder("duslow")
        a = builder.array("a", 256)
        iv = None
        for i in range(128):
            iv = builder.induction(iv)
            value = builder.load(a, i, iv)
            # Deep serial FP chain: the DU falls behind the AU.
            chain = builder.fmul(value, value)
            for _ in range(6):
                chain = builder.fadd(chain, value)
        program = builder.build()
        machine = DecoupledMachine(DMConfig.symmetric(32))
        result = machine.run(
            machine.compile(program),
            memory_differential=0,
            probe_buffers=True,
        )
        occupancy = result.buffer_occupancy
        assert occupancy is not None
        assert occupancy.items == program.stats.loads
        assert occupancy.peak > 0

    def test_prefetch_buffer_probe_on_swsm(self, daxpy):
        machine = SuperscalarMachine(SWSMConfig(window=64))
        result = machine.run(
            machine.compile(daxpy), memory_differential=0, probe_buffers=True
        )
        assert result.buffer_occupancy is not None
        assert result.buffer_occupancy.items == daxpy.stats.loads

    def test_probe_disabled_by_default(self, daxpy):
        machine = SuperscalarMachine(SWSMConfig(window=64))
        result = machine.run_program(daxpy, memory_differential=60)
        assert result.buffer_occupancy is None
