"""Tests for the persistent results store (repro.report.store)."""

from __future__ import annotations

import sqlite3

import pytest

from repro import Point, ResultStore, Session, Sweep
from repro.api.spec import CACHE_FORMAT, MemorySpec, point_digest
from repro.errors import StoreError
from repro.report.store import SCHEMA_VERSION
from repro.workloads.grammar import GRAMMAR_VERSION

SCALE = 2_000


@pytest.fixture()
def session() -> Session:
    session = Session(scale=SCALE)
    session.store(ResultStore(":memory:"))
    return session


class TestRoundTrip:
    def test_typed_row_round_trips(self, session):
        point = Point(
            program="trfd", machine="dm", window=16,
            memory_differential=60,
            memory=MemorySpec(kind="bypass", entries=64),
        )
        result = session.evaluate(point)
        store = session.store()
        assert len(store) == 1
        (row,) = store.rows()
        canonical = point  # dm reads every field used here
        assert row.key == point_digest(
            session._canonical(canonical), SCALE, session.latencies
        )
        assert row.program == "trfd"
        assert row.machine == "dm"
        assert row.window == 16
        assert row.memory_differential == 60
        assert row.memory["kind"] == "bypass"
        assert row.memory["entries"] == 64
        assert row.scale == SCALE
        assert row.cycles == result.cycles
        assert row.instructions == result.instructions
        assert row.ipc == pytest.approx(result.ipc)
        assert row.meta["bypass_hit_rate"] == result.meta["bypass_hit_rate"]
        assert row.cache_format == CACHE_FORMAT
        assert row.grammar_version is None
        assert store.get(row.key) == row

    def test_unlimited_window_round_trips_as_none(self, session):
        session.evaluate(Point(program="trfd", machine="dm", window=None))
        (row,) = session.store().rows()
        assert row.window is None

    def test_generated_program_records_grammar_version(self, session):
        session.evaluate(Point(program="gen:streaming:1", window=8))
        (row,) = session.store().rows()
        assert row.grammar_version == GRAMMAR_VERSION


class TestIncrementalUpsert:
    def test_reevaluation_is_idempotent(self, session):
        point = Point(program="trfd", machine="dm", window=16)
        session.evaluate(point)
        session.evaluate(point)  # memory-cache hit records again
        assert len(session.store()) == 1

    def test_repeated_sweep_appends_only_whats_new(self, session):
        small = Sweep.grid(program="trfd", machine="dm", window=(8, 16))
        session.run(small)
        store = session.store()
        first = len(store)
        session.run(small)  # all cached: nothing new
        assert len(store) == first
        bigger = Sweep.grid(program="trfd", machine="dm",
                            window=(8, 16, 32))
        session.run(bigger)
        assert len(store) == first + 1

    def test_two_sessions_share_one_store_by_content(self, tmp_path):
        path = tmp_path / "results.sqlite"
        point = Point(program="trfd", machine="dm", window=16)
        for _ in range(2):
            session = Session(scale=SCALE)
            session.store(path)
            session.evaluate(point)
        assert len(ResultStore(path)) == 1

    def test_canonicalised_points_share_one_row(self, session):
        # Serial ignores the window: every window is one canonical run.
        for window in (8, 16, None):
            session.evaluate(
                Point(program="trfd", machine="serial", window=window)
            )
        assert len(session.store()) == 1

    def test_custom_programs_stay_out(self, session, daxpy):
        session.register_program(daxpy)
        session.evaluate(Point(program="daxpy", machine="dm", window=8))
        assert len(session.store()) == 0


class TestSchemaVersioning:
    def test_mismatch_raises_loudly(self, tmp_path):
        path = tmp_path / "results.sqlite"
        ResultStore(path).close()
        con = sqlite3.connect(path)
        con.execute("PRAGMA user_version = 99")
        con.commit()
        con.close()
        with pytest.raises(StoreError, match="schema v99"):
            ResultStore(path)

    @pytest.mark.parametrize("table", ["results", "users"])
    def test_unversioned_foreign_database_rejected(self, tmp_path, table):
        # A foreign SQLite file (user_version 0 is the SQLite default)
        # must never be adopted and mutated, whatever its tables.
        path = tmp_path / "results.sqlite"
        con = sqlite3.connect(path)
        con.execute(f"CREATE TABLE {table} (key TEXT)")
        con.commit()
        con.close()
        with pytest.raises(StoreError, match="foreign database"):
            ResultStore(path)
        con = sqlite3.connect(path)
        names = {row[0] for row in con.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )}
        con.close()
        assert names == {table}, "foreign database was mutated"

    def test_fresh_store_gets_current_version(self, tmp_path):
        path = tmp_path / "results.sqlite"
        ResultStore(path).close()
        con = sqlite3.connect(path)
        assert con.execute("PRAGMA user_version").fetchone()[0] == \
            SCHEMA_VERSION
        con.close()


class TestQueries:
    def test_filters_and_limit(self, session):
        session.run(Sweep.grid(
            program=("trfd", "adm"), machine=("dm", "swsm"), window=8
        ))
        store = session.store()
        assert len(store) == 4
        assert {r.program for r in store.rows(program="trfd")} == {"trfd"}
        assert {r.machine for r in store.rows(machine="dm")} == {"dm"}
        assert len(store.rows(limit=3)) == 3

    def test_summary_counts(self, session):
        session.run(Sweep.grid(
            program=("trfd", "adm"), machine=("dm", "swsm"), window=8
        ))
        summary = session.store().summary()
        assert summary == {
            "results": 4, "programs": 2, "machines": 2, "scales": 1,
        }

    def test_rows_order_is_deterministic(self, session):
        session.run(Sweep.grid(
            program=("trfd", "adm"), machine=("dm", "swsm"),
            window=(8, None),
        ))
        listed = [
            (r.program, r.machine, r.window)
            for r in session.store().rows()
        ]
        assert listed == sorted(
            listed,
            key=lambda item: (
                item[0], item[1],
                item[2] if item[2] is not None else 1 << 62,
            ),
        )

    def test_keys_sorted(self, session):
        session.run(Sweep.grid(
            program="trfd", machine=("dm", "swsm"), window=8
        ))
        keys = session.store().keys()
        assert keys == sorted(keys) and len(keys) == 2


class TestSessionHook:
    def test_store_accessor_and_detach(self):
        session = Session(scale=SCALE)
        assert session.store() is None
        store = session.store(ResultStore(":memory:"))
        assert session.store() is store
        assert session.store(None) is None
        assert session.store() is None

    def test_store_accepts_a_path(self, tmp_path):
        session = Session(scale=SCALE)
        store = session.store(tmp_path / "results.sqlite")
        assert isinstance(store, ResultStore)
        session.evaluate(Point(program="trfd", window=8))
        assert len(store) == 1

    def test_disk_cache_hits_still_recorded(self, tmp_path):
        point = Point(program="trfd", machine="dm", window=16)
        warm = Session(scale=SCALE, cache_dir=tmp_path / "cache")
        warm.evaluate(point)
        session = Session(scale=SCALE, cache_dir=tmp_path / "cache")
        store = session.store(ResultStore(":memory:"))
        session.evaluate(point)
        assert session.stats["disk_hits"] == 1
        assert len(store) == 1

    def test_track_groups_collect_keys(self, session):
        store = session.store()
        with store.track() as group:
            session.evaluate(Point(program="trfd", window=8))
            session.evaluate(Point(program="trfd", window=8))
            session.evaluate(Point(program="trfd", window=16))
        assert len(group) == 2
        assert group.sorted() == sorted(store.keys())

    def test_repeat_evaluations_stay_visible_to_later_groups(self, session):
        # A second artefact re-evaluating a point the first already
        # recorded must still see its key in the second group.
        store = session.store()
        point = Point(program="trfd", window=8)
        with store.track() as first:
            session.evaluate(point)
        with store.track() as second:
            session.evaluate(point)
        assert first.sorted() == second.sorted()

    def test_nested_track_groups_detach_correctly(self, session):
        store = session.store()
        with store.track() as outer:
            session.evaluate(Point(program="trfd", window=8))
            with store.track() as inner:
                session.evaluate(Point(program="trfd", window=8))
            # Inner exit must not detach the (equal-keyed) outer group.
            session.evaluate(Point(program="trfd", window=16))
        assert len(inner) == 1
        assert len(outer) == 2

    def test_reattaching_a_store_records_again(self, session, tmp_path):
        point = Point(program="trfd", window=8)
        session.evaluate(point)
        fresh = session.store(tmp_path / "fresh.sqlite")
        assert len(fresh) == 0
        session.evaluate(point)  # memory hit, but a brand-new store
        assert len(fresh) == 1


class TestConcurrencyPragmas:
    def test_file_store_opens_in_wal_mode_with_busy_timeout(self, tmp_path):
        store = ResultStore(tmp_path / "wal.sqlite")
        mode = store._con.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        timeout = store._con.execute("PRAGMA busy_timeout").fetchone()[0]
        assert timeout >= 1_000  # milliseconds
        store.close()

    def test_reader_coexists_with_writer(self, tmp_path):
        """A second connection reads while the first keeps upserting."""
        path = tmp_path / "shared.sqlite"
        writer_session = Session(scale=SCALE)
        writer_session.store(path)
        writer_session.evaluate(Point(program="trfd", window=8))

        reader = ResultStore(path)
        assert len(reader.rows()) == 1
        writer_session.evaluate(Point(program="trfd", window=16))
        assert len(reader.rows()) == 2  # sees the new row, no lock error
        reader.close()

    def test_memory_store_skips_wal(self):
        store = ResultStore(":memory:")
        mode = store._con.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "memory"
        store.close()


class TestPayloads:
    def test_load_rehydrates_the_full_result(self, session):
        point = Point(program="trfd", machine="dm", window=16,
                      memory_differential=60)
        result = session.evaluate(point)
        store = session.store()
        key = point_digest(
            session._canonical(point), SCALE, session.latencies
        )
        loaded = store.load(key)
        assert loaded == result  # the whole dataclass, not just cycles

    def test_load_unknown_key_is_none(self, session):
        assert session.store().load("f" * 64) is None

    def test_corrupt_payload_is_a_miss(self, session):
        point = Point(program="trfd", window=8)
        session.evaluate(point)
        store = session.store()
        key = store.keys()[0]
        store._con.execute(
            "UPDATE results SET payload = ? WHERE key = ?",
            (b"not a pickle", key),
        )
        store._con.commit()
        assert store.load(key) is None
        assert store.get(key) is not None  # typed row still readable
