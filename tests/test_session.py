"""Session tests: disk cache behaviour, parallel parity, machine registry,
and the no-shared-state regression for latency models."""

from __future__ import annotations

import dataclasses
from dataclasses import replace

import pytest

from repro.api import MemorySpec, Point, Session, Sweep, speedup_sweep
from repro.config import LatencyModel
from repro.errors import ConfigError
from repro.experiments import Lab
from repro.kernels import build_synthetic_stream
from repro.machines import (
    SimulationResult,
    get_machine,
    list_machines,
    register_machine,
)
from repro.workloads import generate_corpus

SCALE = 2_000


@pytest.fixture()
def point() -> Point:
    return Point(program="trfd", machine="dm", window=16,
                 memory_differential=60)


class TestDiskCache:
    def test_miss_then_hit_with_parity(self, tmp_path, point):
        first = Session(scale=SCALE, cache_dir=tmp_path)
        fresh = first.evaluate(point)
        assert first.stats["evaluated"] == 1
        assert first.stats["disk_misses"] == 1

        second = Session(scale=SCALE, cache_dir=tmp_path)
        cached = second.evaluate(point)
        assert second.stats["evaluated"] == 0
        assert second.stats["disk_hits"] == 1
        # Full result parity, not just cycles.
        assert cached == fresh

    def test_scale_change_invalidates(self, tmp_path, point):
        Session(scale=SCALE, cache_dir=tmp_path).evaluate(point)
        other = Session(scale=2 * SCALE, cache_dir=tmp_path)
        other.evaluate(point)
        assert other.stats["disk_hits"] == 0
        assert other.stats["evaluated"] == 1

    def test_latency_change_invalidates(self, tmp_path, point):
        Session(scale=SCALE, cache_dir=tmp_path).evaluate(point)
        other = Session(
            scale=SCALE, cache_dir=tmp_path, latencies=LatencyModel(fp_op=5)
        )
        other.evaluate(point)
        assert other.stats["disk_hits"] == 0
        assert other.stats["evaluated"] == 1

    def test_spec_change_invalidates(self, tmp_path, point):
        session = Session(scale=SCALE, cache_dir=tmp_path)
        session.evaluate(point)
        session.evaluate(replace(point, memory_differential=0))
        session.evaluate(replace(point, window=32))
        session.evaluate(replace(point, partition="memory-only"))
        assert session.stats["disk_hits"] == 0
        assert session.stats["evaluated"] == 4

    def test_corrupt_entry_is_a_miss(self, tmp_path, point):
        session = Session(scale=SCALE, cache_dir=tmp_path)
        session.evaluate(point)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        recovering = Session(scale=SCALE, cache_dir=tmp_path)
        result = recovering.evaluate(point)
        assert recovering.stats["evaluated"] == 1
        assert result.cycles == session.evaluate(point).cycles

    def test_custom_programs_bypass_disk_cache(self, tmp_path, point):
        """A custom trace shadowing a kernel name must never read (or
        poison) the stock kernel's disk entry — content isn't keyed."""
        stock = Session(scale=SCALE, cache_dir=tmp_path)
        stock_cycles = stock.evaluate(point).cycles

        shadowing = Session(scale=SCALE, cache_dir=tmp_path)
        shadowing.register_program(build_synthetic_stream(500, name="trfd"))
        custom_result = shadowing.evaluate(point)
        assert shadowing.stats["evaluated"] == 1, "served from disk!"
        assert custom_result.cycles != stock_cycles

        # And the custom run must not have overwritten the stock entry.
        again = Session(scale=SCALE, cache_dir=tmp_path)
        assert again.evaluate(point).cycles == stock_cycles
        assert again.stats["disk_hits"] == 1

    def test_irrelevant_fields_fold_into_one_entry(self, tmp_path):
        session = Session(scale=SCALE, cache_dir=tmp_path)
        session.evaluate(Point(program="trfd", machine="serial", window=8))
        session.evaluate(Point(program="trfd", machine="serial", window=99))
        assert session.stats["evaluated"] == 1
        assert session.stats["memory_hits"] == 1

    def test_unlimited_window_shared_between_sweep_and_accessor(self):
        session = Session(scale=SCALE)
        sweep = Sweep.grid(program="trfd", machine="dm", window=(None,),
                           memory_differential=60)
        run_cycles = session.run(sweep).cycles()[0]
        assert session.dm_cycles("trfd", None, 60) == run_cycles
        assert session.stats["evaluated"] == 1


class TestParallelExecutor:
    def test_process_pool_matches_serial(self):
        sweep = speedup_sweep("trfd", windows=(8, 16), differentials=(0, 60))
        serial = Session(scale=SCALE).run(sweep, jobs=1)
        parallel = Session(scale=SCALE).run(sweep, jobs=2)
        assert serial.cycles() == parallel.cycles()

    def test_generated_corpus_sweep_is_deterministic_across_jobs(
        self, tmp_path
    ):
        """jobs=1 and jobs=4 over a generated-corpus sweep produce
        identical results *and* identical disk-cache keys."""
        corpus = generate_corpus(4, seed=0, scale=SCALE)
        sweep = Sweep.grid(
            name="corpus-determinism",
            program=corpus.names,
            machine=("dm", "swsm"),
            window=16,
            memory_differential=(0, 60),
        )
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = Session(scale=SCALE, cache_dir=serial_dir).run(
            sweep, jobs=1
        )
        parallel = Session(scale=SCALE, cache_dir=parallel_dir).run(
            sweep, jobs=4
        )
        assert serial.points == parallel.points
        assert serial.results == parallel.results
        serial_keys = sorted(p.name for p in serial_dir.glob("*.pkl"))
        parallel_keys = sorted(p.name for p in parallel_dir.glob("*.pkl"))
        assert serial_keys == parallel_keys
        assert len(serial_keys) == len(sweep)

    def test_generated_kernels_resolve_inside_workers(self):
        """gen: names must resolve in pool workers, not just locally."""
        session = Session(scale=SCALE)
        outcome = session.run(
            Sweep.grid(program="gen:gather:5", machine="dm",
                       window=(8, 16), memory_differential=60),
            jobs=2,
        )
        assert all(result.cycles > 0 for _, result in outcome)

    def test_custom_programs_evaluate_locally(self):
        session = Session(scale=SCALE)
        session.register_program(build_synthetic_stream(500, name="custom"))
        outcome = session.run(
            Sweep.grid(program="custom", machine="dm", window=(8, 16),
                       memory_differential=60),
            jobs=2,
        )
        assert all(result.cycles > 0 for _, result in outcome)


class TestSweepResult:
    def test_order_matches_sweep(self):
        session = Session(scale=SCALE)
        sweep = Sweep.grid(program="trfd", machine="dm", window=(8, 16),
                           memory_differential=(0, 60))
        outcome = session.run(sweep)
        assert [p.window for p, _ in outcome] == [8, 8, 16, 16]
        assert len(outcome) == 4
        assert outcome.cycles() == tuple(r.cycles for _, r in outcome)


class TestMachineRegistry:
    def test_builtins_registered(self):
        assert {"dm", "swsm", "serial"} <= set(list_machines())

    def test_unknown_machine_rejected(self):
        with pytest.raises(ConfigError):
            get_machine("warp-drive")
        with pytest.raises(ConfigError):
            Session(scale=SCALE).evaluate(
                Point(program="trfd", machine="warp-drive")
            )

    def test_custom_machine_pluggable(self):
        class PerfectMachine:
            name = "test-perfect"

            def canonical(self, point):
                return replace(point, window=None, probe_esw=False)

            def compile(self, program, point, latencies):
                return program

            def simulate(self, compiled, point, window, memory, latencies):
                return SimulationResult(
                    name=compiled.name,
                    cycles=len(compiled),
                    instructions=len(compiled),
                    unit_stats={},
                )

        register_machine(PerfectMachine())
        session = Session(scale=SCALE)
        cycles = session.cycles(
            Point(program="trfd", machine="test-perfect")
        )
        assert cycles == len(session.program("trfd"))
        # Window is canonicalised away: any window hits the same entry.
        session.cycles(Point(program="trfd", machine="test-perfect",
                             window=123))
        assert session.stats["evaluated"] == 1


class TestNoSharedState:
    """Regression: Lab used to share one LatencyModel across instances."""

    def test_latency_model_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            LatencyModel().fp_op = 99  # type: ignore[misc]

    def test_sessions_get_independent_latency_instances(self):
        assert Session().latencies is not Session().latencies
        assert Lab().latencies is not Lab().latencies

    def test_registered_programs_do_not_leak_across_sessions(self):
        a = Session(scale=SCALE)
        b = Session(scale=SCALE)
        custom = build_synthetic_stream(500, name="trfd")  # shadows a kernel
        a.register_program(custom)
        assert a.program("trfd") is custom
        assert b.program("trfd") is not custom
        assert len(b.program("trfd")) != len(custom)


class TestBypassMeta:
    def test_hit_rate_travels_with_result(self, tmp_path):
        point = Point(
            program="mdg", machine="dm", window=16, memory_differential=60,
            memory=MemorySpec(kind="bypass", entries=256, line_bytes=1),
        )
        fresh = Session(scale=SCALE, cache_dir=tmp_path).evaluate(point)
        assert fresh.meta["bypass_hit_rate"] > 0
        cached = Session(scale=SCALE, cache_dir=tmp_path).evaluate(point)
        assert cached.meta == fresh.meta


class TestStatefulMemoryMeta:
    """Each model's counters land in result.meta, and cached re-runs —
    which build (and reset) a fresh model instance per simulation —
    reproduce them exactly."""

    @pytest.mark.parametrize(
        ("spec", "key"),
        [
            (MemorySpec(kind="cache"), "cache_hit_rate"),
            (MemorySpec(kind="banked"), "bank_conflict_rate"),
            (MemorySpec(kind="prefetch"), "prefetch_hit_rate"),
        ],
    )
    def test_stats_travel_and_survive_cache_round_trips(
        self, tmp_path, spec, key
    ):
        point = Point(
            program="flo52q", machine="dm", window=16,
            memory_differential=60, memory=spec,
        )
        session = Session(scale=SCALE, cache_dir=tmp_path)
        fresh = session.evaluate(point)
        assert key in fresh.meta
        memory_hit = session.evaluate(point)
        assert memory_hit.meta == fresh.meta
        disk_hit = Session(scale=SCALE, cache_dir=tmp_path).evaluate(point)
        assert disk_hit.meta == fresh.meta
        resimulated = Session(scale=SCALE).evaluate(point)
        assert resimulated.meta == fresh.meta


class TestStoreResidentSkip:
    """Sweeps resume from an attached store: only missing points run."""

    def _sweep(self) -> Sweep:
        return Sweep.grid(
            name="resume",
            program="trfd",
            machine="dm",
            window=(4, 8, 16, 32),
            memory_differential=60,
        )

    def test_rerun_simulates_only_the_missing_points(self, tmp_path):
        sweep = self._sweep()
        points = list(sweep.points())
        store_path = tmp_path / "resume.sqlite"

        # "Killed" partway: the first session only got through half.
        first = Session(scale=SCALE)
        first.store(store_path)
        for point in points[:2]:
            first.evaluate(point)
        first.store().close()

        second = Session(scale=SCALE)
        second.store(store_path)
        outcome = second.run(sweep)
        assert second.stats["evaluated"] == len(points) - 2
        assert second.stats["store_hits"] == 2

        # Parity: rehydrated results equal a from-scratch run.
        reference = Session(scale=SCALE).run(sweep)
        assert outcome.cycles() == reference.cycles()
        assert outcome.results == reference.results

    def test_parallel_prefetch_skips_store_resident_points(self, tmp_path):
        sweep = self._sweep()
        points = list(sweep.points())
        store_path = tmp_path / "resume-par.sqlite"

        first = Session(scale=SCALE)
        first.store(store_path)
        for point in points[:3]:
            first.evaluate(point)
        first.store().close()

        second = Session(scale=SCALE)
        second.store(store_path)
        outcome = second.run(sweep, jobs=2)
        assert second.stats["evaluated"] == len(points) - 3
        assert outcome.cycles() == Session(scale=SCALE).run(sweep).cycles()

    def test_disk_cache_wins_over_store(self, tmp_path):
        # With both attached, the disk cache answers first (it needs no
        # SQLite query); the store only fills genuine disk misses.
        point = Point(program="trfd", machine="dm", window=16,
                      memory_differential=60)
        warm = Session(scale=SCALE, cache_dir=tmp_path / "cache")
        warm.store(tmp_path / "s.sqlite")
        warm.evaluate(point)
        warm.store().close()

        second = Session(scale=SCALE, cache_dir=tmp_path / "cache")
        second.store(tmp_path / "s.sqlite")
        second.evaluate(point)
        assert second.stats["disk_hits"] == 1
        assert second.stats["store_hits"] == 0

    def test_store_hit_still_tracked_for_manifests(self, tmp_path):
        point = Point(program="trfd", machine="dm", window=16,
                      memory_differential=60)
        first = Session(scale=SCALE)
        first.store(tmp_path / "t.sqlite")
        first.evaluate(point)
        first.store().close()

        second = Session(scale=SCALE)
        store = second.store(tmp_path / "t.sqlite")
        with store.track() as group:
            second.evaluate(point)
        assert len(group) == 1  # rehydrated points stay manifest-visible


class TestInterrupt:
    def test_interrupt_mid_parallel_sweep_cancels_and_raises(
        self, monkeypatch
    ):
        """Ctrl-C during the pool fold must propagate promptly, not hang
        on queued futures (the executor is shut down with
        cancel_futures)."""
        session = Session(scale=SCALE)
        sweep = speedup_sweep("trfd", windows=(4, 8), differentials=(0, 60))

        def boom(self, canonical, result):
            raise KeyboardInterrupt

        monkeypatch.setattr(Session, "_store", boom)
        with pytest.raises(KeyboardInterrupt):
            session.run(sweep, jobs=2)
