"""Unit tests for the paper metrics."""

from __future__ import annotations

import pytest

from repro import MetricError, ProjectionError, classify_band, lhe, speedup
from repro.metrics import (
    LhePoint,
    SpeedupPoint,
    equivalent_window_ratio,
    find_equivalent_window,
)


class TestSpeedup:
    def test_ratio(self):
        assert speedup(100, 25) == 4.0

    def test_rejects_non_positive(self):
        with pytest.raises(MetricError):
            speedup(0, 10)
        with pytest.raises(MetricError):
            speedup(10, 0)

    def test_point(self):
        point = SpeedupPoint(
            program="p", machine="DM", window=32, memory_differential=60,
            machine_cycles=50, serial_cycles=500,
        )
        assert point.speedup == 10.0


class TestLhe:
    def test_perfect_hiding(self):
        assert lhe(100, 100) == 1.0

    def test_partial_hiding(self):
        assert lhe(100, 200) == 0.5

    def test_scheduling_anomaly_clamps_to_one(self):
        # Greedy width-limited issue is not latency-monotone: a run at
        # the differential may finish slightly sooner than at md=0
        # (Graham anomaly, e.g. gen:strided:810201 x swsm at paper
        # scale). Within the margin that is complete hiding.
        assert lhe(100, 96) == 1.0

    def test_rejects_actual_faster_than_perfect(self):
        with pytest.raises(MetricError, match="beats perfect"):
            lhe(100, 90)

    def test_rejects_non_positive(self):
        with pytest.raises(MetricError):
            lhe(0, 10)

    def test_point_band(self):
        point = LhePoint(
            program="p", machine="DM", window=None, memory_differential=60,
            perfect_cycles=90, actual_cycles=100,
        )
        assert point.lhe == 0.9
        assert point.band == "high"


class TestBands:
    @pytest.mark.parametrize(
        "value,band",
        [(1.0, "high"), (0.85, "high"), (0.84, "moderate"), (0.45, "moderate"),
         (0.44, "poor"), (0.0, "poor")],
    )
    def test_thresholds(self, value, band):
        assert classify_band(value) == band

    def test_rejects_out_of_range(self):
        with pytest.raises(MetricError):
            classify_band(1.2)
        with pytest.raises(MetricError):
            classify_band(-0.1)


class TestEquivalentWindow:
    def test_exact_crossing(self):
        # time(w) = 1000 // w: window 10 gives exactly 100.
        calls = []

        def evaluate(window: int) -> int:
            calls.append(window)
            return 1000 // window

        assert find_equivalent_window(evaluate, 100) == 10.0

    def test_interpolates_between_integers(self):
        def evaluate(window: int) -> int:
            return max(10, 1000 - 100 * window)

        # Target 250 falls between windows 7 (300) and 8 (200).
        result = find_equivalent_window(evaluate, 250)
        assert 7 < result < 8
        assert result == pytest.approx(7.5)

    def test_already_met_at_window_one(self):
        assert find_equivalent_window(lambda w: 5, 100) == 1.0

    def test_raises_when_unreachable(self):
        with pytest.raises(ProjectionError, match="cannot match"):
            find_equivalent_window(lambda w: 10_000, 100, max_window=256)

    def test_rejects_bad_target(self):
        with pytest.raises(ProjectionError):
            find_equivalent_window(lambda w: 1, 0)

    def test_rejects_bad_start(self):
        with pytest.raises(ProjectionError):
            find_equivalent_window(lambda w: 1, 10, start=0)

    def test_plateau_function(self):
        def evaluate(window: int) -> int:
            return 100 if window < 32 else 50

        assert find_equivalent_window(evaluate, 50) == 32.0
        # A target inside the jump interpolates within (31, 32].
        result = find_equivalent_window(evaluate, 75)
        assert 31 < result <= 32

    def test_ratio_helper(self):
        def evaluate(window: int) -> int:
            return 1000 // window

        ratio = equivalent_window_ratio(evaluate, dm_window=8, dm_cycles=50)
        assert ratio == pytest.approx(20 / 8)

    def test_ratio_rejects_bad_window(self):
        with pytest.raises(ProjectionError):
            equivalent_window_ratio(lambda w: 1, dm_window=0, dm_cycles=10)

    def test_search_is_economical(self):
        calls = []

        def evaluate(window: int) -> int:
            calls.append(window)
            return 10_000 // window

        find_equivalent_window(evaluate, 37)
        # Exponential bracket + bisection stays logarithmic.
        assert len(calls) < 25
