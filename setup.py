from setuptools import find_packages, setup

setup(
    name="repro-jones-topham-1997",
    version="1.0.0",
    description=(
        "Jones & Topham (MICRO-30, 1997) reproduced: access decoupled "
        "vs single-window superscalar data prefetching"
    ),
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
