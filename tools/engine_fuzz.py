"""Differential fuzzer for the four scheduling engines.

Crosses a corpus of generated kernels (``gen:<family>:<seed>`` names)
plus two paper kernels with both machines (DM, SWSM) and every memory
model kind in the hierarchy scenario space, then runs each case
through all four engines — the event-heap scheduler (forced via
``REPRO_EVENT_ENGINE=events``), the SoA cycle loops (``soa``), the
legacy object engine, and the batched sweep engine
(``repro.machines.batch``, run as a two-lane batch at two memory
differentials and compared lane by lane) — and diffs the results
field by field. Any divergence is a bug in one of the engines; the
tool prints the first mismatching field per case and exits non-zero.

Usage (CI runs it at tiny scale, mirroring tools/service_smoke.py):

    REPRO_SCALE=tiny PYTHONPATH=src python tools/engine_fuzz.py

    # more seeds, different memory differential:
    python tools/engine_fuzz.py --seeds 8 --md 30
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DecoupledMachine, SuperscalarMachine  # noqa: E402
from repro.api.presets import HIERARCHY_MEMORY_VARIANTS  # noqa: E402
from repro.config import UnitConfig  # noqa: E402
from repro.experiments import active_preset  # noqa: E402
from repro.kernels import build_kernel  # noqa: E402
from repro.machines import simulate, simulate_objects  # noqa: E402
from repro.machines.batch import BatchLane, simulate_batch  # noqa: E402
from repro.partition import Unit  # noqa: E402
from repro.workloads import FAMILIES  # noqa: E402

MACHINES = (
    ("dm", DecoupledMachine.compile),
    ("swsm", SuperscalarMachine.compile),
)

#: SimulationResult fields every engine must agree on, bit for bit.
COMPARED_FIELDS = (
    "cycles",
    "instructions",
    "unit_stats",
    "issue_times",
    "esw_peak",
    "esw_mean",
    "buffer_occupancy",
)


def _forced(choice: str, compiled, configs, memory):
    previous = os.environ.get("REPRO_EVENT_ENGINE")
    os.environ["REPRO_EVENT_ENGINE"] = choice
    try:
        return simulate(compiled, configs, memory, collect_issue_times=True)
    finally:
        if previous is None:
            del os.environ["REPRO_EVENT_ENGINE"]
        else:
            os.environ["REPRO_EVENT_ENGINE"] = previous


def diff_fields(reference, candidate) -> list[str]:
    """Names of the result fields on which two engines disagree."""
    mismatches = []
    for field_name in COMPARED_FIELDS:
        if getattr(reference, field_name) != getattr(candidate, field_name):
            mismatches.append(field_name)
    return mismatches


def run_case(program_name: str, scale: int, md: int,
             verbose: bool) -> list[str]:
    """All machines x memory kinds x engines for one program."""
    failures = []
    program = build_kernel(program_name, scale)
    for machine_name, compile_fn in MACHINES:
        compiled = compile_fn(program)
        if machine_name == "dm":
            configs = {
                Unit.AU: UnitConfig(window=32, width=4, name="AU"),
                Unit.DU: UnitConfig(window=32, width=5, name="DU"),
            }
        else:
            configs = {Unit.SINGLE: UnitConfig(window=32, width=9)}
        for label, spec in HIERARCHY_MEMORY_VARIANTS:
            case = f"{program_name} x {machine_name} x {label}"
            events = _forced("events", compiled, configs, spec.build(md))
            soa = _forced("soa", compiled, configs, spec.build(md))
            legacy = simulate_objects(compiled, configs, spec.build(md),
                                      collect_issue_times=True)
            for engine_name, candidate in (("soa", soa), ("objects", legacy)):
                fields = diff_fields(events, candidate)
                if fields:
                    failures.append(
                        f"{case}: events vs {engine_name} differ on "
                        f"{', '.join(fields)}"
                    )
            # Batch column: a two-lane batch at two differentials,
            # each lane held to the matching scalar reference (lane 1
            # gets its own soa run at the shifted differential).
            alt = md + 17
            batch = simulate_batch(
                compiled,
                [
                    BatchLane(unit_configs=configs, memory=spec.build(md)),
                    BatchLane(unit_configs=configs, memory=spec.build(alt)),
                ],
                collect_issue_times=True,
            )
            soa_alt = _forced("soa", compiled, configs, spec.build(alt))
            for lane_index, reference in ((0, events), (1, soa_alt)):
                fields = diff_fields(reference, batch[lane_index])
                if fields:
                    failures.append(
                        f"{case}: batch lane {lane_index} differs from "
                        f"its scalar reference on {', '.join(fields)}"
                    )
            if verbose and not failures:
                print(f"  ok {case}: {events.cycles} cycles")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=2,
                        help="generated seeds per family (default 2)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed value (default 0)")
    parser.add_argument("--md", type=int, default=60,
                        help="memory differential (default 60)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every passing case")
    args = parser.parse_args(argv)

    preset = active_preset()
    corpus = ["flo52q", "mdg"]
    corpus.extend(
        f"gen:{family}:{args.seed_base + i}"
        for family in FAMILIES
        for i in range(args.seeds)
    )

    failures: list[str] = []
    for name in corpus:
        failures.extend(run_case(name, preset.scale, args.md, args.verbose))

    cases = len(corpus) * len(MACHINES) * len(HIERARCHY_MEMORY_VARIANTS)
    if failures:
        print(f"engine fuzz: FAIL — {len(failures)}/{cases} cases diverge")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"engine fuzz: OK — {cases} cases (x4 engines) agree on every "
        f"field (scale={preset.name}, md={args.md})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
